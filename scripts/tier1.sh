#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   scripts/tier1.sh            # full build + test suite
#   scripts/tier1.sh --chaos    # additionally re-run the seeded chaos
#                               # suite by itself (verbose)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: full test suite =="
cargo test -q

echo "== tier-1: kernel equivalence smoke (lane kernels vs scalar oracles) =="
cargo test -q -p tardis-ts lanes
cargo test -q -p tardis-core cascade

echo "== tier-1: batch-query benchmark smoke (quick scale) =="
cargo run --release -p tardis-bench --bin experiments -- queries --quick

echo "== tier-1: replica load-balancing benchmark smoke (quick scale) =="
# Asserts internally that R1/R2/adaptive stores answer byte-identically.
cargo run --release -p tardis-bench --bin experiments -- balance --quick

echo "== tier-1: degraded-mode smoke (replication, scrub, best-effort serving) =="
DEMO="$(mktemp -d)"
trap 'rm -rf "$DEMO"' EXIT
T="target/release/tardis"
"$T" generate --dir "$DEMO" --dataset rw --family randomwalk --records 3000 --replication 2
"$T" build --dir "$DEMO" --dataset rw --index idx --capacity 300 --leaf 100 --replication 2

echo "== tier-1: bounded-memory sorted-build smoke (external sort, byte-identical) =="
# The low-memory build writes the same partition bytes as the in-memory
# build above (same config, same dataset), so the store keeps serving
# both manifests. A 1 MiB run budget forces real spill/merge activity.
"$T" build --dir "$DEMO" --dataset rw --index idx-lm --capacity 300 --leaf 100 --replication 2 \
    --low-memory --run-budget-mb 1 | grep -q '\[low-memory\]' || {
    echo "sorted-build smoke FAILED: low-memory build did not report itself" >&2; exit 1; }
"$T" exact --dir "$DEMO" --index idx-lm --rid 7 --replication 2 | grep -q 'record ids \[7\]' || {
    echo "sorted-build smoke FAILED: exact match on the sorted-built index" >&2; exit 1; }
"$T" knn --dir "$DEMO" --index idx-lm --rid 7 --k 5 --replication 2 | grep -q . || {
    echo "sorted-build smoke FAILED: knn on the sorted-built index" >&2; exit 1; }
# All spilled run files were retired on success...
if ls "$DEMO"/node-*/extsort-run-* >/dev/null 2>&1; then
    echo "sorted-build smoke FAILED: leftover extsort run files" >&2; exit 1
fi
# ...and the store (partitions + blooms + manifests) scrubs clean.
"$T" scrub --dir "$DEMO" --replication 2

echo "== tier-1: resident daemon smoke (serve, client, /metrics, SIGTERM) =="
# Boot on port 0 and read the real port back from the flushed
# 'listening on ADDR' line.
"$T" serve --dir "$DEMO" --index idx --addr 127.0.0.1:0 --replication 2 >"$DEMO/serve.out" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^listening on //p' "$DEMO/serve.out" | head -n1)"
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
if [[ -z "$ADDR" ]]; then
    echo "daemon smoke FAILED: daemon never printed its address" >&2
    cat "$DEMO/serve.out" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
# A mixed smoke through every transport path: exact, kNN, and a
# shared-scan batch, each answered on one line with ok:true.
"$T" client --addr "$ADDR" --dir "$DEMO" --index idx --op exact --rid 7 --replication 2 | grep -q '"ok":true' || {
    echo "daemon smoke FAILED: exact-match request" >&2; exit 1; }
"$T" client --addr "$ADDR" --dir "$DEMO" --index idx --op knn --rid 7 --k 5 --replication 2 | grep -q '"ok":true' || {
    echo "daemon smoke FAILED: knn request" >&2; exit 1; }
"$T" client --addr "$ADDR" --dir "$DEMO" --index idx --op batch --count 4 --replication 2 | grep -q '"ok":true' || {
    echo "daemon smoke FAILED: batch request" >&2; exit 1; }
# The same port serves Prometheus text: the served counter must have
# seen exactly the three requests above, and the scheduler gauges exist.
"$T" metrics --addr "$ADDR" | grep -q 'tardis_queries_served 3' || {
    echo "daemon smoke FAILED: /metrics did not count 3 served queries" >&2; exit 1; }
"$T" metrics --addr "$ADDR" | grep -q '# TYPE tardis_queue_depth gauge' || {
    echo "daemon smoke FAILED: /metrics is missing the scheduler gauges" >&2; exit 1; }
# SIGTERM drains gracefully: the process exits 0 and reports its tally.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "daemon smoke FAILED: daemon exited non-zero on SIGTERM" >&2; exit 1; }
grep -q '^shutdown: 3 served' "$DEMO/serve.out" || {
    echo "daemon smoke FAILED: no graceful shutdown tally" >&2
    cat "$DEMO/serve.out" >&2
    exit 1
}

echo "== tier-1: replica-aware routing smoke (skewed mix spreads over nodes) =="
# A fresh daemon on the replication-2 store serves a skewed mix — the
# same record hammered repeatedly. Replica-aware routing must spread the
# reads: the per-node counters on /metrics show more than one node
# serving, where replica-0-first routing would pin each block to one.
"$T" serve --dir "$DEMO" --index idx --addr 127.0.0.1:0 --replication 2 >"$DEMO/serve2.out" 2>&1 &
SERVE2_PID=$!
ADDR2=""
for _ in $(seq 1 100); do
    ADDR2="$(sed -n 's/^listening on //p' "$DEMO/serve2.out" | head -n1)"
    [[ -n "$ADDR2" ]] && break
    sleep 0.1
done
if [[ -z "$ADDR2" ]]; then
    echo "routing smoke FAILED: daemon never printed its address" >&2
    cat "$DEMO/serve2.out" >&2
    kill "$SERVE2_PID" 2>/dev/null || true
    exit 1
fi
for _ in $(seq 1 8); do
    "$T" client --addr "$ADDR2" --dir "$DEMO" --index idx --op knn --rid 7 --k 5 --strategy one --replication 2 | grep -q '"ok":true' || {
        echo "routing smoke FAILED: skewed-mix request" >&2; exit 1; }
done
NODES_SERVING="$("$T" metrics --addr "$ADDR2" | grep -c '^tardis_node_reads_total{node=' || true)"
if [[ "$NODES_SERVING" -lt 2 ]]; then
    echo "routing smoke FAILED: only $NODES_SERVING node(s) served reads (hotspot!)" >&2
    "$T" metrics --addr "$ADDR2" | grep 'tardis_node_' >&2 || true
    exit 1
fi
kill -TERM "$SERVE2_PID"
wait "$SERVE2_PID" || { echo "routing smoke FAILED: daemon exited non-zero on SIGTERM" >&2; exit 1; }

echo "== tier-1: continuous-ingest smoke (ingest, query during deltas, compact) =="
# A --manifest daemon accepts ingest batches over the socket, serves the
# ingested records immediately (no PARTIAL), folds them on demand, and
# leaves a store that still scrubs clean.
"$T" serve --dir "$DEMO" --index idx --addr 127.0.0.1:0 --replication 2 --manifest idx >"$DEMO/serve3.out" 2>&1 &
SERVE3_PID=$!
ADDR3=""
for _ in $(seq 1 100); do
    ADDR3="$(sed -n 's/^listening on //p' "$DEMO/serve3.out" | head -n1)"
    [[ -n "$ADDR3" ]] && break
    sleep 0.1
done
if [[ -z "$ADDR3" ]]; then
    echo "ingest smoke FAILED: daemon never printed its address" >&2
    cat "$DEMO/serve3.out" >&2
    kill "$SERVE3_PID" 2>/dev/null || true
    exit 1
fi
"$T" client --addr "$ADDR3" --dir "$DEMO" --index idx --op ingest --start 3000 --count 50 --replication 2 | grep -q '"ok":true' || {
    echo "ingest smoke FAILED: ingest request" >&2; exit 1; }
# The ingested record answers from its sealed delta, fully (no PARTIAL).
INGEST_PROBE="$("$T" client --addr "$ADDR3" --dir "$DEMO" --index idx --op exact --rid 3020 --replication 2)"
echo "$INGEST_PROBE" | grep -q '"ok":true' || {
    echo "ingest smoke FAILED: query over delta: $INGEST_PROBE" >&2; exit 1; }
echo "$INGEST_PROBE" | grep -q '\[3020\]' || {
    echo "ingest smoke FAILED: ingested rid 3020 not found: $INGEST_PROBE" >&2; exit 1; }
echo "$INGEST_PROBE" | grep -qi 'partial' && {
    echo "ingest smoke FAILED: delta query reported partial: $INGEST_PROBE" >&2; exit 1; }
"$T" client --addr "$ADDR3" --dir "$DEMO" --index idx --op compact --replication 2 | grep -q '"folded":50' || {
    echo "ingest smoke FAILED: compact did not fold the delta" >&2; exit 1; }
# The folded record still answers, now from the rewritten base.
"$T" client --addr "$ADDR3" --dir "$DEMO" --index idx --op exact --rid 3020 --replication 2 | grep -q '\[3020\]' || {
    echo "ingest smoke FAILED: rid 3020 lost after compaction" >&2; exit 1; }
kill -TERM "$SERVE3_PID"
wait "$SERVE3_PID" || { echo "ingest smoke FAILED: daemon exited non-zero on SIGTERM" >&2; exit 1; }
# The post-compaction store (versioned partition files) scrubs clean.
"$T" scrub --dir "$DEMO" --replication 2

echo "== tier-1: crash-recovery smoke (mid-swap crash, fsck, rolled-forward queries) =="
# A --manifest daemon armed with a deterministic crash point: each
# save_atomic renames 2 manifest replicas (replication 2), so the socket
# ingest consumes rename arrivals 1-2 and the socket compaction dies at
# arrival 4 — between its own two replica renames, manifest replicas on
# different generations, retired files never deleted.
"$T" serve --dir "$DEMO" --index idx --addr 127.0.0.1:0 --replication 2 --manifest idx \
    --crash-at dfs.replace.rename:4 >"$DEMO/serve4.out" 2>&1 &
SERVE4_PID=$!
ADDR4=""
for _ in $(seq 1 100); do
    ADDR4="$(sed -n 's/^listening on //p' "$DEMO/serve4.out" | head -n1)"
    [[ -n "$ADDR4" ]] && break
    sleep 0.1
done
if [[ -z "$ADDR4" ]]; then
    echo "crash smoke FAILED: daemon never printed its address" >&2
    cat "$DEMO/serve4.out" >&2
    kill "$SERVE4_PID" 2>/dev/null || true
    exit 1
fi
"$T" client --addr "$ADDR4" --dir "$DEMO" --index idx --op ingest --start 4000 --count 50 --replication 2 | grep -q '"ok":true' || {
    echo "crash smoke FAILED: pre-crash ingest" >&2; exit 1; }
"$T" client --addr "$ADDR4" --dir "$DEMO" --index idx --op compact --replication 2 | grep -q '"ok":false' || {
    echo "crash smoke FAILED: armed compaction did not abort" >&2; exit 1; }
# The injected crash is a kill -9 stand-in: take the process down hard.
kill -9 "$SERVE4_PID" 2>/dev/null || true
wait "$SERVE4_PID" 2>/dev/null || true
# fsck rolls the manifest forward to the post-compaction generation, GCs
# the retired base/delta files, then re-runs recovery and exits non-zero
# unless the second pass finds nothing left to fix.
"$T" fsck --dir "$DEMO" --replication 2 | tee "$DEMO/fsck.out"
grep -q '1 manifest(s) rolled forward' "$DEMO/fsck.out" || {
    echo "crash smoke FAILED: fsck did not roll the manifest forward" >&2; exit 1; }
grep -q 'store is consistent' "$DEMO/fsck.out" || {
    echo "crash smoke FAILED: fsck verification pass" >&2; exit 1; }
# The rolled-forward store serves the compacted record, fully (no PARTIAL).
CRASH_PROBE="$("$T" exact --dir "$DEMO" --index idx --rid 4020 --replication 2 --degraded best-effort)"
echo "$CRASH_PROBE" | grep -q '\[4020\]' || {
    echo "crash smoke FAILED: rid 4020 lost across the crash: $CRASH_PROBE" >&2; exit 1; }
echo "$CRASH_PROBE" | grep -qi 'partial' && {
    echo "crash smoke FAILED: recovered query reported partial: $CRASH_PROBE" >&2; exit 1; }
# A fresh daemon boots through the same recovery path and exports the
# RecoveryReport counters on /metrics.
"$T" serve --dir "$DEMO" --index idx --addr 127.0.0.1:0 --replication 2 --manifest idx >"$DEMO/serve5.out" 2>&1 &
SERVE5_PID=$!
ADDR5=""
for _ in $(seq 1 100); do
    ADDR5="$(sed -n 's/^listening on //p' "$DEMO/serve5.out" | head -n1)"
    [[ -n "$ADDR5" ]] && break
    sleep 0.1
done
if [[ -z "$ADDR5" ]]; then
    echo "crash smoke FAILED: post-recovery daemon never printed its address" >&2
    cat "$DEMO/serve5.out" >&2
    kill "$SERVE5_PID" 2>/dev/null || true
    exit 1
fi
"$T" metrics --addr "$ADDR5" | grep -q '^tardis_recovery_runs 1' || {
    echo "crash smoke FAILED: /metrics is missing the recovery counters" >&2; exit 1; }
kill -TERM "$SERVE5_PID"
wait "$SERVE5_PID" || { echo "crash smoke FAILED: daemon exited non-zero on SIGTERM" >&2; exit 1; }
# The recovered store scrubs clean.
"$T" scrub --dir "$DEMO" --replication 2

# One datanode dies: every block keeps a replica on another node, so even
# a fail-fast query is fully masked by replica failover...
rm -rf "$DEMO/node-0"
"$T" exact --dir "$DEMO" --index idx --rid 7 --replication 2 --degraded fail-fast
# ...and scrub restores full replication (it exits non-zero on data loss).
"$T" scrub --dir "$DEMO" --replication 2
# Every replica of every partition dies: fail-fast must error out while
# best-effort still answers and flags the result as partial.
rm -rf "$DEMO"/node-*/part-*
if "$T" knn --dir "$DEMO" --index idx --rid 7 --k 5 --replication 2 --degraded fail-fast >/dev/null 2>&1; then
    echo "degraded smoke FAILED: fail-fast succeeded with every replica dead" >&2
    exit 1
fi
"$T" knn --dir "$DEMO" --index idx --rid 7 --k 5 --replication 2 --degraded best-effort | grep -q "PARTIAL" || {
    echo "degraded smoke FAILED: best-effort did not report a partial answer" >&2
    exit 1
}

if [[ "${1:-}" == "--chaos" ]]; then
    echo "== tier-1: seeded chaos suite (deterministic fault injection) =="
    cargo test --test chaos -- --nocapture
fi

echo "== tier-1: OK =="
