#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   scripts/tier1.sh            # full build + test suite
#   scripts/tier1.sh --chaos    # additionally re-run the seeded chaos
#                               # suite by itself (verbose)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: full test suite =="
cargo test -q

echo "== tier-1: kernel equivalence smoke (lane kernels vs scalar oracles) =="
cargo test -q -p tardis-ts lanes
cargo test -q -p tardis-core cascade

echo "== tier-1: batch-query benchmark smoke (quick scale) =="
cargo run --release -p tardis-bench --bin experiments -- queries --quick

echo "== tier-1: degraded-mode smoke (replication, scrub, best-effort serving) =="
DEMO="$(mktemp -d)"
trap 'rm -rf "$DEMO"' EXIT
T="target/release/tardis"
"$T" generate --dir "$DEMO" --dataset rw --family randomwalk --records 3000 --replication 2
"$T" build --dir "$DEMO" --dataset rw --index idx --capacity 300 --leaf 100 --replication 2
# One datanode dies: every block keeps a replica on another node, so even
# a fail-fast query is fully masked by replica failover...
rm -rf "$DEMO/node-0"
"$T" exact --dir "$DEMO" --index idx --rid 7 --replication 2 --degraded fail-fast
# ...and scrub restores full replication (it exits non-zero on data loss).
"$T" scrub --dir "$DEMO" --replication 2
# Every replica of every partition dies: fail-fast must error out while
# best-effort still answers and flags the result as partial.
rm -rf "$DEMO"/node-*/part-*
if "$T" knn --dir "$DEMO" --index idx --rid 7 --k 5 --replication 2 --degraded fail-fast >/dev/null 2>&1; then
    echo "degraded smoke FAILED: fail-fast succeeded with every replica dead" >&2
    exit 1
fi
"$T" knn --dir "$DEMO" --index idx --rid 7 --k 5 --replication 2 --degraded best-effort | grep -q "PARTIAL" || {
    echo "degraded smoke FAILED: best-effort did not report a partial answer" >&2
    exit 1
}

if [[ "${1:-}" == "--chaos" ]]; then
    echo "== tier-1: seeded chaos suite (deterministic fault injection) =="
    cargo test --test chaos -- --nocapture
fi

echo "== tier-1: OK =="
