#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   scripts/tier1.sh            # full build + test suite
#   scripts/tier1.sh --chaos    # additionally re-run the seeded chaos
#                               # suite by itself (verbose)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: full test suite =="
cargo test -q

echo "== tier-1: kernel equivalence smoke (lane kernels vs scalar oracles) =="
cargo test -q -p tardis-ts lanes
cargo test -q -p tardis-core cascade

echo "== tier-1: batch-query benchmark smoke (quick scale) =="
cargo run --release -p tardis-bench --bin experiments -- queries --quick

if [[ "${1:-}" == "--chaos" ]]; then
    echo "== tier-1: seeded chaos suite (deterministic fault injection) =="
    cargo test --test chaos -- --nocapture
fi

echo "== tier-1: OK =="
