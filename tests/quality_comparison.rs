//! The paper's headline quality claims, at reproduction scale:
//! TARDIS's word-level signatures and widened candidate scopes beat the
//! character-level DPiSAX baseline on kNN accuracy, while both agree on
//! exact-match answers.

use tardis::prelude::*;
use tardis_core::eval::Neighbor;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap()
}

struct Built {
    cluster: Cluster,
    tardis: TardisIndex,
    baseline: DpisaxIndex,
    gen: RandomWalk,
    n: u64,
}

fn build_both(n: u64) -> Built {
    let cluster = cluster();
    let gen = RandomWalk::with_len(77, 128);
    write_dataset(&cluster, "ds", &gen, n, 250).unwrap();
    let t_cfg = TardisConfig {
        g_max_size: 800,
        l_max_size: 100,
        sampling_fraction: 0.4,
        pth: 8,
        ..TardisConfig::default()
    };
    let b_cfg = BaselineConfig {
        g_max_size: 800,
        l_max_size: 100,
        sampling_fraction: 0.4,
        ..BaselineConfig::default()
    };
    let (tardis, _) = TardisIndex::build(&cluster, "ds", &t_cfg).unwrap();
    let (baseline, _) = DpisaxIndex::build(&cluster, "ds", &b_cfg).unwrap();
    Built {
        cluster,
        tardis,
        baseline,
        gen,
        n,
    }
}

fn truths(b: &Built, queries: &[TimeSeries], k: usize) -> Vec<Vec<Neighbor>> {
    queries
        .iter()
        .map(|q| ground_truth_knn(&b.cluster, "ds", q, k).unwrap())
        .collect()
}

#[test]
fn exact_match_answers_agree_between_systems() {
    let b = build_both(2_500);
    for rid in [0u64, 1_234, 2_499, 50_000, 90_001] {
        let q = b.gen.series(rid);
        let t = exact_match(&b.tardis, &b.cluster, &q, true).unwrap();
        let base = baseline_exact_match(&b.baseline, &b.cluster, &q).unwrap();
        assert_eq!(t.matches, base.matches, "rid {rid}");
    }
}

#[test]
fn multi_partition_beats_baseline_recall() {
    // The Figure 15 ordering: baseline ≤ target node ≤ one partition ≤
    // multi partition on recall (mean over queries).
    let b = build_both(4_000);
    let k = 100;
    let workload = QueryWorkload::existing(&b.gen, b.n, 8, 3);
    let queries: Vec<TimeSeries> = workload.queries.iter().map(|(q, _)| q.clone()).collect();
    let truth = truths(&b, &queries, k);

    let mut baseline_recall = 0.0;
    for (q, t) in queries.iter().zip(&truth) {
        let ans = baseline_knn(&b.baseline, &b.cluster, q, k).unwrap();
        baseline_recall += recall(&ans.neighbors, t);
    }
    baseline_recall /= queries.len() as f64;

    let mut strat_recall = std::collections::HashMap::new();
    for strategy in KnnStrategy::ALL {
        let mut sum = 0.0;
        for (q, t) in queries.iter().zip(&truth) {
            let ans = knn_approximate(&b.tardis, &b.cluster, q, k, strategy).unwrap();
            sum += recall(&ans.neighbors, t);
        }
        strat_recall.insert(strategy, sum / queries.len() as f64);
    }

    let tn = strat_recall[&KnnStrategy::TargetNode];
    let op = strat_recall[&KnnStrategy::OnePartition];
    let mp = strat_recall[&KnnStrategy::MultiPartition];
    // Monotone scope → monotone recall (small tolerance for ties).
    assert!(op + 1e-9 >= tn, "one-partition {op} < target-node {tn}");
    assert!(mp + 1e-9 >= op, "multi {mp} < one-partition {op}");
    // The headline: the widest TARDIS strategy beats the baseline.
    assert!(
        mp > baseline_recall,
        "multi-partition {mp} not better than baseline {baseline_recall}"
    );
}

#[test]
fn error_ratio_ordering_matches_paper() {
    let b = build_both(4_000);
    let k = 50;
    let workload = QueryWorkload::existing(&b.gen, b.n, 6, 9);
    let queries: Vec<TimeSeries> = workload.queries.iter().map(|(q, _)| q.clone()).collect();
    let truth = truths(&b, &queries, k);

    let mean_er = |answers: Vec<Vec<(f64, u64)>>| -> f64 {
        answers
            .iter()
            .zip(&truth)
            .map(|(a, t)| error_ratio(a, t))
            .sum::<f64>()
            / answers.len() as f64
    };

    let baseline_er = mean_er(
        queries
            .iter()
            .map(|q| baseline_knn(&b.baseline, &b.cluster, q, k).unwrap().neighbors)
            .collect(),
    );
    let mp_er = mean_er(
        queries
            .iter()
            .map(|q| {
                knn_approximate(&b.tardis, &b.cluster, q, k, KnnStrategy::MultiPartition)
                    .unwrap()
                    .neighbors
            })
            .collect(),
    );
    assert!(mp_er >= 1.0 - 1e-9);
    assert!(
        mp_er <= baseline_er + 1e-9,
        "multi-partition error ratio {mp_er} worse than baseline {baseline_er}"
    );
}

#[test]
fn tardis_tree_is_more_compact_than_ibt() {
    // §III-B "compact structure": shorter leaf depth than the binary tree
    // for the same data and threshold.
    let b = build_both(3_000);
    let pid = b.tardis.global().partition_of_series(&b.gen.series(1)).unwrap();
    let local = b.tardis.load_partition(&b.cluster, pid).unwrap();
    let t_stats = local.tree().stats();

    let bpid = b
        .baseline
        .global()
        .partition_of_series(&b.gen.series(1))
        .unwrap();
    let ibt = b.baseline.load_partition(&b.cluster, bpid).unwrap();
    let b_stats = ibt.stats();

    // sigTree leaf depth is bounded by the initial cardinality bits (6);
    // the iBT's depth (in edges) typically exceeds it on skew.
    assert!(t_stats.max_leaf_depth as u32 <= 6);
    assert!(
        t_stats.avg_leaf_depth <= b_stats.avg_leaf_depth + 1.0,
        "sigTree avg depth {} vs iBT {}",
        t_stats.avg_leaf_depth,
        b_stats.avg_leaf_depth
    );
}

#[test]
fn construction_shuffle_is_faster_for_tardis() {
    // Figure 10's shape at small scale: the baseline's read+convert+route
    // step (512 cardinality + table matching) costs more than TARDIS's
    // (64 cardinality + tree descent). Wall-clock is noisy in CI, so we
    // only require TARDIS not to be dramatically slower.
    let cluster = cluster();
    let gen = RandomWalk::with_len(55, 128);
    write_dataset(&cluster, "ds", &gen, 3_000, 300).unwrap();
    let t_cfg = TardisConfig {
        g_max_size: 700,
        l_max_size: 100,
        ..TardisConfig::default()
    };
    let b_cfg = BaselineConfig {
        g_max_size: 700,
        l_max_size: 100,
        ..BaselineConfig::default()
    };
    let (_, t_report) = TardisIndex::build(&cluster, "ds", &t_cfg).unwrap();
    let (_, b_report) = DpisaxIndex::build(&cluster, "ds", &b_cfg).unwrap();
    let t_step = t_report.read_convert + t_report.shuffle;
    let b_step = b_report.read_convert + b_report.shuffle;
    assert!(
        t_step.as_secs_f64() <= b_step.as_secs_f64() * 3.0,
        "TARDIS read+convert+shuffle {t_step:?} much slower than baseline {b_step:?}"
    );
}
