//! Seeded chaos suite: the full TARDIS pipeline (store → build → query)
//! must produce *identical* answers under injected block-I/O and task
//! faults, because every fault decision is a pure function of the plan
//! seed and the retry layer masks transient failures completely.
//!
//! Run directly with `cargo test --test chaos`.

use std::time::Duration;
use tardis::prelude::*;

const N_RECORDS: u64 = 6_000;
const BLOCK_RECORDS: u64 = 120;

fn chaos_config() -> TardisConfig {
    TardisConfig {
        g_max_size: 600,
        l_max_size: 100,
        sampling_fraction: 0.4,
        pth: 6,
        ..TardisConfig::default()
    }
}

/// The fault regime the acceptance criteria call for: ~5% of block
/// reads fail, 2% of tasks fail, and a slice of reads stall briefly.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        block_read_fail_p: 0.05,
        block_write_fail_p: 0.02,
        task_fail_p: 0.02,
        block_read_stall_p: 0.01,
        stall: Duration::from_micros(200),
        ..FaultPlan::none()
    }
}

/// Deep retry budget with zero backoff: with `p = 0.05` per attempt the
/// chance any single block read exhausts 8 attempts is 0.05^8 ≈ 4e-11,
/// so the faulted run is expected to succeed every time while still
/// exercising the retry path heavily.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        backoff_base: Duration::ZERO,
        backoff_cap: Duration::ZERO,
        ..RetryPolicy::default()
    }
}

fn cluster_with(faults: Option<FaultPlan>, retry: RetryPolicy) -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 4,
        faults,
        retry,
        ..ClusterConfig::default()
    })
    .unwrap()
}

/// Stores the dataset, builds the index, and answers a fixed battery of
/// exact-match and kNN queries. Returns everything the comparison needs.
#[allow(clippy::type_complexity)]
fn run_pipeline(
    cluster: &Cluster,
    gen: &RandomWalk,
) -> (u64, usize, Vec<Vec<u64>>, Vec<Vec<(f64, u64)>>) {
    write_dataset(cluster, "chaos", gen, N_RECORDS, BLOCK_RECORDS as usize).unwrap();
    let (index, report) = TardisIndex::build(cluster, "chaos", &chaos_config()).unwrap();

    let mut exact = Vec::new();
    for rid in [0u64, 1, N_RECORDS / 2, N_RECORDS - 1, N_RECORDS + 5] {
        let q = gen.series(rid);
        exact.push(exact_match(&index, cluster, &q, true).unwrap().matches);
    }

    let mut knn = Vec::new();
    for rid in [3u64, N_RECORDS / 3, N_RECORDS - 7] {
        let q = gen.series(rid);
        for strategy in KnnStrategy::ALL {
            knn.push(
                knn_approximate(&index, cluster, &q, 10, strategy)
                    .unwrap()
                    .neighbors,
            );
        }
    }

    (report.n_records, report.n_partitions, exact, knn)
}

/// Tentpole acceptance: a run under ~5% block-read faults and 2% task
/// faults retries its way to answers bit-identical to a fault-free run,
/// and the metrics prove faults actually fired and were retried.
#[test]
fn faulted_run_matches_clean_run_exactly() {
    let gen = RandomWalk::with_len(4242, 64);

    let clean = cluster_with(None, RetryPolicy::default());
    let clean_out = run_pipeline(&clean, &gen);

    let faulted = cluster_with(Some(chaos_plan(0xC4A0_5EED)), chaos_retry());
    let faulted_out = run_pipeline(&faulted, &gen);

    assert_eq!(clean_out.0, faulted_out.0, "record counts diverged");
    assert_eq!(clean_out.1, faulted_out.1, "partition counts diverged");
    assert_eq!(clean_out.2, faulted_out.2, "exact-match answers diverged");
    // f64 distances compare bit-for-bit: both runs execute the identical
    // arithmetic, faults only perturb *when* work happens, not *what*.
    assert_eq!(clean_out.3, faulted_out.3, "kNN answers diverged");

    let clean_m = clean.metrics().snapshot();
    assert_eq!(clean_m.faults_injected, 0);
    assert_eq!(clean_m.task_retries, 0);

    let m = faulted.metrics().snapshot();
    assert!(m.faults_injected > 0, "plan injected nothing: {m:?}");
    assert!(m.task_retries > 0, "no task was ever retried: {m:?}");
    assert!(
        m.block_read_retries > 0,
        "no block read was ever retried: {m:?}"
    );
    assert_eq!(
        m.tasks_failed_permanently, 0,
        "a task leaked through the retry budget: {m:?}"
    );
}

/// Re-running the *same* faulted plan is deterministic: identical
/// answers and identical fault/retry counters, independent of thread
/// scheduling.
#[test]
fn same_seed_same_chaos() {
    let gen = RandomWalk::with_len(99, 64);

    let a = cluster_with(Some(chaos_plan(7)), chaos_retry());
    let out_a = run_pipeline(&a, &gen);
    let m_a = a.metrics().snapshot();

    let b = cluster_with(Some(chaos_plan(7)), chaos_retry());
    let out_b = run_pipeline(&b, &gen);
    let m_b = b.metrics().snapshot();

    assert_eq!(out_a, out_b, "seeded chaos must be reproducible");
    assert_eq!(
        m_a.faults_injected, m_b.faults_injected,
        "fault decisions depended on scheduling"
    );
    assert_eq!(m_a.task_retries, m_b.task_retries);
    assert_eq!(m_a.block_read_retries, m_b.block_read_retries);
    assert_eq!(m_a.block_write_retries, m_b.block_write_retries);
}

/// Shared-scan batch engine under chaos: a batched workload on a
/// fault-injected cluster must return the same answers in the same
/// order as the fault-free run (task and DFS faults only perturb *when*
/// work happens), and the retry machinery must be visible in the merged
/// Prometheus dump.
#[test]
fn batch_under_faults_matches_clean_run() {
    let gen = RandomWalk::with_len(777, 64);
    let queries: Vec<TimeSeries> = (0..40)
        .map(|i| gen.series(if i % 4 == 0 { N_RECORDS + i } else { (i * 131) % N_RECORDS }))
        .collect();

    let run = |cluster: &Cluster| {
        write_dataset(cluster, "chaos-batch", &gen, N_RECORDS, BLOCK_RECORDS as usize).unwrap();
        let (index, _) = TardisIndex::build(cluster, "chaos-batch", &chaos_config()).unwrap();
        let exact = exact_match_batch(&index, cluster, &queries, true).unwrap();
        let knn = knn_batch(&index, cluster, &queries, 8, KnnStrategy::MultiPartition).unwrap();
        let eknn = exact_knn_batch(&index, cluster, &queries[..10], 5).unwrap();
        (exact, knn, eknn)
    };

    let clean = cluster_with(None, RetryPolicy::default());
    let (c_exact, c_knn, c_eknn) = run(&clean);

    let faulted = cluster_with(Some(chaos_plan(0xBA7C_4A05)), chaos_retry());
    let (f_exact, f_knn, f_eknn) = run(&faulted);

    assert_eq!(c_exact, f_exact, "batched exact-match answers diverged");
    for (a, b) in c_knn.iter().zip(&f_knn) {
        assert_eq!(a.neighbors, b.neighbors, "batched kNN answers diverged");
        assert_eq!(a.partitions_loaded, b.partitions_loaded);
    }
    for (a, b) in c_eknn.iter().zip(&f_eknn) {
        assert_eq!(a.neighbors.len(), b.neighbors.len());
        for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
            assert_eq!(x.rid, y.rid, "batched exact-kNN answers diverged");
            assert_eq!(x.distance.to_bits(), y.distance.to_bits());
        }
    }

    let m = faulted.metrics().snapshot();
    assert!(m.faults_injected > 0, "plan injected nothing: {m:?}");
    assert!(m.task_retries > 0, "no task was ever retried: {m:?}");
    assert_eq!(m.tasks_failed_permanently, 0, "a task leaked: {m:?}");
    // The retries are visible in the merged Prometheus dump.
    let dump = m.prometheus_text(None);
    assert!(dump.contains("task_retries"), "missing retry metric:\n{dump}");
    let line = dump
        .lines()
        .find(|l| l.contains("task_retries") && !l.starts_with('#'))
        .unwrap();
    let value: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
    assert!(value > 0.0, "retry counter not exported: {line}");
}

/// Over-budget faults surface as a clean typed error — no panic, no
/// hang: every block read fails and the budget is tiny, so the build
/// must report an exhausted retry chain through the core error type.
#[test]
fn over_budget_faults_surface_typed_error() {
    let gen = RandomWalk::with_len(5, 64);
    let cluster = cluster_with(
        Some(FaultPlan {
            seed: 13,
            block_read_fail_p: 1.0,
            ..FaultPlan::default()
        }),
        RetryPolicy {
            max_attempts: 2,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            ..RetryPolicy::default()
        },
    );
    // Writes are unaffected, so storing the dataset succeeds.
    write_dataset(&cluster, "doomed", &gen, 500, 100).unwrap();

    let err = match TardisIndex::build(&cluster, "doomed", &chaos_config()) {
        Ok(_) => panic!("every read fails; the build cannot succeed"),
        Err(e) => e,
    };
    match &err {
        CoreError::Cluster(c) => {
            assert!(
                !c.is_transient(),
                "surfaced error must be permanent, got {c}"
            );
            let msg = err.to_string();
            assert!(
                msg.contains("failed permanently after"),
                "expected an exhausted-retries chain, got: {msg}"
            );
        }
        other => panic!("expected a cluster-layer error, got {other}"),
    }

    let m = cluster.metrics().snapshot();
    assert!(m.faults_injected > 0);
    assert!(
        m.tasks_failed_permanently > 0 || m.block_read_retries > 0,
        "failure should have gone through the retry machinery: {m:?}"
    );
}

/// Replication acceptance: with the default replication factor (2),
/// killing one seed-chosen replica of *every* block — the worst
/// single-replica loss pattern — is masked entirely by replica failover.
/// Exact-match, kNN, and batch answers are byte-identical to a fault-free
/// run, failovers are visible in the metrics, and not a single block
/// read burns a retry attempt (failover happens *within* one attempt).
#[test]
fn killing_one_replica_of_every_block_is_fully_masked() {
    let gen = RandomWalk::with_len(31_337, 64);
    let queries: Vec<TimeSeries> = (0..24)
        .map(|i| gen.series((i * 197) % N_RECORDS))
        .collect();

    let run = |cluster: &Cluster| {
        let out = run_pipeline(cluster, &gen);
        write_dataset(cluster, "chaos-b", &gen, N_RECORDS, BLOCK_RECORDS as usize).unwrap();
        let (index, _) = TardisIndex::build(cluster, "chaos-b", &chaos_config()).unwrap();
        let exact = exact_match_batch(&index, cluster, &queries, true).unwrap();
        let knn = knn_batch(&index, cluster, &queries, 8, KnnStrategy::MultiPartition).unwrap();
        (out, exact, knn)
    };

    let clean = cluster_with(None, RetryPolicy::default());
    let (c_out, c_exact, c_knn) = run(&clean);

    let lossy = cluster_with(
        Some(FaultPlan {
            seed: 0xDEAD_0001,
            kill_one_replica: true,
            ..FaultPlan::none()
        }),
        RetryPolicy::default(),
    );
    let (l_out, l_exact, l_knn) = run(&lossy);

    assert_eq!(c_out, l_out, "single-query answers diverged");
    assert_eq!(c_exact, l_exact, "batched exact-match answers diverged");
    for (a, b) in c_knn.iter().zip(&l_knn) {
        assert_eq!(a.neighbors, b.neighbors, "batched kNN answers diverged");
    }

    let m = lossy.metrics().snapshot();
    assert!(m.replica_failovers > 0, "no failover ever fired: {m:?}");
    assert_eq!(
        m.block_read_retries, 0,
        "replica failover must not burn retry attempts: {m:?}"
    );
    assert_eq!(m.tasks_failed_permanently, 0);
}

/// Silent write-time corruption of stored replicas is detected by the
/// per-block checksum and masked by failing over to a healthy replica:
/// answers stay byte-identical and the checksum failures are metered.
/// Replication 3 keeps the odds of a fully-corrupted block negligible;
/// the seed is fixed and verified by the assertion itself.
#[test]
fn write_time_corruption_is_masked_by_checksum_failover() {
    let gen = RandomWalk::with_len(2_024, 64);

    let cluster_corrupt = |seed: u64| {
        Cluster::new(ClusterConfig {
            n_workers: 4,
            dfs: DfsConfig {
                replication: 3,
                datanodes: 3,
                ..DfsConfig::default()
            },
            faults: Some(FaultPlan {
                seed,
                block_corrupt_p: 0.15,
                ..FaultPlan::none()
            }),
            retry: RetryPolicy::default(),
        })
        .unwrap()
    };

    let clean = cluster_with(None, RetryPolicy::default());
    let clean_out = run_pipeline(&clean, &gen);

    let corrupt = cluster_corrupt(0x0C04_40B7);
    let corrupt_out = run_pipeline(&corrupt, &gen);

    assert_eq!(clean_out, corrupt_out, "corruption leaked into answers");
    let m = corrupt.metrics().snapshot();
    assert!(m.faults_injected > 0, "no corruption was ever injected: {m:?}");
    assert!(
        m.checksum_failures > 0,
        "corrupt replicas were never read, the test proves nothing: {m:?}"
    );
    assert!(m.replica_failovers > 0, "no failover ever fired: {m:?}");
}

/// Backoff sleeps route through the injectable clock: a retry-heavy run
/// with second-scale backoff completes instantly on the wall clock while
/// the virtual clock audits exactly how long production would have
/// slept.
#[test]
fn retry_backoff_goes_through_virtual_clock() {
    use std::sync::Arc;
    let gen = RandomWalk::with_len(606, 64);
    let clock = Arc::new(VirtualClock::new());
    let cluster = cluster_with(
        Some(FaultPlan {
            seed: 0x0BAC_C0FF,
            block_read_fail_p: 0.2,
            task_fail_p: 0.05,
            ..FaultPlan::none()
        }),
        RetryPolicy {
            max_attempts: 8,
            backoff_base: Duration::from_secs(1),
            backoff_cap: Duration::from_secs(8),
            ..RetryPolicy::default()
        }
        .with_virtual_clock(Arc::clone(&clock)),
    );

    let t0 = std::time::Instant::now();
    write_dataset(&cluster, "vclock", &gen, 1_000, 100).unwrap();
    let (index, _) = TardisIndex::build(&cluster, "vclock", &chaos_config()).unwrap();
    let q = gen.series(3);
    assert_eq!(exact_match(&index, &cluster, &q, true).unwrap().matches, vec![3]);

    let m = cluster.metrics().snapshot();
    assert!(m.block_read_retries > 0, "no retry ever slept: {m:?}");
    assert!(
        clock.slept() >= Duration::from_secs(1),
        "backoff never reached the virtual clock: slept {:?}",
        clock.slept()
    );
    assert!(
        t0.elapsed() < clock.slept(),
        "virtual backoff must not block the wall clock (elapsed {:?}, virtual {:?})",
        t0.elapsed(),
        clock.slept()
    );
}

/// Load-balanced routing's adversarial case: the *least-loaded* node is
/// exactly where the router sends every next read, so losing that node
/// mid-run hits the preferred probe target of all in-flight traffic.
/// Failover must mask it completely — concurrent queries racing the kill
/// and everything after it return answers byte-identical to a healthy
/// run, and the dead-node probes are visible in the per-node counters.
#[test]
fn killing_the_least_loaded_node_mid_run_is_masked() {
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("tardis-chaos-killmin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let at = |n_workers: usize| {
        Cluster::at_dir(
            &dir,
            ClusterConfig {
                n_workers,
                ..ClusterConfig::default() // replication 2 over 3 datanodes
            },
        )
        .unwrap()
    };

    let gen = RandomWalk::with_len(808, 64);
    let build = at(4);
    write_dataset(&build, "killmin", &gen, 2_000, 100).unwrap();
    let config = TardisConfig {
        g_max_size: 400,
        l_max_size: 100,
        sampling_fraction: 0.4,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&build, "killmin", &config).unwrap();
    let index = Arc::new(index);

    type Battery = (Vec<Vec<u64>>, Vec<Vec<(f64, u64)>>);
    let battery = |cluster: &Cluster| -> Battery {
        let mut exact = Vec::new();
        let mut knn = Vec::new();
        for rid in [0u64, 7, 555, 1_999, 2_345] {
            let q = gen.series(rid);
            exact.push(exact_match(&index, cluster, &q, true).unwrap().matches);
            knn.push(
                knn_approximate(&index, cluster, &q, 8, KnnStrategy::MultiPartition)
                    .unwrap()
                    .neighbors,
            );
        }
        (exact, knn)
    };

    // Reference answers with every node healthy.
    let reference = battery(&build);
    drop(build);

    // Fresh cluster: heat the counters, find the least-loaded node, then
    // wipe it while query threads are mid-flight.
    let victim_cluster = Arc::new(at(4));
    let _ = battery(&victim_cluster);
    let snap = victim_cluster.metrics().snapshot();
    let victim = (0..3u32)
        .min_by_key(|&n| snap.node_reads[n as usize])
        .unwrap();

    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for _ in 0..3 {
            let cluster = Arc::clone(&victim_cluster);
            let battery = &battery;
            workers.push(s.spawn(move || {
                let mut outs = Vec::new();
                for _ in 0..3 {
                    outs.push(battery(&cluster));
                }
                outs
            }));
        }
        std::thread::sleep(Duration::from_millis(5));
        std::fs::remove_dir_all(dir.join(format!("node-{victim}"))).unwrap();
        for worker in workers {
            for out in worker.join().unwrap() {
                assert_eq!(out, reference, "answers diverged racing the node kill");
            }
        }
    });

    // The node is gone for good: one more battery must still match, and
    // the router — which *prefers* the under-counted dead node — must
    // have probed it and failed over.
    assert_eq!(battery(&victim_cluster), reference, "post-kill answers diverged");
    let m = victim_cluster.metrics().snapshot();
    assert!(
        m.node_probe_missing[victim as usize] > 0,
        "the dead node was never probed: {m:?}"
    );
    assert!(m.replica_failovers > 0, "no failover ever fired: {m:?}");
    assert_eq!(m.tasks_failed_permanently, 0, "the kill leaked: {m:?}");

    drop(victim_cluster);
    std::fs::remove_dir_all(&dir).ok();
}

/// Continuous-ingest acceptance: a seeded faulted run interleaving
/// ingest batches, queries over base ∪ deltas, and compactions must be
/// **bit-identical** to a quiesced oracle — a fault-free single-worker
/// cluster replaying the exact same ingest/compaction sequence. Answers
/// are a pure function of the logical index state; faults perturb only
/// *when* work happens. The retry machinery must be visible in the
/// Prometheus dump and nothing may fail permanently.
#[test]
fn ingest_compaction_chaos_matches_quiesced_oracle() {
    let gen = RandomWalk::with_len(0x1A6E_5700, 64);

    // The seeded interleaving: Some(range) seals a delta, None compacts.
    // The final ingest stays live so the comparison covers deltas too.
    let ops: Vec<Option<std::ops::Range<u64>>> = vec![
        Some(N_RECORDS..N_RECORDS + 500),
        Some(N_RECORDS + 500..N_RECORDS + 800),
        None,
        Some(N_RECORDS + 800..N_RECORDS + 1_100),
        None,
        Some(N_RECORDS + 1_100..N_RECORDS + 1_300),
    ];

    #[derive(Debug, PartialEq)]
    struct Sheet {
        exact: Vec<Vec<u64>>,
        knn: Vec<Vec<(f64, u64)>>,
        exact_knn: Vec<Vec<(f64, u64)>>,
        range: Vec<Vec<(u64, f64)>>,
        batch_exact: Vec<Vec<u64>>,
        batch_knn: Vec<Vec<(f64, u64)>>,
        version: u64,
        live_deltas: usize,
    }

    let run = |cluster: &Cluster| -> Sheet {
        write_dataset(cluster, "chaos-ingest", &gen, N_RECORDS, BLOCK_RECORDS as usize).unwrap();
        let (mut index, _) =
            TardisIndex::build(cluster, "chaos-ingest", &chaos_config()).unwrap();
        let mut sheet = Sheet {
            exact: Vec::new(),
            knn: Vec::new(),
            exact_knn: Vec::new(),
            range: Vec::new(),
            batch_exact: Vec::new(),
            batch_knn: Vec::new(),
            version: 0,
            live_deltas: 0,
        };
        let mut last_ingested = 0u64;
        for (step, op) in ops.iter().enumerate() {
            match op {
                Some(batch) => {
                    let records: Vec<Record> = batch
                        .clone()
                        .map(|rid| Record::new(rid, gen.series(rid)))
                        .collect();
                    index.ingest_batch(cluster, records).unwrap();
                    last_ingested = batch.end - 1;
                }
                None => {
                    index.compact(cluster).unwrap();
                }
            }
            // Probe every query path after every mutation.
            for rid in [
                step as u64 * 919 % N_RECORDS,
                N_RECORDS, // first-ever ingested (compacted later)
                last_ingested,
                N_RECORDS * 3, // absent
            ] {
                let q = gen.series(rid);
                sheet
                    .exact
                    .push(exact_match(&index, cluster, &q, true).unwrap().matches);
                for strategy in KnnStrategy::ALL {
                    sheet.knn.push(
                        knn_approximate(&index, cluster, &q, 8, strategy)
                            .unwrap()
                            .neighbors,
                    );
                }
                sheet.exact_knn.push(
                    exact_knn(&index, cluster, &q, 5)
                        .unwrap()
                        .neighbors
                        .into_iter()
                        .map(|nb| (nb.distance, nb.rid))
                        .collect(),
                );
                sheet.range.push(
                    range_query(&index, cluster, &q, 2.0)
                        .unwrap()
                        .matches
                        .into_iter()
                        .map(|nb| (nb.rid, nb.distance))
                        .collect(),
                );
            }
        }
        // Shared-scan batch engines over the final base ∪ deltas state.
        let queries: Vec<TimeSeries> = (0..16u64)
            .map(|i| {
                gen.series(match i % 4 {
                    0 => (i * 131) % N_RECORDS,
                    1 => N_RECORDS + (i * 67) % 1_300,
                    2 => last_ingested - i,
                    _ => N_RECORDS * 3 + i, // absent
                })
            })
            .collect();
        sheet.batch_exact = exact_match_batch(&index, cluster, &queries, true)
            .unwrap()
            .into_iter()
            .map(|o| o.matches)
            .collect();
        sheet.batch_knn = knn_batch(&index, cluster, &queries, 8, KnnStrategy::MultiPartition)
            .unwrap()
            .into_iter()
            .map(|a| a.neighbors)
            .collect();
        sheet.version = index.manifest_version();
        sheet.live_deltas = index.n_deltas();
        sheet
    };

    // Quiesced oracle: no faults, a single worker, sequential replay.
    let oracle_cluster = Cluster::new(ClusterConfig {
        n_workers: 1,
        ..ClusterConfig::default()
    })
    .unwrap();
    let oracle = run(&oracle_cluster);
    assert_eq!(oracle.version, 2, "two compactions must bump twice");
    assert_eq!(oracle.live_deltas, 1, "the last ingest must stay live");

    // Chaos run: same sequence under block/task faults with retries.
    let faulted = cluster_with(Some(chaos_plan(0x1A6E_5EED)), chaos_retry());
    let chaos = run(&faulted);
    assert_eq!(chaos, oracle, "faulted ingest run diverged from the quiesced oracle");

    let m = faulted.metrics().snapshot();
    assert!(m.faults_injected > 0, "plan injected nothing: {m:?}");
    assert_eq!(m.records_ingested, 1_300);
    assert_eq!(m.deltas_sealed, 4);
    assert_eq!(m.compactions, 2);
    assert_eq!(
        m.tasks_failed_permanently, 0,
        "an ingest-path task leaked through the retry budget: {m:?}"
    );
    // Retries visible in the Prometheus dump.
    let dump = m.prometheus_text(None);
    let line = dump
        .lines()
        .find(|l| l.contains("task_retries") && !l.starts_with('#'))
        .expect("task_retries exported");
    let value: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
    assert!(value > 0.0, "retry counter not exported: {line}");
}

/// A plan with every probability at zero behaves exactly like no plan:
/// the injector is wired in but never fires.
#[test]
fn zero_probability_plan_is_inert() {
    let gen = RandomWalk::with_len(1, 64);
    let cluster = cluster_with(
        Some(FaultPlan {
            seed: 3,
            ..FaultPlan::none()
        }),
        RetryPolicy::default(),
    );
    let (n, _, exact, _) = run_pipeline(&cluster, &gen);
    assert_eq!(n, N_RECORDS);
    assert_eq!(exact[0], vec![0]);

    let m = cluster.metrics().snapshot();
    assert_eq!(m.faults_injected, 0);
    assert_eq!(m.task_retries, 0);
    assert_eq!(m.block_read_retries, 0);
}
