//! Integration tests for the extension query types (exact kNN and
//! ε-range) across dataset families, against brute force.

use tardis::core::query::exact_knn::exact_knn;
use tardis::prelude::*;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn build(gen: &dyn SeriesGen, n: u64) -> (Cluster, TardisIndex) {
    let c = cluster();
    write_dataset(&c, "ds", gen, n, 250).unwrap();
    let config = TardisConfig {
        g_max_size: 500,
        l_max_size: 80,
        sampling_fraction: 0.4,
        pth: 6,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&c, "ds", &config).unwrap();
    (c, index)
}

#[test]
fn exact_knn_matches_ground_truth_on_every_family() {
    let gens: Vec<Box<dyn SeriesGen>> = vec![
        Box::new(RandomWalk::with_len(1, 96)),
        Box::new(TexmexLike::new(2)),
        Box::new(DnaLike::new(3)),
        Box::new(NoaaLike::new(4)),
    ];
    for gen in gens {
        let (c, index) = build(gen.as_ref(), 2_000);
        let q = gen.series(777);
        let truth = ground_truth_knn(&c, "ds", &q, 8).unwrap();
        let got = exact_knn(&index, &c, &q, 8).unwrap();
        assert_eq!(got.neighbors.len(), 8, "{}", gen.name());
        for (a, b) in got.neighbors.iter().zip(&truth) {
            assert!(
                (a.distance - b.distance).abs() < 1e-9,
                "{}: {} vs {}",
                gen.name(),
                a.distance,
                b.distance
            );
        }
    }
}

#[test]
fn range_query_complete_and_sound_on_every_family() {
    let gens: Vec<Box<dyn SeriesGen>> = vec![
        Box::new(RandomWalk::with_len(5, 96)),
        Box::new(NoaaLike::new(6)),
    ];
    for gen in gens {
        let n = 1_500u64;
        let (c, index) = build(gen.as_ref(), n);
        let q = gen.series(321);
        let eps = 7.0;
        let got = range_query(&index, &c, &q, eps).unwrap();
        // Sound: every returned distance really ≤ ε and correct.
        for m in &got.matches {
            let d = euclidean(&q, &gen.series(m.rid)).unwrap();
            assert!((d - m.distance).abs() < 1e-9, "{}", gen.name());
            assert!(d <= eps + 1e-9);
        }
        // Complete: brute force finds nothing extra.
        let mut expected = 0usize;
        for rid in 0..n {
            if euclidean(&q, &gen.series(rid)).unwrap() <= eps {
                expected += 1;
            }
        }
        assert_eq!(got.matches.len(), expected, "{}", gen.name());
    }
}

#[test]
fn range_of_epsilon_zero_equals_exact_match() {
    let gen = RandomWalk::with_len(9, 64);
    let (c, index) = build(&gen, 1_000);
    let q = gen.series(404);
    let range = range_query(&index, &c, &q, 0.0).unwrap();
    let exact = exact_match(&index, &c, &q, true).unwrap();
    let range_rids: Vec<u64> = range.matches.iter().map(|m| m.rid).collect();
    assert_eq!(range_rids, exact.matches);
}

#[test]
fn exact_knn_on_reopened_index() {
    let gen = RandomWalk::with_len(11, 64);
    let (c, index) = build(&gen, 1_200);
    index.save(&c, "m").unwrap();
    let reopened = TardisIndex::open(&c, "m").unwrap();
    let q = gen.series(100);
    let a = exact_knn(&index, &c, &q, 6).unwrap();
    let b = exact_knn(&reopened, &c, &q, 6).unwrap();
    for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
        assert_eq!(x.rid, y.rid);
    }
}

#[test]
fn imported_dataset_full_pipeline() {
    // Write a series file, import it via tardis-data, index it, query it.
    let gen = NoaaLike::with_stations(7, 100);
    let series: Vec<TimeSeries> = (0..600).map(|rid| gen.series(rid)).collect();
    let path = std::env::temp_dir().join(format!("tardis-import-{}.txt", std::process::id()));
    tardis::data::write_series_file(&path, &series).unwrap();
    let loaded = tardis::data::read_series_file(&path, true).unwrap();
    assert_eq!(loaded.len(), 600);

    let c = cluster();
    write_dataset(&c, "imported", &loaded, 600, 100).unwrap();
    let config = TardisConfig {
        g_max_size: 200,
        l_max_size: 40,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, report) = TardisIndex::build(&c, "imported", &config).unwrap();
    assert_eq!(report.n_records, 600);
    // Query with a member of the imported file.
    let q = loaded.series(42);
    let hit = exact_match(&index, &c, &q, true).unwrap();
    assert!(hit.matches.contains(&42));
    std::fs::remove_file(&path).unwrap();
}
