//! Cross-crate property tests: end-to-end invariants that must hold for
//! arbitrary (small) datasets and configurations.

use proptest::prelude::*;
use tardis::prelude::*;

fn build(seed: u64, n: u64, g_max: usize, l_max: usize) -> (Cluster, TardisIndex, RandomWalk) {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let gen = RandomWalk::with_len(seed, 64);
    write_dataset(&cluster, "ds", &gen, n, 64).unwrap();
    let config = TardisConfig {
        g_max_size: g_max,
        l_max_size: l_max,
        sampling_fraction: 0.5,
        pth: 4,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "ds", &config).unwrap();
    (cluster, index, gen)
}

proptest! {
    // Each case builds a full index; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_member_is_exactly_matchable(
        seed in 1u64..1000,
        n in 200u64..600,
        g_max in 100usize..300,
        l_max in 20usize..80,
    ) {
        let (cluster, index, gen) = build(seed, n, g_max, l_max);
        // Partition counts conserve records.
        let stored: u64 = index.partitions().iter().map(|p| p.n_records).sum();
        prop_assert_eq!(stored, n);
        for rid in [0, n / 2, n - 1] {
            let q = gen.series(rid);
            let out = exact_match(&index, &cluster, &q, true).unwrap();
            prop_assert_eq!(out.matches, vec![rid]);
        }
    }

    #[test]
    fn knn_always_returns_self_for_member_queries(
        seed in 1u64..1000,
        n in 200u64..500,
        k in 1usize..20,
    ) {
        let (cluster, index, gen) = build(seed, n, 150, 30);
        let rid = seed % n;
        let q = gen.series(rid);
        for strategy in KnnStrategy::ALL {
            let ans = knn_approximate(&index, &cluster, &q, k, strategy).unwrap();
            prop_assert!(!ans.neighbors.is_empty());
            prop_assert_eq!(ans.neighbors[0].1, rid);
            prop_assert!(ans.neighbors[0].0 < 1e-6);
            prop_assert!(ans.neighbors.len() <= k);
        }
    }

    #[test]
    fn error_ratio_at_least_one(
        seed in 1u64..500,
        n in 200u64..400,
    ) {
        let (cluster, index, gen) = build(seed, n, 150, 30);
        let q = gen.series((seed * 7) % n);
        let truth = ground_truth_knn(&cluster, "ds", &q, 10).unwrap();
        for strategy in KnnStrategy::ALL {
            let ans = knn_approximate(&index, &cluster, &q, 10, strategy).unwrap();
            let er = error_ratio(&ans.neighbors, &truth);
            prop_assert!(er >= 1.0 - 1e-9, "{:?}: {}", strategy, er);
        }
    }

    #[test]
    fn bloom_never_false_negative_end_to_end(
        seed in 1u64..500,
        n in 200u64..500,
    ) {
        let (cluster, index, gen) = build(seed, n, 200, 40);
        // Every member must pass the Bloom test of its own partition.
        for rid in (0..n).step_by((n as usize / 10).max(1)) {
            let q = gen.series(rid);
            let out = exact_match(&index, &cluster, &q, true).unwrap();
            prop_assert!(!out.bloom_rejected, "member {rid} bloom-rejected");
            prop_assert_eq!(out.matches, vec![rid]);
        }
    }
}
