//! Opt-in stress tests at a larger scale (run with `cargo test -- --ignored`).
//!
//! These exercise the same pipelines as the regular suite but at sizes
//! closer to a real deployment's per-node share, taking tens of seconds.

use tardis::prelude::*;

#[test]
#[ignore = "large: ~200k records, run with --ignored"]
fn two_hundred_thousand_records_end_to_end() {
    let cluster = Cluster::new(ClusterConfig::default()).unwrap();
    let gen = RandomWalk::with_len(99, 128);
    let n: u64 = 200_000;
    write_dataset(&cluster, "big", &gen, n, 5_000).unwrap();
    let config = TardisConfig {
        g_max_size: 20_000,
        l_max_size: 1_000, // the paper's actual L-MaxSize
        ..TardisConfig::default()
    };
    let t0 = std::time::Instant::now();
    let (index, report) = TardisIndex::build(&cluster, "big", &config).unwrap();
    println!(
        "built {} records into {} partitions in {:?}",
        report.n_records,
        report.n_partitions,
        t0.elapsed()
    );
    assert_eq!(report.n_records, n);
    let stored: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    assert_eq!(stored, n);

    // Exact-match spot checks.
    for rid in [0u64, 99_999, 199_999] {
        let out = exact_match(&index, &cluster, &gen.series(rid), true).unwrap();
        assert_eq!(out.matches, vec![rid]);
    }
    // Absent queries mostly skip partition loads.
    let mut loads = 0;
    for rid in 0..50u64 {
        let out = exact_match(&index, &cluster, &gen.series(n + rid), true).unwrap();
        assert!(out.matches.is_empty());
        loads += out.partitions_loaded;
    }
    assert!(loads <= 5, "bloom filters should stop most absent loads: {loads}");

    // kNN self-hit at the paper's k scale.
    let q = gen.series(123_456);
    let ans = knn_approximate(&index, &cluster, &q, 500, KnnStrategy::MultiPartition).unwrap();
    assert_eq!(ans.neighbors[0].1, 123_456);
    assert_eq!(ans.neighbors.len(), 500);
}

#[test]
#[ignore = "large: persistence at 100k records, run with --ignored"]
fn persistence_roundtrip_at_scale() {
    let cluster = Cluster::new(ClusterConfig::default()).unwrap();
    let gen = NoaaLike::new(5);
    let n: u64 = 100_000;
    write_dataset(&cluster, "big", &gen, n, 5_000).unwrap();
    let config = TardisConfig {
        g_max_size: 10_000,
        l_max_size: 1_000,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "big", &config).unwrap();
    index.save(&cluster, "big-idx").unwrap();
    let t0 = std::time::Instant::now();
    let reopened = TardisIndex::open(&cluster, "big-idx").unwrap();
    println!("reopened {} partitions in {:?}", reopened.n_partitions(), t0.elapsed());
    for rid in (0..n).step_by(9_973) {
        let q = gen.series(rid);
        assert_eq!(
            exact_match(&reopened, &cluster, &q, true).unwrap().matches,
            exact_match(&index, &cluster, &q, true).unwrap().matches
        );
    }
}
