//! Stress tests: scheduler-isolation tests that always run, plus opt-in
//! large-scale tests (run those with `cargo test -- --ignored`).
//!
//! The large tests exercise the same pipelines as the regular suite but
//! at sizes closer to a real deployment's per-node share, taking tens of
//! seconds. The scheduler tests pin down two properties of the
//! work-stealing partition scheduler: a straggler partition delays only
//! the queries that touch it, and stealing never changes *what* runs —
//! only where — so physical partition loads match the non-stealing
//! engine exactly.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tardis::prelude::*;

/// A persistent cluster dir under the system temp dir, so the same
/// stored dataset/index can be reopened with different worker widths
/// and fault plans.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "tardis-stress-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Builds a small multi-partition index at `dir` and returns the pid a
/// probe query routes to (the partition the fault plan will slow down).
fn build_shared_index(dir: &Path, gen: &RandomWalk) -> u32 {
    let cluster = Cluster::at_dir(dir, ClusterConfig::default()).unwrap();
    write_dataset(&cluster, "ds", gen, 3_000, 250).unwrap();
    let config = TardisConfig {
        g_max_size: 600,
        l_max_size: 120,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, report) = TardisIndex::build(&cluster, "ds", &config).unwrap();
    assert!(report.n_partitions >= 4, "need several partitions, got {}", report.n_partitions);
    index.save(&cluster, "idx").unwrap();
    let sig = index.global().converter().sig_of(&gen.series(0)).unwrap();
    index.global().partition_of(&sig)
}

fn reopen(dir: &Path, n_workers: usize, faults: Option<FaultPlan>) -> (Cluster, TardisIndex) {
    let cluster = Cluster::at_dir(
        dir,
        ClusterConfig {
            n_workers,
            faults,
            ..ClusterConfig::default()
        },
    )
    .unwrap();
    let index = TardisIndex::open(&cluster, "idx").unwrap();
    (cluster, index)
}

/// A straggler partition (its scan tasks sleep via the `slow_task`
/// delay hook) slows only batches that touch it: an unrelated batch
/// running concurrently on the same pool finishes well under the
/// straggler's delay, because its tasks are stolen onto free workers
/// instead of queuing behind the sleeper.
#[test]
fn slow_partition_does_not_delay_unrelated_queries() {
    let tmp = TempDir::new("slow");
    let gen = RandomWalk::with_len(41, 64);
    let slow_pid = build_shared_index(&tmp.0, &gen);
    const DELAY: Duration = Duration::from_millis(500);
    let plan = FaultPlan {
        slow_task: Some((u64::from(slow_pid), DELAY)),
        ..FaultPlan::default()
    };
    let (cluster, index) = reopen(&tmp.0, 4, Some(plan));
    let cluster = Arc::new(cluster);
    let index = Arc::new(index);

    // Split a workload by routed partition: queries into `slow_pid` vs
    // everything else.
    let converter = index.global().converter();
    let mut slow_queries = Vec::new();
    let mut fast_queries = Vec::new();
    for rid in 0..600u64 {
        let q = gen.series(rid);
        let pid = index.global().partition_of(&converter.sig_of(&q).unwrap());
        if pid == slow_pid {
            slow_queries.push(q);
        } else if fast_queries.len() < 24 {
            fast_queries.push(q);
        }
    }
    assert!(!slow_queries.is_empty(), "probe partition got no queries");
    slow_queries.truncate(4);

    // Run the straggler batch and the unrelated batch concurrently on
    // the shared pool.
    let slow_handle = {
        let (cluster, index) = (Arc::clone(&cluster), Arc::clone(&index));
        std::thread::spawn(move || {
            let t0 = Instant::now();
            exact_match_batch(&index, &cluster, &slow_queries, false).unwrap();
            t0.elapsed()
        })
    };
    // Give the straggler batch a head start so its slow task occupies a
    // worker before the unrelated batch arrives.
    std::thread::sleep(Duration::from_millis(50));
    let t0 = Instant::now();
    let answers = exact_match_batch(&index, &cluster, &fast_queries, false).unwrap();
    let fast_elapsed = t0.elapsed();
    let slow_elapsed = slow_handle.join().unwrap();

    for (i, o) in answers.iter().enumerate() {
        assert!(!o.matches.is_empty(), "query {i} lost its self-match");
    }
    assert!(
        slow_elapsed >= DELAY,
        "straggler batch must pay the injected delay, took {slow_elapsed:?}"
    );
    // Bounded-interference claim: the unrelated batch finishes in well
    // under the straggler's delay (generous margin for CI noise).
    assert!(
        fast_elapsed < Duration::from_millis(400),
        "unrelated batch was delayed by the straggler: {fast_elapsed:?}"
    );
}

/// Work stealing changes where a partition task runs, never whether it
/// runs: the physical `tasks_run` count (one per partition load) and
/// every answer are identical between the inline width-1 engine (no
/// stealing possible) and a width-8 pool (stealing active).
#[test]
fn stealing_runs_each_partition_task_exactly_once() {
    let tmp = TempDir::new("parity");
    let gen = RandomWalk::with_len(43, 64);
    build_shared_index(&tmp.0, &gen);

    let queries: Vec<TimeSeries> = (0..48u64).map(|i| gen.series(i * 37)).collect();
    let run = |n_workers: usize| {
        let (cluster, index) = reopen(&tmp.0, n_workers, None);
        cluster.metrics().reset();
        let exact = exact_match_batch(&index, &cluster, &queries, true).unwrap();
        let knn = knn_batch(&index, &cluster, &queries, 5, KnnStrategy::MultiPartition).unwrap();
        let snap = cluster.metrics().snapshot();
        let knn_flat: Vec<Vec<(f64, u64)>> = knn.into_iter().map(|a| a.neighbors).collect();
        let exact_flat: Vec<Vec<u64>> = exact.into_iter().map(|o| o.matches).collect();
        (exact_flat, knn_flat, snap.tasks_run, snap.tasks_stolen)
    };

    let (exact1, knn1, tasks1, stolen1) = run(1);
    let (exact8, knn8, tasks8, stolen8) = run(8);
    assert_eq!(exact1, exact8, "exact answers must not depend on pool width");
    assert_eq!(knn1, knn8, "knn answers must not depend on pool width");
    assert_eq!(
        tasks1, tasks8,
        "stealing must not duplicate or drop partition loads"
    );
    assert_eq!(stolen1, 0, "width-1 engine runs inline, nothing to steal");
    // Width 8 usually steals, but an idle-timing run may not; the
    // counter only has to be consistent with no double-loads above.
    let _ = stolen8;
}

#[test]
#[ignore = "large: ~200k records, run with --ignored"]
fn two_hundred_thousand_records_end_to_end() {
    let cluster = Cluster::new(ClusterConfig::default()).unwrap();
    let gen = RandomWalk::with_len(99, 128);
    let n: u64 = 200_000;
    write_dataset(&cluster, "big", &gen, n, 5_000).unwrap();
    let config = TardisConfig {
        g_max_size: 20_000,
        l_max_size: 1_000, // the paper's actual L-MaxSize
        ..TardisConfig::default()
    };
    let t0 = std::time::Instant::now();
    let (index, report) = TardisIndex::build(&cluster, "big", &config).unwrap();
    println!(
        "built {} records into {} partitions in {:?}",
        report.n_records,
        report.n_partitions,
        t0.elapsed()
    );
    assert_eq!(report.n_records, n);
    let stored: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    assert_eq!(stored, n);

    // Exact-match spot checks.
    for rid in [0u64, 99_999, 199_999] {
        let out = exact_match(&index, &cluster, &gen.series(rid), true).unwrap();
        assert_eq!(out.matches, vec![rid]);
    }
    // Absent queries mostly skip partition loads.
    let mut loads = 0;
    for rid in 0..50u64 {
        let out = exact_match(&index, &cluster, &gen.series(n + rid), true).unwrap();
        assert!(out.matches.is_empty());
        loads += out.partitions_loaded;
    }
    assert!(loads <= 5, "bloom filters should stop most absent loads: {loads}");

    // kNN self-hit at the paper's k scale.
    let q = gen.series(123_456);
    let ans = knn_approximate(&index, &cluster, &q, 500, KnnStrategy::MultiPartition).unwrap();
    assert_eq!(ans.neighbors[0].1, 123_456);
    assert_eq!(ans.neighbors.len(), 500);
}

#[test]
#[ignore = "large: persistence at 100k records, run with --ignored"]
fn persistence_roundtrip_at_scale() {
    let cluster = Cluster::new(ClusterConfig::default()).unwrap();
    let gen = NoaaLike::new(5);
    let n: u64 = 100_000;
    write_dataset(&cluster, "big", &gen, n, 5_000).unwrap();
    let config = TardisConfig {
        g_max_size: 10_000,
        l_max_size: 1_000,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "big", &config).unwrap();
    index.save(&cluster, "big-idx").unwrap();
    let t0 = std::time::Instant::now();
    let reopened = TardisIndex::open(&cluster, "big-idx").unwrap();
    println!("reopened {} partitions in {:?}", reopened.n_partitions(), t0.elapsed());
    for rid in (0..n).step_by(9_973) {
        let q = gen.series(rid);
        assert_eq!(
            exact_match(&reopened, &cluster, &q, true).unwrap().matches,
            exact_match(&index, &cluster, &q, true).unwrap().matches
        );
    }
}
