//! Storage-layer integration: clustered layout on disk, Bloom filter
//! persistence, partition reload fidelity, and metrics accounting.

use tardis::prelude::*;
use tardis_core::decode_clustered_block;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn config() -> TardisConfig {
    TardisConfig {
        g_max_size: 500,
        l_max_size: 80,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    }
}

#[test]
fn partition_files_hold_every_record_exactly_once() {
    let c = cluster();
    let gen = RandomWalk::with_len(3, 64);
    write_dataset(&c, "ds", &gen, 2_000, 200).unwrap();
    let (index, _) = TardisIndex::build(&c, "ds", &config()).unwrap();

    let mut seen = std::collections::HashSet::new();
    for meta in index.partitions() {
        for block in c.dfs().list_blocks(&meta.file).unwrap() {
            let bytes = c.dfs().read_block(&block).unwrap();
            for entry in decode_clustered_block(&bytes).unwrap() {
                let rid = entry.rid();
                assert!(seen.insert(rid), "rid {rid} stored twice");
                // Stored series identical to the generated one, and the
                // stored signature matches a fresh conversion.
                assert!(entry.record.ts.exact_eq(&gen.series(rid)));
                let conv = index.global().converter();
                assert_eq!(entry.sig, conv.sig_of(&entry.record.ts).unwrap());
            }
        }
    }
    assert_eq!(seen.len(), 2_000);
}

#[test]
fn clustered_partitions_group_similar_series() {
    // The point of clustering: consecutive records in a partition file
    // share signature prefixes much more often than random pairs do.
    let c = cluster();
    let gen = RandomWalk::with_len(8, 64);
    write_dataset(&c, "ds", &gen, 3_000, 300).unwrap();
    let cfg = config();
    let (index, _) = TardisIndex::build(&c, "ds", &cfg).unwrap();

    let mut adjacent_same_prefix = 0usize;
    let mut adjacent_total = 0usize;
    for meta in index.partitions().iter().take(3) {
        let mut sigs = Vec::new();
        for block in c.dfs().list_blocks(&meta.file).unwrap() {
            let bytes = c.dfs().read_block(&block).unwrap();
            for entry in decode_clustered_block(&bytes).unwrap() {
                sigs.push(entry.sig);
            }
        }
        for w in sigs.windows(2) {
            adjacent_total += 1;
            if w[0].drop_right(2).unwrap() == w[1].drop_right(2).unwrap() {
                adjacent_same_prefix += 1;
            }
        }
    }
    assert!(adjacent_total > 0);
    let rate = adjacent_same_prefix as f64 / adjacent_total as f64;
    assert!(rate > 0.5, "adjacent 2-bit-prefix share rate {rate}");
}

#[test]
fn bloom_filter_roundtrips_through_dfs() {
    let c = cluster();
    let gen = RandomWalk::with_len(5, 64);
    write_dataset(&c, "ds", &gen, 1_000, 100).unwrap();
    let (index, report) = TardisIndex::build(&c, "ds", &config()).unwrap();
    assert!(report.bloom_bytes > 0);
    // Every partition has a persisted, loadable Bloom filter.
    for meta in index.partitions() {
        let blocks = c.dfs().list_blocks(&meta.bloom_file).unwrap();
        assert_eq!(blocks.len(), 1, "bloom is a single small block");
        let bytes = c.dfs().read_block(&blocks[0]).unwrap();
        let filter = BloomFilter::from_bytes(&bytes).expect("valid filter");
        assert_eq!(filter.items() as u64, meta.n_records);
    }
}

#[test]
fn reloaded_partition_equals_built_partition() {
    let c = cluster();
    let gen = NoaaLike::with_stations(4, 300);
    write_dataset(&c, "ds", &gen, 1_200, 150).unwrap();
    let (index, _) = TardisIndex::build(&c, "ds", &config()).unwrap();
    for pid in 0..index.n_partitions() as u32 {
        let local = index.load_partition(&c, pid).unwrap();
        assert_eq!(
            local.len() as u64,
            index.partitions()[pid as usize].n_records,
            "pid {pid}"
        );
        local.tree().check_invariants().unwrap();
    }
}

#[test]
fn metrics_reflect_build_io() {
    let c = cluster();
    let gen = RandomWalk::with_len(6, 64);
    write_dataset(&c, "ds", &gen, 1_000, 100).unwrap();
    let before = c.metrics().snapshot();
    let (_index, report) = TardisIndex::build(&c, "ds", &config()).unwrap();
    let delta = c.metrics().snapshot().delta_since(&before);
    // Sampling reads + full read → more block reads than dataset blocks.
    assert!(delta.blocks_read >= 10, "blocks read {}", delta.blocks_read);
    // Every record flowed through the shuffle once.
    assert!(delta.shuffled_records >= 1_000);
    // Partitions + blooms were written.
    assert!(delta.blocks_written as usize >= report.n_partitions * 2);
    // The global index was broadcast.
    assert!(delta.broadcast_bytes > 0);
}

#[test]
fn queries_benefit_from_partition_caching() {
    // End-to-end: a repeated kNN query against one index is served from
    // the DFS block cache on the second pass.
    let c = Cluster::new(ClusterConfig {
        n_workers: 2,
        dfs: DfsConfig {
            cache_bytes: 64 << 20,
            ..DfsConfig::default()
        },
        ..ClusterConfig::default()
    })
    .unwrap();
    let gen = RandomWalk::with_len(3, 64);
    write_dataset(&c, "ds", &gen, 2_000, 200).unwrap();
    let (index, _) = TardisIndex::build(&c, "ds", &config()).unwrap();

    let q = gen.series(100);
    knn_approximate(&index, &c, &q, 10, KnnStrategy::OnePartition).unwrap();
    let before = c.metrics().snapshot();
    knn_approximate(&index, &c, &q, 10, KnnStrategy::OnePartition).unwrap();
    let delta = c.metrics().snapshot().delta_since(&before);
    assert!(delta.cache_hits > 0, "second query should hit the cache");
    assert_eq!(delta.blocks_read, 0, "no disk reads on the warm query");
}

#[test]
fn read_latency_makes_bloom_savings_visible() {
    // With a simulated per-block read latency, the Bloom path is
    // measurably faster for absent queries (Figure 14's mechanism).
    let c = Cluster::new(ClusterConfig {
        n_workers: 4,
        dfs: DfsConfig {
            read_latency: std::time::Duration::from_millis(3),
            ..DfsConfig::default()
        },
        ..ClusterConfig::default()
    })
    .unwrap();
    let gen = RandomWalk::with_len(2, 64);
    write_dataset(&c, "ds", &gen, 1_500, 150).unwrap();
    let (index, _) = TardisIndex::build(&c, "ds", &config()).unwrap();

    let absent: Vec<TimeSeries> = (0..20).map(|i| gen.series(50_000 + i)).collect();
    let time = |use_bloom: bool| {
        let t0 = std::time::Instant::now();
        for q in &absent {
            let out = exact_match(&index, &c, q, use_bloom).unwrap();
            assert!(out.matches.is_empty());
        }
        t0.elapsed()
    };
    let with_bloom = time(true);
    let without = time(false);
    assert!(
        with_bloom < without,
        "bloom {with_bloom:?} not faster than no-bloom {without:?}"
    );
}
