//! Storage-layer integration: clustered layout on disk, Bloom filter
//! persistence, partition reload fidelity, and metrics accounting.

use tardis::prelude::*;
use tardis_core::decode_clustered_block;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn config() -> TardisConfig {
    TardisConfig {
        g_max_size: 500,
        l_max_size: 80,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    }
}

#[test]
fn partition_files_hold_every_record_exactly_once() {
    let c = cluster();
    let gen = RandomWalk::with_len(3, 64);
    write_dataset(&c, "ds", &gen, 2_000, 200).unwrap();
    let (index, _) = TardisIndex::build(&c, "ds", &config()).unwrap();

    let mut seen = std::collections::HashSet::new();
    for meta in index.partitions() {
        for block in c.dfs().list_blocks(&meta.file).unwrap() {
            let bytes = c.dfs().read_block(&block).unwrap();
            for entry in decode_clustered_block(&bytes).unwrap() {
                let rid = entry.rid();
                assert!(seen.insert(rid), "rid {rid} stored twice");
                // Stored series identical to the generated one, and the
                // stored signature matches a fresh conversion.
                assert!(entry.record.ts.exact_eq(&gen.series(rid)));
                let conv = index.global().converter();
                assert_eq!(entry.sig, conv.sig_of(&entry.record.ts).unwrap());
            }
        }
    }
    assert_eq!(seen.len(), 2_000);
}

#[test]
fn clustered_partitions_group_similar_series() {
    // The point of clustering: consecutive records in a partition file
    // share signature prefixes much more often than random pairs do.
    let c = cluster();
    let gen = RandomWalk::with_len(8, 64);
    write_dataset(&c, "ds", &gen, 3_000, 300).unwrap();
    let cfg = config();
    let (index, _) = TardisIndex::build(&c, "ds", &cfg).unwrap();

    let mut adjacent_same_prefix = 0usize;
    let mut adjacent_total = 0usize;
    for meta in index.partitions().iter().take(3) {
        let mut sigs = Vec::new();
        for block in c.dfs().list_blocks(&meta.file).unwrap() {
            let bytes = c.dfs().read_block(&block).unwrap();
            for entry in decode_clustered_block(&bytes).unwrap() {
                sigs.push(entry.sig);
            }
        }
        for w in sigs.windows(2) {
            adjacent_total += 1;
            if w[0].drop_right(2).unwrap() == w[1].drop_right(2).unwrap() {
                adjacent_same_prefix += 1;
            }
        }
    }
    assert!(adjacent_total > 0);
    let rate = adjacent_same_prefix as f64 / adjacent_total as f64;
    assert!(rate > 0.5, "adjacent 2-bit-prefix share rate {rate}");
}

#[test]
fn bloom_filter_roundtrips_through_dfs() {
    let c = cluster();
    let gen = RandomWalk::with_len(5, 64);
    write_dataset(&c, "ds", &gen, 1_000, 100).unwrap();
    let (index, report) = TardisIndex::build(&c, "ds", &config()).unwrap();
    assert!(report.bloom_bytes > 0);
    // Every partition has a persisted, loadable Bloom filter.
    for meta in index.partitions() {
        let blocks = c.dfs().list_blocks(&meta.bloom_file).unwrap();
        assert_eq!(blocks.len(), 1, "bloom is a single small block");
        let bytes = c.dfs().read_block(&blocks[0]).unwrap();
        let filter = BloomFilter::from_bytes(&bytes).expect("valid filter");
        assert_eq!(filter.items() as u64, meta.n_records);
    }
}

#[test]
fn reloaded_partition_equals_built_partition() {
    let c = cluster();
    let gen = NoaaLike::with_stations(4, 300);
    write_dataset(&c, "ds", &gen, 1_200, 150).unwrap();
    let (index, _) = TardisIndex::build(&c, "ds", &config()).unwrap();
    for pid in 0..index.n_partitions() as u32 {
        let local = index.load_partition(&c, pid).unwrap();
        assert_eq!(
            local.len() as u64,
            index.partitions()[pid as usize].n_records,
            "pid {pid}"
        );
        local.tree().check_invariants().unwrap();
    }
}

#[test]
fn metrics_reflect_build_io() {
    let c = cluster();
    let gen = RandomWalk::with_len(6, 64);
    write_dataset(&c, "ds", &gen, 1_000, 100).unwrap();
    let before = c.metrics().snapshot();
    let (_index, report) = TardisIndex::build(&c, "ds", &config()).unwrap();
    let delta = c.metrics().snapshot().delta_since(&before);
    // Sampling reads + full read → more block reads than dataset blocks.
    assert!(delta.blocks_read >= 10, "blocks read {}", delta.blocks_read);
    // Every record flowed through the shuffle once.
    assert!(delta.shuffled_records >= 1_000);
    // Partitions + blooms were written.
    assert!(delta.blocks_written as usize >= report.n_partitions * 2);
    // The global index was broadcast.
    assert!(delta.broadcast_bytes > 0);
}

#[test]
fn queries_benefit_from_partition_caching() {
    // End-to-end: a repeated kNN query against one index is served from
    // the DFS block cache on the second pass.
    let c = Cluster::new(ClusterConfig {
        n_workers: 2,
        dfs: DfsConfig {
            cache_bytes: 64 << 20,
            ..DfsConfig::default()
        },
        ..ClusterConfig::default()
    })
    .unwrap();
    let gen = RandomWalk::with_len(3, 64);
    write_dataset(&c, "ds", &gen, 2_000, 200).unwrap();
    let (index, _) = TardisIndex::build(&c, "ds", &config()).unwrap();

    let q = gen.series(100);
    knn_approximate(&index, &c, &q, 10, KnnStrategy::OnePartition).unwrap();
    let before = c.metrics().snapshot();
    knn_approximate(&index, &c, &q, 10, KnnStrategy::OnePartition).unwrap();
    let delta = c.metrics().snapshot().delta_since(&before);
    assert!(delta.cache_hits > 0, "second query should hit the cache");
    assert_eq!(delta.blocks_read, 0, "no disk reads on the warm query");
}

#[test]
fn scrub_restores_replicas_after_datanode_wipe() {
    let c = cluster();
    let gen = RandomWalk::with_len(11, 64);
    write_dataset(&c, "ds", &gen, 1_500, 150).unwrap();
    let (index, _) = TardisIndex::build(&c, "ds", &config()).unwrap();

    // Losing one whole datanode drops at most one replica per block
    // (replicas are placed on distinct nodes), so nothing is lost — but
    // the store is degraded until re-replicated.
    std::fs::remove_dir_all(c.dfs().datanode_dir(0)).unwrap();
    let degraded = c.dfs().list_files().iter().any(|f| {
        c.dfs()
            .list_blocks(f)
            .unwrap()
            .iter()
            .any(|b| c.dfs().replica_count(b) < c.dfs().replication())
    });
    assert!(degraded, "the wipe should have cost some block a replica");

    let report = c.dfs().scrub().unwrap();
    assert!(report.replicas_repaired > 0, "{report:?}");
    assert_eq!(report.blocks_lost, 0, "{report:?}");

    // Every block is back at full strength and queries are exact again.
    for f in c.dfs().list_files() {
        for b in c.dfs().list_blocks(&f).unwrap() {
            assert_eq!(
                c.dfs().replica_count(&b),
                c.dfs().replication(),
                "block {b:?} not re-replicated"
            );
        }
    }
    let q = gen.series(7);
    assert_eq!(exact_match(&index, &c, &q, true).unwrap().matches, vec![7]);
    assert!(c.metrics().snapshot().scrub_repairs > 0);
}

#[test]
fn dead_partition_degrades_gracefully_and_is_reported() {
    let c = cluster();
    let gen = RandomWalk::with_len(17, 64);
    write_dataset(&c, "ds", &gen, 2_000, 200).unwrap();
    let (index, _) = TardisIndex::build(&c, "ds", &config()).unwrap();
    assert!(index.n_partitions() > 1, "need more than one partition");

    // Find the partition serving this query, then kill every replica of
    // its file — the one failure replication cannot mask.
    let q = gen.series(42);
    let (_, profile) =
        exact_match_profiled(&index, &c, &q, false, &Tracer::disabled()).unwrap();
    let pid = profile.partition_ids[0] as u32;
    let file = &index.partitions()[pid as usize].file;
    for node in 0..c.dfs().datanodes() {
        let dir = c.dfs().datanode_dir(node).join(file);
        if dir.exists() {
            std::fs::remove_dir_all(dir).unwrap();
        }
    }

    // Fail-fast: the first load surfaces the storage error and
    // quarantines the partition; from then on the typed unavailability
    // error names it.
    match exact_match_degraded(&index, &c, &q, false, DegradedPolicy::FailFast) {
        Err(CoreError::Cluster(e)) => assert!(!e.is_transient(), "got transient {e}"),
        other => panic!("expected a permanent cluster error, got {other:?}"),
    }
    match exact_match_degraded(&index, &c, &q, false, DegradedPolicy::FailFast) {
        Err(CoreError::PartitionUnavailable { pid: p }) => assert_eq!(p, pid),
        other => panic!("expected PartitionUnavailable, got {other:?}"),
    }

    // Best-effort: a deterministic partial answer whose completeness
    // report names exactly the dead partition.
    let run_exact = || {
        exact_match_degraded(&index, &c, &q, false, DegradedPolicy::BestEffort).unwrap()
    };
    let a = run_exact();
    assert!(a.answer.matches.is_empty());
    assert_eq!(a.completeness.partitions_skipped, vec![pid]);
    assert!(!a.completeness.exact);
    let b = run_exact();
    assert_eq!(a.answer.matches, b.answer.matches, "partial answer not deterministic");

    let knn_a =
        knn_approximate_degraded(&index, &c, &q, 10, KnnStrategy::MultiPartition, DegradedPolicy::BestEffort)
            .unwrap();
    assert!(knn_a.completeness.partitions_skipped.contains(&pid));
    assert!(!knn_a.completeness.exact);
    let knn_b =
        knn_approximate_degraded(&index, &c, &q, 10, KnnStrategy::MultiPartition, DegradedPolicy::BestEffort)
            .unwrap();
    assert_eq!(knn_a.answer.neighbors, knn_b.answer.neighbors);

    let eknn = exact_knn_degraded(&index, &c, &q, 5, DegradedPolicy::BestEffort).unwrap();
    assert!(eknn.completeness.partitions_skipped.contains(&pid));
    assert!(
        !eknn.completeness.exact,
        "the query's own partition is always pruned-in; skipping it must downgrade exactness"
    );

    let range = range_query_degraded(&index, &c, &q, 50.0, DegradedPolicy::BestEffort).unwrap();
    assert!(range.completeness.partitions_skipped.contains(&pid));

    let batch =
        knn_batch_degraded(&index, &c, std::slice::from_ref(&q), 10, KnnStrategy::MultiPartition, DegradedPolicy::BestEffort)
            .unwrap();
    assert!(batch.completeness.partitions_skipped.contains(&pid));
    assert_eq!(batch.answer[0].neighbors, knn_a.answer.neighbors);

    // The health accounting and the merged Prometheus dump carry the
    // whole story: skips, the quarantined partition, and the failover /
    // corruption counters (present even at zero).
    let m = c.metrics().snapshot();
    assert!(m.partitions_skipped > 0, "{m:?}");
    assert_eq!(m.partitions_unavailable, 1, "{m:?}");
    assert!(m.partition_failures >= 1, "{m:?}");
    let dump = m.prometheus_text(None);
    for metric in [
        "tardis_partitions_skipped_degraded",
        "tardis_partitions_unavailable 1",
        "tardis_partition_failures",
        "tardis_replica_failovers",
        "tardis_checksum_failures",
        "tardis_scrub_repairs",
    ] {
        assert!(dump.contains(metric), "missing {metric} in:\n{dump}");
    }

    // A record living in a healthy partition still answers exactly.
    let other_rid = (0..2_000u64)
        .find(|&rid| {
            exact_match_degraded(&index, &c, &gen.series(rid), false, DegradedPolicy::BestEffort)
                .unwrap()
                .completeness
                .exact
        })
        .expect("some record lives outside the dead partition");
    let healthy =
        exact_match_degraded(&index, &c, &gen.series(other_rid), false, DegradedPolicy::BestEffort)
            .unwrap();
    assert!(healthy.completeness.exact);
    assert_eq!(healthy.answer.matches, vec![other_rid]);
}

#[test]
fn read_latency_makes_bloom_savings_visible() {
    // With a simulated per-block read latency, the Bloom path is
    // measurably faster for absent queries (Figure 14's mechanism).
    let c = Cluster::new(ClusterConfig {
        n_workers: 4,
        dfs: DfsConfig {
            read_latency: std::time::Duration::from_millis(3),
            ..DfsConfig::default()
        },
        ..ClusterConfig::default()
    })
    .unwrap();
    let gen = RandomWalk::with_len(2, 64);
    write_dataset(&c, "ds", &gen, 1_500, 150).unwrap();
    let (index, _) = TardisIndex::build(&c, "ds", &config()).unwrap();

    let absent: Vec<TimeSeries> = (0..20).map(|i| gen.series(50_000 + i)).collect();
    let time = |use_bloom: bool| {
        let t0 = std::time::Instant::now();
        for q in &absent {
            let out = exact_match(&index, &c, q, use_bloom).unwrap();
            assert!(out.matches.is_empty());
        }
        t0.elapsed()
    };
    let with_bloom = time(true);
    let without = time(false);
    assert!(
        with_bloom < without,
        "bloom {with_bloom:?} not faster than no-bloom {without:?}"
    );
}
