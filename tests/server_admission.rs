//! Admission-control soak: a sustained, skewed query stream past the
//! daemon's capacity must stay bounded, shed explicitly, and leak
//! nothing.
//!
//! * **Bounded**: the in-flight gauge never exceeds `max_in_flight`;
//!   every request is answered — served or shed with `Overloaded` — so
//!   the test itself terminating is the no-hang proof.
//! * **Deterministic deadlines**: under a virtual [`BackoffClock`]
//!   "now" never moves on its own, so a `deadline_ms: 0` request that
//!   has to queue is *always* shed with `DeadlineExceeded`, and a
//!   generous deadline is *always* served — no timing-dependent
//!   outcomes.
//! * **Leak-free**: after the stream drains and the daemon shuts down,
//!   the shared block cache holds zero pins and the scheduler gauges
//!   read zero.

use std::sync::Arc;
use std::time::Duration;
use tardis::prelude::*;

fn build_small(
    n_workers: usize,
    cache_bytes: usize,
    faults: Option<FaultPlan>,
) -> (Arc<Cluster>, Arc<TardisIndex>, RandomWalk, u64) {
    let mut config = ClusterConfig {
        n_workers,
        faults,
        ..ClusterConfig::default()
    };
    config.dfs.cache_bytes = cache_bytes;
    let cluster = Arc::new(Cluster::new(config).unwrap());
    let n = 600u64;
    let gen = RandomWalk::with_len(9, 64);
    write_dataset(&cluster, "ds", &gen, n, 75).unwrap();
    let tc = TardisConfig {
        g_max_size: 400,
        l_max_size: 80,
        sampling_fraction: 0.5,
        pth: 4,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "ds", &tc).unwrap();
    (cluster, Arc::new(index), gen, n)
}

/// Zipf-ish rid for request `h`: low ranks dominate, the tail thins out
/// — the skew the admission queue sees in a real deployment.
fn zipfian_rid(h: u64, n: u64) -> u64 {
    (n / (1 + h % 97)) % n
}

#[test]
fn overload_stays_bounded_sheds_explicitly_and_leaks_no_pins() {
    // Cache enabled so batch queries exercise the pin/unpin path.
    let (cluster, index, gen, n) = build_small(4, 1 << 20, None);
    const MAX_IN_FLIGHT: usize = 2;
    let handle = QueryServer::start(
        Arc::clone(&cluster),
        Arc::clone(&index),
        ServerConfig {
            max_in_flight: MAX_IN_FLIGHT,
            queue_capacity: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    // 8 concurrent clients × 25 requests: far past a 2-slot daemon.
    // Every request gets exactly one response line; a hang would hang
    // the join and fail the suite's timeout.
    let mut handles = Vec::new();
    for c in 0..8u64 {
        let addr = addr.clone();
        let gen = gen.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            let mut served = 0u64;
            let mut shed = 0u64;
            for j in 0..25u64 {
                let h = c * 1_000 + j;
                let rid = zipfian_rid(h, n);
                let req = if h % 5 == 4 {
                    // Shared-scan batches mixed in: they pin partitions.
                    let mut r = Request::new(h, Op::Batch);
                    r.queries = [rid, (rid + 3) % n]
                        .iter()
                        .map(|&x| gen.series(x).values().to_vec())
                        .collect();
                    r.k = 3;
                    r
                } else {
                    let mut r = Request::new(h, Op::Knn);
                    r.query = gen.series(rid).values().to_vec();
                    r.k = 4;
                    r.strategy = KnnStrategy::OnePartition;
                    r
                };
                let response = client.send(&req).unwrap();
                if response.contains("\"ok\":true") {
                    served += 1;
                } else {
                    assert!(
                        response.contains("\"error\":\"Overloaded\""),
                        "only Overloaded sheds are acceptable here: {response}"
                    );
                    shed += 1;
                }
            }
            (served, shed)
        }));
    }
    let (mut served, mut shed) = (0u64, 0u64);
    for h in handles {
        let (s, d) = h.join().unwrap();
        served += s;
        shed += d;
    }
    assert_eq!(served + shed, 8 * 25, "every request answered exactly once");
    assert!(served > 0, "a 2-slot daemon still makes progress");

    let snap = cluster.metrics().snapshot();
    assert_eq!(snap.queries_served, served);
    assert_eq!(snap.queries_shed, shed);
    // The gauges are a live bound, sampled here after the drain; the
    // admission gate never exceeds its configured cap by construction
    // (in_flight is incremented only under `in_flight < max_in_flight`).
    assert_eq!(snap.queries_in_flight, 0, "drained daemon has nothing in flight");
    assert_eq!(snap.queue_depth, 0, "drained daemon has an empty queue");

    handle.shutdown();
    // No pinned partitions survive the drain: every batch PinGuard and
    // every shared read released its count.
    assert_eq!(cluster.dfs().total_pins(), 0, "leaked cache pins after drain");
}

#[test]
fn deadlines_resolve_deterministically_under_virtual_clock() {
    // A straggler partition task (500 ms) lets us *hold* the daemon's
    // single slot with a query we control; the virtual admission clock
    // never advances, so queued deadlines resolve by value, not timing.
    let (cluster, index, gen, _n) = build_small(2, 0, None);
    let sig = index.global().converter().sig_of(&gen.series(0)).unwrap();
    let slow_pid = index.global().partition_of(&sig);
    drop((cluster, index));
    let plan = FaultPlan {
        slow_task: Some((u64::from(slow_pid), Duration::from_millis(500))),
        ..FaultPlan::default()
    };
    let (cluster, index, gen, _) = build_small(2, 0, Some(plan));

    let clock = Arc::new(VirtualClock::new());
    let handle = QueryServer::start(
        Arc::clone(&cluster),
        Arc::clone(&index),
        ServerConfig {
            max_in_flight: 1,
            queue_capacity: 8,
            clock: BackoffClock::Virtual(clock),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    // Occupy the slot: a batch touching the slow partition sleeps 500ms
    // inside execution (admission already granted).
    let blocker = {
        let addr = addr.clone();
        let q = gen.series(0).values().to_vec();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            let mut r = Request::new(1, Op::Batch);
            r.queries = vec![q];
            r.k = 2;
            client.send(&r).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(150));

    // Queued with deadline 0 under a frozen clock: always shed.
    let mut client = Client::connect(&addr).unwrap();
    let mut doomed = Request::new(2, Op::Knn);
    doomed.query = gen.series(5).values().to_vec();
    doomed.k = 2;
    doomed.strategy = KnnStrategy::OnePartition;
    doomed.deadline_ms = Some(0);
    let response = client.send(&doomed).unwrap();
    assert!(
        response.contains("\"error\":\"DeadlineExceeded\""),
        "zero deadline must shed deterministically: {response}"
    );

    // Queued with a generous deadline: always served once the slot
    // frees (the frozen clock can never expire it).
    let mut patient = Request::new(3, Op::Knn);
    patient.query = gen.series(5).values().to_vec();
    patient.k = 2;
    patient.strategy = KnnStrategy::OnePartition;
    patient.deadline_ms = Some(3_600_000);
    let response = client.send(&patient).unwrap();
    assert!(
        response.contains("\"ok\":true"),
        "generous deadline must be served: {response}"
    );

    let blocked = blocker.join().unwrap();
    assert!(blocked.contains("\"ok\":true"), "{blocked}");
    handle.shutdown();
    let snap = cluster.metrics().snapshot();
    assert_eq!(snap.queries_served, 2);
    assert_eq!(snap.queries_shed, 1);
}

/// Graceful shutdown with traffic still arriving: whatever was accepted
/// is answered or shed — never silently dropped — and the daemon's
/// port closes.
#[test]
fn shutdown_answers_or_sheds_everything_in_flight() {
    let (cluster, index, gen, n) = build_small(4, 0, None);
    let handle = QueryServer::start(
        Arc::clone(&cluster),
        Arc::clone(&index),
        ServerConfig {
            max_in_flight: 2,
            queue_capacity: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    let mut clients = Vec::new();
    for c in 0..4u64 {
        let addr = addr.clone();
        let gen = gen.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            let mut answered = 0u64;
            for j in 0..10u64 {
                let mut r = Request::new(c * 100 + j, Op::Knn);
                r.query = gen.series((c * 37 + j * 13) % n).values().to_vec();
                r.k = 3;
                r.strategy = KnnStrategy::OnePartition;
                // After shutdown the connection may close; that ends
                // this client's stream, with every *prior* request
                // already answered in order.
                match client.send(&r) {
                    Ok(response) => {
                        assert!(
                            response.contains("\"ok\":true")
                                || response.contains("\"error\":\"Overloaded\"")
                                || response.contains("\"error\":\"DeadlineExceeded\""),
                            "unexpected response: {response}"
                        );
                        answered += 1;
                    }
                    Err(_) => break,
                }
            }
            answered
        }));
    }
    // Let traffic build, then pull the plug mid-stream.
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();
    let answered: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();

    let snap = cluster.metrics().snapshot();
    assert_eq!(
        snap.queries_served + snap.queries_shed,
        answered,
        "every answered line was counted served or shed; none vanished"
    );
    assert_eq!(snap.queries_in_flight, 0);
    assert_eq!(cluster.dfs().total_pins(), 0);
}
