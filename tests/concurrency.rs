//! Thread-safety: one built index serves concurrent queries from many
//! threads with consistent answers (the master serves many clients in a
//! deployment).

use std::sync::Arc;
use tardis::prelude::*;

#[test]
fn concurrent_queries_agree_with_sequential() {
    let cluster = Arc::new(
        Cluster::new(ClusterConfig {
            n_workers: 2,
            ..ClusterConfig::default()
        })
        .unwrap(),
    );
    let gen = RandomWalk::with_len(17, 64);
    write_dataset(&cluster, "ds", &gen, 2_000, 200).unwrap();
    let config = TardisConfig {
        g_max_size: 400,
        l_max_size: 60,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "ds", &config).unwrap();
    let index = Arc::new(index);

    // Reference answers computed sequentially.
    let rids: Vec<u64> = (0..32).map(|i| i * 61).collect();
    let reference: Vec<Vec<(f64, u64)>> = rids
        .iter()
        .map(|&rid| {
            knn_approximate(
                &index,
                &cluster,
                &gen.series(rid),
                5,
                KnnStrategy::OnePartition,
            )
            .unwrap()
            .neighbors
        })
        .collect();

    // Hammer the same queries from 8 threads.
    let mut handles = Vec::new();
    for t in 0..8usize {
        let index = Arc::clone(&index);
        let cluster = Arc::clone(&cluster);
        let rids = rids.clone();
        let reference = reference.clone();
        let gen = gen.clone();
        handles.push(std::thread::spawn(move || {
            for (i, &rid) in rids.iter().enumerate().skip(t % 4) {
                let ans = knn_approximate(
                    &index,
                    &cluster,
                    &gen.series(rid),
                    5,
                    KnnStrategy::OnePartition,
                )
                .unwrap();
                assert_eq!(ans.neighbors, reference[i], "thread {t} rid {rid}");
                // Exact match concurrently, too.
                let hit = exact_match(&index, &cluster, &gen.series(rid), true).unwrap();
                assert_eq!(hit.matches, vec![rid]);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_queries_with_cache_stay_consistent() {
    let cluster = Arc::new(
        Cluster::new(ClusterConfig {
            n_workers: 2,
            dfs: DfsConfig {
                cache_bytes: 8 << 20,
                ..DfsConfig::default()
            },
            ..ClusterConfig::default()
        })
        .unwrap(),
    );
    let gen = NoaaLike::with_stations(7, 200);
    write_dataset(&cluster, "ds", &gen, 1_500, 150).unwrap();
    let config = TardisConfig {
        g_max_size: 300,
        l_max_size: 50,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "ds", &config).unwrap();
    let index = Arc::new(index);

    let mut handles = Vec::new();
    for t in 0..6u64 {
        let index = Arc::clone(&index);
        let cluster = Arc::clone(&cluster);
        let gen = gen.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..20u64 {
                let rid = (t * 37 + i * 13) % 1_500;
                let hit = exact_match(&index, &cluster, &gen.series(rid), true).unwrap();
                assert_eq!(hit.matches, vec![rid], "thread {t} rid {rid}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // The cache saw traffic.
    assert!(cluster.metrics().snapshot().cache_hits > 0);
}
