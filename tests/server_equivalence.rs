//! Server equivalence: every query path through the resident daemon
//! must be **byte-identical** to a sequential single-process oracle.
//!
//! The oracle computes each answer by calling the core query functions
//! directly — in submission order, on one thread — and encodes it with
//! the same `tardis_server::protocol` encoders the daemon uses. The
//! daemon then serves the same requests over real TCP from several
//! concurrent connections, at worker widths 1, 4, and 8 (inline
//! execution, moderate stealing, heavy stealing). Any divergence —
//! reordered neighbors, a float formatted differently, a lost or
//! duplicated response — fails the raw string comparison.
//!
//! Two deterministic fault scenarios ride along:
//! * a seeded fault plan whose failures are fully masked by retries
//!   (deep budget, zero backoff) must leave every byte unchanged;
//! * killing every replica of one partition under a best-effort policy
//!   must produce the *same partial answers* from the daemon as from
//!   the sequential degraded oracle, coverage report included.

use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tardis::prelude::*;
use tardis::server::protocol;

const LEN: usize = 64;

fn small_config() -> TardisConfig {
    TardisConfig {
        g_max_size: 400,
        l_max_size: 80,
        sampling_fraction: 0.5,
        pth: 4,
        ..TardisConfig::default()
    }
}

/// Builds one request from two case-level random draws. `code` picks
/// the op; `rid` seeds the query (occasionally absent from the
/// dataset) and the per-op parameters.
fn make_request(id: u64, code: u8, rid: u64, gen: &RandomWalk, n: u64) -> Request {
    let rid = rid % (n + n / 4); // ~20% absent queries
    let q = gen.series(rid).values().to_vec();
    match code % 5 {
        0 => {
            let mut r = Request::new(id, Op::Exact);
            r.query = q;
            r.use_bloom = rid % 2 == 0;
            r
        }
        1 => {
            let mut r = Request::new(id, Op::Knn);
            r.query = q;
            r.k = 1 + (code as usize % 7);
            r.strategy = KnnStrategy::ALL[(rid % 3) as usize];
            r
        }
        2 => {
            let mut r = Request::new(id, Op::ExactKnn);
            r.query = q;
            r.k = 1 + (code as usize % 4);
            r
        }
        3 => {
            let mut r = Request::new(id, Op::Range);
            r.query = q;
            r.epsilon = 0.5 + (rid % 5) as f64;
            r
        }
        _ => {
            let mut r = Request::new(id, Op::Batch);
            r.queries = [rid, (rid + 7) % n, (rid * 3 + 1) % n]
                .iter()
                .map(|&x| gen.series(x).values().to_vec())
                .collect();
            r.k = 3;
            r.strategy = KnnStrategy::ALL[(code % 3) as usize];
            r
        }
    }
}

/// The sequential oracle: same dispatch as the daemon, same encoders,
/// one thread, submission order.
fn oracle(
    index: &TardisIndex,
    cluster: &Cluster,
    req: &Request,
    policy: Option<DegradedPolicy>,
) -> String {
    let id = req.id;
    let q = TimeSeries::new(req.query.clone());
    let batch: Vec<TimeSeries> = req
        .queries
        .iter()
        .map(|v| TimeSeries::new(v.clone()))
        .collect();
    match (policy, req.op) {
        (None, Op::Exact) => protocol::encode_exact(
            id,
            &exact_match(index, cluster, &q, req.use_bloom).unwrap(),
            None,
        ),
        (None, Op::Knn) => protocol::encode_knn(
            id,
            &knn_approximate(index, cluster, &q, req.k, req.strategy).unwrap(),
            None,
        ),
        (None, Op::ExactKnn) => {
            protocol::encode_exact_knn(id, &exact_knn(index, cluster, &q, req.k).unwrap(), None)
        }
        (None, Op::Range) => protocol::encode_range(
            id,
            &range_query(index, cluster, &q, req.epsilon).unwrap(),
            None,
        ),
        (None, Op::Batch) => protocol::encode_batch(
            id,
            &knn_batch(index, cluster, &batch, req.k, req.strategy).unwrap(),
            None,
        ),
        (Some(p), Op::Exact) => {
            let d = exact_match_degraded(index, cluster, &q, req.use_bloom, p).unwrap();
            protocol::encode_exact(id, &d.answer, Some(&d.completeness))
        }
        (Some(p), Op::Knn) => {
            let d = knn_approximate_degraded(index, cluster, &q, req.k, req.strategy, p).unwrap();
            protocol::encode_knn(id, &d.answer, Some(&d.completeness))
        }
        (Some(p), Op::ExactKnn) => {
            let d = exact_knn_degraded(index, cluster, &q, req.k, p).unwrap();
            protocol::encode_exact_knn(id, &d.answer, Some(&d.completeness))
        }
        (Some(p), Op::Range) => {
            let d = range_query_degraded(index, cluster, &q, req.epsilon, p).unwrap();
            protocol::encode_range(id, &d.answer, Some(&d.completeness))
        }
        (Some(p), Op::Batch) => {
            let d = knn_batch_degraded(index, cluster, &batch, req.k, req.strategy, p).unwrap();
            protocol::encode_batch(id, &d.answer, Some(&d.completeness))
        }
        (_, Op::Ingest | Op::Compact) => {
            unreachable!("this suite replays read-only mixes; writer ops have their own tests")
        }
    }
}

/// Computes oracle answers sequentially, boots a daemon, replays the
/// same requests from `n_clients` concurrent connections, and demands
/// byte equality response-by-response.
fn check_daemon_equivalence(
    cluster: Arc<Cluster>,
    index: Arc<TardisIndex>,
    requests: &[Request],
    n_clients: usize,
    policy: Option<DegradedPolicy>,
) -> Result<(), TestCaseError> {
    let mut expected = HashMap::new();
    for req in requests {
        expected.insert(req.id, oracle(&index, &cluster, req, policy));
    }

    let handle = QueryServer::start(
        Arc::clone(&cluster),
        Arc::clone(&index),
        ServerConfig {
            policy,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    // Round-robin the requests over the connections.
    let mut handles = Vec::new();
    for c in 0..n_clients {
        let mine: Vec<Request> = requests
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n_clients == c)
            .map(|(_, r)| r.clone())
            .collect();
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            mine.into_iter()
                .map(|req| (req.id, client.send(&req).unwrap()))
                .collect::<Vec<(u64, String)>>()
        }));
    }
    let mut got = HashMap::new();
    for h in handles {
        for (id, response) in h.join().unwrap() {
            got.insert(id, response);
        }
    }
    handle.shutdown();

    prop_assert_eq!(got.len(), expected.len(), "lost or duplicated responses");
    for (id, want) in &expected {
        let have = got.get(id).unwrap();
        prop_assert_eq!(
            have,
            want,
            "response {} diverged from the sequential oracle",
            id
        );
    }
    Ok(())
}

proptest! {
    // Each case builds three indexes (one per worker width) and boots
    // three daemons; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn daemon_is_byte_identical_to_sequential_oracle(
        seed in 1u64..1000,
        n in 250u64..600,
        codes in proptest::collection::vec(0u8..=255, 8..16),
        rids in proptest::collection::vec(0u64..10_000, 8..16),
        n_clients in 2usize..5,
    ) {
        for &width in &[1usize, 4, 8] {
            let cluster = Arc::new(
                Cluster::new(ClusterConfig {
                    n_workers: width,
                    ..ClusterConfig::default()
                })
                .unwrap(),
            );
            let gen = RandomWalk::with_len(seed, LEN);
            write_dataset(&cluster, "ds", &gen, n, 64).unwrap();
            let (index, _) = TardisIndex::build(&cluster, "ds", &small_config()).unwrap();
            let index = Arc::new(index);
            let requests: Vec<Request> = codes
                .iter()
                .zip(&rids)
                .enumerate()
                .map(|(i, (&code, &rid))| make_request(i as u64 + 1, code, rid, &gen, n))
                .collect();
            check_daemon_equivalence(cluster, index, &requests, n_clients, None)?;
        }
    }
}

/// Retry-masked faults (deep budget, zero backoff) change nothing on
/// the wire: the daemon under a seeded fault plan answers byte-for-byte
/// like the oracle on the same faulted cluster.
#[test]
fn masked_faults_leave_every_response_byte_identical() {
    let plan = FaultPlan {
        seed: 77,
        block_read_fail_p: 0.05,
        task_fail_p: 0.02,
        ..FaultPlan::default()
    };
    let retry = RetryPolicy {
        max_attempts: 8,
        backoff_base: Duration::ZERO,
        backoff_cap: Duration::ZERO,
        ..RetryPolicy::default()
    };
    let cluster = Arc::new(
        Cluster::new(ClusterConfig {
            n_workers: 4,
            faults: Some(plan),
            retry,
            ..ClusterConfig::default()
        })
        .unwrap(),
    );
    let n = 500u64;
    let gen = RandomWalk::with_len(21, LEN);
    write_dataset(&cluster, "ds", &gen, n, 64).unwrap();
    let (index, _) = TardisIndex::build(&cluster, "ds", &small_config()).unwrap();
    let index = Arc::new(index);
    let requests: Vec<Request> = (0..20u64)
        .map(|i| make_request(i + 1, (i * 13) as u8, i * 97, &gen, n))
        .collect();
    check_daemon_equivalence(cluster, index, &requests, 3, None).unwrap();
}

/// Every replica of one partition dies on disk. Under a best-effort
/// policy the daemon keeps answering — partial where that partition was
/// needed — and each response, coverage report included, equals the
/// sequential degraded oracle's bytes.
#[test]
fn best_effort_daemon_matches_degraded_oracle_with_dead_partition() {
    let dir = std::env::temp_dir().join(format!(
        "tardis-server-eq-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let result = std::panic::catch_unwind(|| {
        best_effort_case(&dir);
    });
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

fn best_effort_case(dir: &PathBuf) {
    let cluster = Arc::new(
        Cluster::at_dir(
            dir,
            ClusterConfig {
                n_workers: 4,
                ..ClusterConfig::default()
            },
        )
        .unwrap(),
    );
    let n = 500u64;
    let gen = RandomWalk::with_len(33, LEN);
    write_dataset(&cluster, "ds", &gen, n, 64).unwrap();
    let (index, _) = TardisIndex::build(&cluster, "ds", &small_config()).unwrap();
    let index = Arc::new(index);

    // Kill every replica of the partition that query rid=0 routes to.
    let sig = index.global().converter().sig_of(&gen.series(0)).unwrap();
    let dead_pid = index.global().partition_of(&sig);
    let mut removed = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let node = entry.unwrap().path();
        if node
            .file_name()
            .and_then(|s| s.to_str())
            .is_some_and(|s| s.starts_with("node-"))
        {
            let part = node.join(format!("part-{dead_pid:05}"));
            if part.exists() {
                std::fs::remove_dir_all(&part).unwrap();
                removed += 1;
            }
        }
    }
    assert!(removed > 0, "no replica of partition {dead_pid} found on disk");

    let requests: Vec<Request> = (0..24u64)
        .map(|i| make_request(i + 1, (i * 7) as u8, i * 41, &gen, n))
        .collect();
    // At least one request must actually touch the dead partition for
    // the scenario to mean anything: rid 0 routes there by choice.
    let mut probe = Request::new(100, Op::Knn);
    probe.query = gen.series(0).values().to_vec();
    probe.k = 3;
    probe.strategy = KnnStrategy::OnePartition;
    let mut requests = requests;
    requests.push(probe);

    check_daemon_equivalence(
        cluster,
        index,
        &requests,
        3,
        Some(DegradedPolicy::BestEffort),
    )
    .unwrap();
}
