//! End-to-end integration: generate → store → index → query, on every
//! dataset family.

use tardis::prelude::*;

fn small_cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn small_config() -> TardisConfig {
    TardisConfig {
        g_max_size: 600,
        l_max_size: 100,
        sampling_fraction: 0.4,
        pth: 6,
        ..TardisConfig::default()
    }
}

/// Builds an index over `n` records of `gen` and validates exact match
/// plus kNN sanity on it.
fn exercise(gen: &dyn SeriesGen, n: u64) {
    let cluster = small_cluster();
    write_dataset(&cluster, "ds", gen, n, 250).unwrap();
    let (index, report) = TardisIndex::build(&cluster, "ds", &small_config()).unwrap();
    assert_eq!(report.n_records, n);
    let stored: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    assert_eq!(stored, n, "clustered layout holds every record once");

    // Exact match: members found, absents rejected.
    for rid in [0u64, n / 2, n - 1] {
        let q = gen.series(rid);
        let out = exact_match(&index, &cluster, &q, true).unwrap();
        assert_eq!(out.matches, vec![rid], "{} rid {rid}", gen.name());
    }
    for rid in [n + 1, n + 77] {
        let q = gen.series(rid);
        let out = exact_match(&index, &cluster, &q, true).unwrap();
        assert!(out.matches.is_empty(), "{} absent rid {rid}", gen.name());
    }

    // kNN: member query finds itself; distances sorted; k respected.
    let q = gen.series(n / 3);
    for strategy in KnnStrategy::ALL {
        let ans = knn_approximate(&index, &cluster, &q, 10, strategy).unwrap();
        assert!(!ans.neighbors.is_empty(), "{:?}", strategy);
        assert_eq!(ans.neighbors[0].1, n / 3, "{:?} self-hit", strategy);
        assert!(ans.neighbors.len() <= 10);
        for w in ans.neighbors.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }
}

#[test]
fn randomwalk_end_to_end() {
    exercise(&RandomWalk::with_len(1, 128), 3_000);
}

#[test]
fn texmex_end_to_end() {
    exercise(&TexmexLike::new(2), 3_000);
}

#[test]
fn dna_end_to_end() {
    exercise(&DnaLike::new(3), 3_000);
}

#[test]
fn noaa_end_to_end() {
    exercise(&NoaaLike::new(4), 3_000);
}

#[test]
fn unclustered_layout_end_to_end() {
    let cluster = small_cluster();
    let gen = RandomWalk::with_len(9, 64);
    write_dataset(&cluster, "ds", &gen, 2_000, 200).unwrap();
    let config = TardisConfig {
        clustered: false,
        ..small_config()
    };
    let (index, report) = TardisIndex::build(&cluster, "ds", &config).unwrap();
    assert_eq!(report.n_records, 2_000);
    // Exact match still works: the un-clustered layout fetches raw series
    // from the original dataset file.
    for rid in [0u64, 999, 1_999] {
        let q = gen.series(rid);
        let out = exact_match(&index, &cluster, &q, true).unwrap();
        assert_eq!(out.matches, vec![rid]);
    }
    // And kNN self-hit.
    let q = gen.series(500);
    let ans = knn_approximate(&index, &cluster, &q, 5, KnnStrategy::TargetNode).unwrap();
    assert_eq!(ans.neighbors[0].1, 500);
}

#[test]
fn mixed_workload_recall_is_total() {
    // §VI-C1: exact-match recall is always 100%: every member found,
    // every absent rejected.
    let cluster = small_cluster();
    let gen = RandomWalk::with_len(5, 64);
    write_dataset(&cluster, "ds", &gen, 2_000, 200).unwrap();
    let (index, _) = TardisIndex::build(&cluster, "ds", &small_config()).unwrap();
    let workload = QueryWorkload::mixed(&gen, 2_000, 60, 8);
    for (q, kind) in &workload.queries {
        let out = exact_match(&index, &cluster, q, true).unwrap();
        match kind {
            QueryKind::Existing { rid } => {
                assert_eq!(out.matches, vec![*rid]);
            }
            QueryKind::Absent => assert!(out.matches.is_empty()),
        }
    }
}

#[test]
fn knn_truth_is_lower_bound_for_all_strategies() {
    let cluster = small_cluster();
    let gen = NoaaLike::with_stations(6, 500);
    write_dataset(&cluster, "ds", &gen, 2_500, 250).unwrap();
    let (index, _) = TardisIndex::build(&cluster, "ds", &small_config()).unwrap();
    let q = gen.series(321);
    let truth = ground_truth_knn(&cluster, "ds", &q, 15).unwrap();
    for strategy in KnnStrategy::ALL {
        let ans = knn_approximate(&index, &cluster, &q, 15, strategy).unwrap();
        // Error ratio ≥ 1 (Definition 4 / Equation 6).
        let er = error_ratio(&ans.neighbors, &truth);
        assert!(er >= 1.0 - 1e-9, "{:?}: error ratio {er}", strategy);
        // Recall in [0, 1].
        let r = recall(&ans.neighbors, &truth);
        assert!((0.0..=1.0).contains(&r));
    }
}

#[test]
fn bloom_in_memory_and_on_disk_agree() {
    let cluster = small_cluster();
    let gen = RandomWalk::with_len(13, 64);
    write_dataset(&cluster, "ds", &gen, 1_500, 150).unwrap();
    let mem_cfg = TardisConfig {
        bloom_in_memory: true,
        ..small_config()
    };
    let disk_cfg = TardisConfig {
        bloom_in_memory: false,
        ..small_config()
    };
    let (mem_idx, _) = TardisIndex::build(&cluster, "ds", &mem_cfg).unwrap();
    assert!(mem_idx.resident_bloom_bytes() > 0);
    let (disk_idx, _) = TardisIndex::build(&cluster, "ds", &disk_cfg).unwrap();
    assert_eq!(disk_idx.resident_bloom_bytes(), 0);
    for rid in [3u64, 900, 40_000, 77_777] {
        let q = gen.series(rid);
        let a = exact_match(&mem_idx, &cluster, &q, true).unwrap();
        let b = exact_match(&disk_idx, &cluster, &q, true).unwrap();
        assert_eq!(a.matches, b.matches, "rid {rid}");
    }
}

#[test]
fn scaling_dataset_size_scales_partitions() {
    let config = small_config();
    let mut last = 0usize;
    for n in [1_000u64, 4_000] {
        let cluster = small_cluster();
        let gen = RandomWalk::with_len(2, 64);
        write_dataset(&cluster, "ds", &gen, n, 200).unwrap();
        let (index, _) = TardisIndex::build(&cluster, "ds", &config).unwrap();
        assert!(
            index.n_partitions() >= last,
            "partitions should grow with data"
        );
        last = index.n_partitions();
    }
    assert!(last >= 4, "4k records over 600-capacity → several partitions");
}
