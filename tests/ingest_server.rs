//! The resident daemon under continuous ingest: writers (ingest and
//! compaction) mutate a cloned index and swap an immutable snapshot in
//! atomically, so queries never block on them — they grab the current
//! snapshot `Arc` and run. These tests pin that down over real TCP:
//! queries complete *while* ingest batches and a compaction are in
//! flight, answers stay correct throughout, the background compactor
//! folds deltas on its own, and a `--manifest` daemon persists every
//! mutation so a reopen sees the full history.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tardis::prelude::*;

const LEN: usize = 64;
const BASE: u64 = 3_000;

fn fixture() -> (Arc<Cluster>, Arc<TardisIndex>, RandomWalk) {
    let cluster = Arc::new(
        Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap(),
    );
    let gen = RandomWalk::with_len(42, LEN);
    write_dataset(&cluster, "ds", &gen, BASE, 250).unwrap();
    let config = TardisConfig {
        g_max_size: 400,
        l_max_size: 80,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "ds", &config).unwrap();
    index.save(&cluster, "idx").unwrap();
    (cluster, Arc::new(index), gen)
}

fn ingest_request(id: u64, gen: &RandomWalk, start: u64, count: u64) -> Request {
    let mut r = Request::new(id, Op::Ingest);
    r.records = (start..start + count)
        .map(|rid| (rid, gen.series(rid).values().to_vec()))
        .collect();
    r
}

fn exact_request(id: u64, gen: &RandomWalk, rid: u64) -> Request {
    let mut r = Request::new(id, Op::Exact);
    r.query = gen.series(rid).values().to_vec();
    r
}

/// Queries must keep completing while ingest batches and a compaction
/// are in flight on the same daemon: the writer path serializes on its
/// own lock and swaps a fresh snapshot in, while readers only clone the
/// current snapshot `Arc` — they never wait for the writer.
#[test]
fn queries_complete_while_ingest_and_compaction_run() {
    let (cluster, index, gen) = fixture();
    let handle = QueryServer::start(
        Arc::clone(&cluster),
        index,
        ServerConfig {
            max_in_flight: 8,
            queue_capacity: 64,
            manifest: Some("idx".to_string()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    // Writer thread: a stream of ingest batches, then one compaction of
    // everything — a long window during which the writer lock is
    // repeatedly held.
    const BATCHES: u64 = 4;
    const BATCH: u64 = 1_500;
    let writer_busy = Arc::new(AtomicBool::new(true));
    let writer = {
        let addr = addr.clone();
        let gen = gen.clone();
        let busy = Arc::clone(&writer_busy);
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            for b in 0..BATCHES {
                let req = ingest_request(b + 1, &gen, BASE + b * BATCH, BATCH);
                let resp = client.send(&req).unwrap();
                assert!(resp.contains("\"ok\":true"), "ingest failed: {resp}");
            }
            let resp = client.send(&Request::new(99, Op::Compact)).unwrap();
            assert!(resp.contains("\"ok\":true"), "compact failed: {resp}");
            busy.store(false, Ordering::SeqCst);
        })
    };

    // Reader: hammer exact queries on its own connection for the whole
    // writer window. Every one must succeed; the count completed while
    // the writer was still busy is the non-blocking evidence.
    let mut client = Client::connect(&addr).unwrap();
    let mut during_writer = 0u64;
    let mut i = 0u64;
    loop {
        let busy_before = writer_busy.load(Ordering::SeqCst);
        if !busy_before {
            break;
        }
        let rid = (i * 389) % BASE;
        let t0 = Instant::now();
        let resp = client.send(&exact_request(1_000 + i, &gen, rid)).unwrap();
        let lat = t0.elapsed();
        assert!(resp.contains("\"ok\":true"), "query failed mid-ingest: {resp}");
        assert!(resp.contains(&format!("[{rid}]")), "wrong answer mid-ingest: {resp}");
        if writer_busy.load(Ordering::SeqCst) {
            // Completed strictly inside the writer window: the query
            // did not wait for the in-flight ingest/compaction.
            during_writer += 1;
            assert!(
                lat < Duration::from_secs(5),
                "query stalled {lat:?} behind a writer"
            );
        }
        i += 1;
    }
    writer.join().unwrap();
    assert!(
        during_writer > 0,
        "no query completed during the ingest/compaction window — readers blocked on writers"
    );

    // Post-window: ingested records answer, and the manifest persisted
    // every mutation (a reopen sees the post-compaction state).
    for rid in [BASE, BASE + 2 * BATCH + 17, BASE + BATCHES * BATCH - 1] {
        let resp = client.send(&exact_request(5_000 + rid, &gen, rid)).unwrap();
        assert!(
            resp.contains("\"ok\":true") && resp.contains(&format!("[{rid}]")),
            "ingested rid {rid} not found: {resp}"
        );
    }
    let snap = cluster.metrics().snapshot();
    assert_eq!(snap.records_ingested, BATCHES * BATCH);
    assert_eq!(snap.deltas_sealed, BATCHES);
    assert!(snap.compactions >= 1);
    handle.shutdown();

    let reopened = TardisIndex::open(&cluster, "idx").unwrap();
    assert_eq!(reopened.n_deltas(), 0, "compaction not persisted");
    assert!(reopened.manifest_version() >= 1);
    let out = exact_match(&reopened, &cluster, &gen.series(BASE + 1), true).unwrap();
    assert_eq!(out.matches, vec![BASE + 1]);
}

/// The background compactor folds sealed deltas on its own schedule;
/// answers are identical before and after the fold (exact paths are
/// compaction-invariant).
#[test]
fn background_compactor_folds_deltas() {
    let (cluster, index, gen) = fixture();
    let handle = QueryServer::start(
        Arc::clone(&cluster),
        index,
        ServerConfig {
            manifest: Some("idx".to_string()),
            compaction: Some(CompactorConfig {
                interval: Duration::from_millis(20),
                min_deltas: 1,
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    for b in 0..3u64 {
        let resp = client
            .send(&ingest_request(b + 1, &gen, BASE + b * 100, 100))
            .unwrap();
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }
    // The compactor needs no nudge: poll until it has folded everything.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let snap = cluster.metrics().snapshot();
        if snap.compactions >= 1 && snap.deltas_active == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let snap = cluster.metrics().snapshot();
    assert!(snap.compactions >= 1, "background compactor never ran");
    assert_eq!(snap.deltas_active, 0, "deltas left unfolded");
    assert_eq!(snap.compaction_records_folded, 300);
    // Folded records still answer over the wire.
    for rid in [BASE + 3, BASE + 157, BASE + 299] {
        let resp = client.send(&exact_request(10 + rid, &gen, rid)).unwrap();
        assert!(
            resp.contains("\"ok\":true") && resp.contains(&format!("[{rid}]")),
            "rid {rid} lost after background fold: {resp}"
        );
    }
    handle.shutdown();
}

/// Wire-level contract of the new ops: ingest reports the sealed delta,
/// compact reports the fold, and both keep the daemon serving.
#[test]
fn ingest_and_compact_wire_responses() {
    let (cluster, index, gen) = fixture();
    let handle = QueryServer::start(
        Arc::clone(&cluster),
        index,
        ServerConfig {
            manifest: Some("idx".to_string()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    let resp = client.send(&ingest_request(7, &gen, BASE, 40)).unwrap();
    assert!(resp.contains("\"op\":\"ingest\""), "{resp}");
    assert!(resp.contains("\"accepted\":40"), "{resp}");
    assert!(resp.contains("\"deltas\":1"), "{resp}");

    // Compacting with no prior deltas after this fold is reported too.
    let resp = client.send(&Request::new(8, Op::Compact)).unwrap();
    assert!(resp.contains("\"op\":\"compact\""), "{resp}");
    assert!(resp.contains("\"folded\":40"), "{resp}");
    assert!(resp.contains("\"deltas_folded\":1"), "{resp}");

    // A second compact is a no-op, not an error.
    let resp = client.send(&Request::new(9, Op::Compact)).unwrap();
    assert!(resp.contains("\"ok\":true") && resp.contains("\"folded\":0"), "{resp}");

    // An empty ingest is a protocol error, and the connection survives.
    let resp = client
        .send_line("{\"id\":10,\"op\":\"ingest\"}")
        .unwrap();
    assert!(resp.contains("\"ok\":false"), "{resp}");
    let resp = client.send(&exact_request(11, &gen, 5)).unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    handle.shutdown();
}

/// Regression: a socket-initiated compact must delete the retired
/// delta files promptly. The connection thread used to take its query
/// snapshot *before* dispatching the op, keeping the displaced
/// generation's `Arc` alive across the drain loop — compact spun the
/// full 10 s drain cap (stalling ingest behind the writer lock) and
/// then skipped the deletion, leaking the old generation forever.
#[test]
fn wire_compact_deletes_retired_files_promptly() {
    let (cluster, index, gen) = fixture();
    let handle = QueryServer::start(
        Arc::clone(&cluster),
        index,
        ServerConfig {
            manifest: Some("idx".to_string()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    let resp = client.send(&ingest_request(1, &gen, BASE, 60)).unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(cluster.dfs().file_exists("delta-000000"), "delta not sealed to DFS");

    let t0 = Instant::now();
    let resp = client.send(&Request::new(2, Op::Compact)).unwrap();
    let took = t0.elapsed();
    assert!(resp.contains("\"ok\":true") && resp.contains("\"folded\":60"), "{resp}");
    // With no concurrent reader the old snapshot drains immediately; a
    // compact that approaches the drain cap means the dispatcher itself
    // pinned the displaced generation.
    assert!(took < Duration::from_secs(8), "compact stalled {took:?} in the drain loop");
    assert!(
        !cluster.dfs().file_exists("delta-000000"),
        "retired delta file leaked after wire compact"
    );
    assert!(
        !cluster.dfs().file_exists("dbloom-000000"),
        "retired delta bloom leaked after wire compact"
    );
    handle.shutdown();
}
