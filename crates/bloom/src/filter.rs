//! The Bloom filter proper.

use crate::bitvec::BitVec;
use crate::hash::{fnv1a_64, xx_like_64};

/// Sizing parameters for a Bloom filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BloomParams {
    /// Number of bits in the filter.
    pub nbits: usize,
    /// Number of hash probes per key.
    pub nhashes: u32,
}

impl BloomParams {
    /// Optimal parameters for `expected_items` keys at the target false
    /// positive probability `fpp`:
    /// `m = −n·ln(p)/ln(2)²`, `k = (m/n)·ln(2)`.
    ///
    /// # Panics
    /// Panics unless `0 < fpp < 1` and `expected_items > 0`.
    pub fn for_capacity(expected_items: usize, fpp: f64) -> BloomParams {
        assert!(expected_items > 0, "capacity must be positive");
        assert!(fpp > 0.0 && fpp < 1.0, "fpp must be in (0,1)");
        let n = expected_items as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * fpp.ln() / (ln2 * ln2)).ceil().max(64.0);
        let k = ((m / n) * ln2).round().clamp(1.0, 30.0);
        BloomParams {
            nbits: m as usize,
            nhashes: k as u32,
        }
    }

    /// The theoretical false-positive probability of these parameters once
    /// `items` keys are inserted: `(1 − e^(−k·n/m))^k`.
    pub fn expected_fpp(&self, items: usize) -> f64 {
        let k = self.nhashes as f64;
        let exponent = -k * items as f64 / self.nbits as f64;
        (1.0 - exponent.exp()).powf(k)
    }
}

/// A Bloom filter over byte-slice keys.
///
/// False positives possible; false negatives impossible — the property the
/// exact-match algorithm depends on (§V-A: "It can raise false positive but
/// not false negative").
///
/// ```
/// use tardis_bloom::BloomFilter;
///
/// let mut filter = BloomFilter::with_capacity(1_000, 0.01);
/// filter.insert(b"signature-A");
/// assert!(filter.contains(b"signature-A")); // never a false negative
///
/// // Serialize to persist next to its partition.
/// let restored = BloomFilter::from_bytes(&filter.to_bytes()).unwrap();
/// assert!(restored.contains(b"signature-A"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BloomFilter {
    bits: BitVec,
    nhashes: u32,
    items: usize,
}

impl BloomFilter {
    /// Creates an empty filter with explicit parameters.
    pub fn new(params: BloomParams) -> BloomFilter {
        BloomFilter {
            bits: BitVec::new(params.nbits),
            nhashes: params.nhashes,
            items: 0,
        }
    }

    /// Creates an empty filter sized for `expected_items` at `fpp`.
    pub fn with_capacity(expected_items: usize, fpp: f64) -> BloomFilter {
        BloomFilter::new(BloomParams::for_capacity(expected_items, fpp))
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = self.base_hashes(key);
        let m = self.bits.len() as u64;
        for i in 0..self.nhashes as u64 {
            let idx = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            self.bits.set(idx as usize);
        }
        self.items += 1;
    }

    /// Tests a key. `false` means *definitely absent*; `true` means
    /// *probably present*.
    pub fn contains(&self, key: &[u8]) -> bool {
        let (h1, h2) = self.base_hashes(key);
        let m = self.bits.len() as u64;
        (0..self.nhashes as u64).all(|i| {
            let idx = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            self.bits.get(idx as usize)
        })
    }

    /// Kirsch–Mitzenmacher base hashes; `h2` is forced odd so the probe
    /// sequence cycles through distinct positions for power-of-two sizes.
    #[inline]
    fn base_hashes(&self, key: &[u8]) -> (u64, u64) {
        (fnv1a_64(key), xx_like_64(key) | 1)
    }

    /// Number of keys inserted so far.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Number of probes per key.
    pub fn nhashes(&self) -> u32 {
        self.nhashes
    }

    /// Number of bits in the filter.
    pub fn nbits(&self) -> usize {
        self.bits.len()
    }

    /// Fraction of bits set (load factor).
    pub fn load(&self) -> f64 {
        self.bits.count_ones() as f64 / self.bits.len() as f64
    }

    /// Merges a filter built with identical parameters (used when a
    /// partition's filter is assembled from per-task shards).
    ///
    /// # Panics
    /// Panics if sizes or probe counts differ.
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert_eq!(self.nhashes, other.nhashes, "probe count mismatch");
        self.bits.union_with(&other.bits);
        self.items += other.items;
    }

    /// Approximate memory footprint in bytes (index-size accounting;
    /// §VI-B1 reports ~66 KB per partition filter).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.bits.mem_bytes()
    }

    /// Serializes the filter: probe count, item count, then the bit vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.bits.len() / 8);
        out.extend_from_slice(&self.nhashes.to_le_bytes());
        out.extend_from_slice(&(self.items as u64).to_le_bytes());
        out.extend_from_slice(&self.bits.to_bytes());
        out
    }

    /// Deserializes the [`Self::to_bytes`] format.
    pub fn from_bytes(bytes: &[u8]) -> Option<BloomFilter> {
        let nhashes = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?);
        let items = u64::from_le_bytes(bytes.get(4..12)?.try_into().ok()?) as usize;
        if nhashes == 0 {
            return None;
        }
        let bits = BitVec::from_bytes(bytes.get(12..)?)?;
        Some(BloomFilter {
            bits,
            nhashes,
            items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_matches_formula() {
        let p = BloomParams::for_capacity(1000, 0.01);
        // m ≈ 9585, k ≈ 7 for 1% fpp.
        assert!((9500..9700).contains(&p.nbits), "nbits {}", p.nbits);
        assert_eq!(p.nhashes, 7);
    }

    #[test]
    #[should_panic(expected = "fpp")]
    fn sizing_rejects_bad_fpp() {
        BloomParams::for_capacity(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn sizing_rejects_zero_capacity() {
        BloomParams::for_capacity(0, 0.01);
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(500, 0.01);
        let keys: Vec<String> = (0..500).map(|i| format!("sig-{i:05}")).collect();
        for k in &keys {
            f.insert(k.as_bytes());
        }
        for k in &keys {
            assert!(f.contains(k.as_bytes()), "false negative on {k}");
        }
        assert_eq!(f.items(), 500);
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut f = BloomFilter::with_capacity(2000, 0.01);
        for i in 0..2000u32 {
            f.insert(&i.to_le_bytes());
        }
        let mut fps = 0usize;
        let probes = 20_000u32;
        for i in 10_000..10_000 + probes {
            if f.contains(&i.to_le_bytes()) {
                fps += 1;
            }
        }
        let rate = fps as f64 / probes as f64;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::with_capacity(10, 0.01);
        assert!(!f.contains(b"anything"));
        assert_eq!(f.load(), 0.0);
    }

    #[test]
    fn expected_fpp_increases_with_items() {
        let p = BloomParams::for_capacity(1000, 0.01);
        assert!(p.expected_fpp(100) < p.expected_fpp(1000));
        assert!(p.expected_fpp(1000) < p.expected_fpp(10_000));
        // At design capacity, close to target.
        let at_cap = p.expected_fpp(1000);
        assert!(at_cap < 0.015, "design fpp {at_cap}");
    }

    #[test]
    fn union_preserves_membership() {
        let params = BloomParams::for_capacity(200, 0.01);
        let mut a = BloomFilter::new(params);
        let mut b = BloomFilter::new(params);
        a.insert(b"left");
        b.insert(b"right");
        a.union_with(&b);
        assert!(a.contains(b"left"));
        assert!(a.contains(b"right"));
        assert_eq!(a.items(), 2);
    }

    #[test]
    #[should_panic(expected = "probe count mismatch")]
    fn union_incompatible_panics() {
        let mut a = BloomFilter::new(BloomParams {
            nbits: 128,
            nhashes: 3,
        });
        let b = BloomFilter::new(BloomParams {
            nbits: 128,
            nhashes: 4,
        });
        a.union_with(&b);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut f = BloomFilter::with_capacity(100, 0.05);
        for i in 0..100u32 {
            f.insert(&i.to_le_bytes());
        }
        let restored = BloomFilter::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(restored, f);
        for i in 0..100u32 {
            assert!(restored.contains(&i.to_le_bytes()));
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(BloomFilter::from_bytes(&[1, 2, 3]).is_none());
        // Zero hash count rejected.
        let mut bytes = BloomFilter::with_capacity(10, 0.1).to_bytes();
        bytes[0] = 0;
        bytes[1] = 0;
        bytes[2] = 0;
        bytes[3] = 0;
        assert!(BloomFilter::from_bytes(&bytes).is_none());
    }

    #[test]
    fn paper_scale_filter_is_small() {
        // §VI-B1: the per-partition filter is ~66 KB. A partition of
        // ~110k signatures at 0.5% fpp lands in the tens-of-KB range.
        let f = BloomFilter::with_capacity(50_000, 0.005);
        assert!(f.mem_bytes() < 200 * 1024, "filter {} bytes", f.mem_bytes());
    }
}
