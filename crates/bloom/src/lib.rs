#![warn(missing_docs)]

//! A Bloom filter built from scratch (Bloom, 1970 — reference 15 of the
//! paper).
//!
//! TARDIS attaches one Bloom filter per partition, keyed by the iSAX-T
//! signatures of the partition's records, so that exact-match queries for
//! absent series can skip the high-latency partition load entirely (§IV-C,
//! §V-A). The filter may report false positives but never false negatives,
//! which preserves exact-match completeness.
//!
//! Hashing uses the Kirsch–Mitzenmacher double-hashing scheme over two
//! independent 64-bit hashes (FNV-1a and an xxHash-style avalanche mix), so
//! `k` probes cost two hash evaluations.

pub mod bitvec;
pub mod filter;
pub mod hash;

pub use bitvec::BitVec;
pub use filter::{BloomFilter, BloomParams};
pub use hash::{fnv1a_64, mix64, xx_like_64};
