//! Hash functions for the Bloom filter, implemented from scratch.

/// FNV-1a over a byte slice (64-bit).
#[inline]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x00000100000001B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A strong 64-bit finalizer (splitmix64-style avalanche).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A second independent 64-bit hash over bytes: processes 8-byte lanes with
/// multiply-rotate mixing and finishes with [`mix64`] (xxHash-style
/// construction, independent constants from FNV).
#[inline]
pub fn xx_like_64(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x27220A95FE841EED;
    const M1: u64 = 0xC2B2AE3D27D4EB4F;
    const M2: u64 = 0x165667B19E3779F9;
    let mut h = SEED ^ (bytes.len() as u64).wrapping_mul(M1);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lane = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
        h ^= lane.wrapping_mul(M1).rotate_left(31).wrapping_mul(M2);
        h = h.rotate_left(27).wrapping_mul(M1).wrapping_add(M2);
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    if !chunks.remainder().is_empty() {
        h ^= tail.wrapping_mul(M2).rotate_left(17);
    }
    mix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // Distinct inputs keep distinct outputs (spot check on a range).
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn hashes_are_independent() {
        // The two hash families must not be correlated on simple inputs.
        let inputs: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let mut equal = 0;
        for inp in &inputs {
            if fnv1a_64(inp) % 1024 == xx_like_64(inp) % 1024 {
                equal += 1;
            }
        }
        // Expected ~1000/1024 ≈ 1 collision by chance.
        assert!(equal < 10, "suspicious correlation: {equal}");
    }

    #[test]
    fn xx_like_covers_tail_lengths() {
        // Different lengths (exercising remainder handling) give distinct
        // hashes for related content.
        let data = b"abcdefghijklmnop";
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            seen.insert(xx_like_64(&data[..len]));
        }
        assert_eq!(seen.len(), data.len() + 1);
    }

    #[test]
    fn hash_distribution_is_roughly_uniform() {
        const BUCKETS: usize = 16;
        let mut counts = [0usize; BUCKETS];
        for i in 0..16_000u32 {
            let h = xx_like_64(&i.to_le_bytes());
            counts[(h % BUCKETS as u64) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket ~1000; allow generous slack.
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
