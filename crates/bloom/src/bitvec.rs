//! A compact bit vector backing the Bloom filter.

/// A fixed-size bit vector packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    nbits: usize,
}

impl BitVec {
    /// Creates a zeroed bit vector with `nbits` bits.
    ///
    /// # Panics
    /// Panics if `nbits == 0`.
    pub fn new(nbits: usize) -> Self {
        assert!(nbits > 0, "bit vector must have at least one bit");
        BitVec {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// Always false: a `BitVec` is never zero-length by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sets bit `i`, returning its previous value.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        let was = *word & mask != 0;
        *word |= mask;
        was
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Unions another bit vector into this one.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.nbits, other.nbits, "bit vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Heap + inline size in bytes.
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.capacity() * 8
    }

    /// Serializes to little-endian bytes: `nbits` as u64 then the words.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.words.len() * 8);
        out.extend_from_slice(&(self.nbits as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes the [`Self::to_bytes`] format. Returns `None` on any
    /// structural mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let nbits = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
        if nbits == 0 {
            return None;
        }
        let nwords = nbits.div_ceil(64);
        let body = bytes.get(8..)?;
        if body.len() != nwords * 8 {
            return None;
        }
        let words = body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Some(BitVec { words, nbits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut bv = BitVec::new(130);
        assert!(!bv.get(0));
        assert!(!bv.set(0));
        assert!(bv.get(0));
        assert!(bv.set(0), "second set reports previously set");
        assert!(!bv.set(129));
        assert!(bv.get(129));
        assert!(!bv.get(128));
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::new(8).get(8);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_length_rejected() {
        BitVec::new(0);
    }

    #[test]
    fn union() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(3);
        b.set(97);
        a.union_with(&b);
        assert!(a.get(3) && a.get(97));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_length_mismatch_panics() {
        let mut a = BitVec::new(64);
        let b = BitVec::new(65);
        a.union_with(&b);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut bv = BitVec::new(77);
        for i in [0usize, 13, 64, 76] {
            bv.set(i);
        }
        let restored = BitVec::from_bytes(&bv.to_bytes()).unwrap();
        assert_eq!(restored, bv);
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let bv = BitVec::new(100);
        let bytes = bv.to_bytes();
        assert!(BitVec::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(BitVec::from_bytes(&bytes[..4]).is_none());
    }

    #[test]
    fn from_bytes_rejects_zero_bits() {
        let bytes = 0u64.to_le_bytes().to_vec();
        assert!(BitVec::from_bytes(&bytes).is_none());
    }
}
