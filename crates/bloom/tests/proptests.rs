//! Property-based tests for the Bloom filter: no false negatives, union
//! semantics, and serialization fidelity under arbitrary key sets.

use proptest::prelude::*;
use tardis_bloom::{BloomFilter, BloomParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn never_false_negative(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..300),
        fpp in 0.001f64..0.2,
    ) {
        let mut filter = BloomFilter::with_capacity(keys.len(), fpp);
        for k in &keys {
            filter.insert(k);
        }
        for k in &keys {
            prop_assert!(filter.contains(k), "false negative on {:?}", k);
        }
    }

    #[test]
    fn union_covers_both_sides(
        left in prop::collection::vec(any::<u64>(), 0..100),
        right in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let params = BloomParams::for_capacity(256, 0.01);
        let mut a = BloomFilter::new(params);
        let mut b = BloomFilter::new(params);
        for k in &left {
            a.insert(&k.to_le_bytes());
        }
        for k in &right {
            b.insert(&k.to_le_bytes());
        }
        a.union_with(&b);
        for k in left.iter().chain(&right) {
            prop_assert!(a.contains(&k.to_le_bytes()));
        }
        prop_assert_eq!(a.items(), left.len() + right.len());
    }

    #[test]
    fn serialization_preserves_answers(
        keys in prop::collection::vec(any::<u64>(), 1..200),
        probes in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut filter = BloomFilter::with_capacity(keys.len(), 0.01);
        for k in &keys {
            filter.insert(&k.to_le_bytes());
        }
        let restored = BloomFilter::from_bytes(&filter.to_bytes()).unwrap();
        for p in keys.iter().chain(&probes) {
            prop_assert_eq!(
                filter.contains(&p.to_le_bytes()),
                restored.contains(&p.to_le_bytes())
            );
        }
    }

    #[test]
    fn sizing_formula_is_monotone(
        n in 1usize..100_000,
        fpp in 0.001f64..0.5,
    ) {
        let p = BloomParams::for_capacity(n, fpp);
        prop_assert!(p.nbits >= 64);
        prop_assert!(p.nhashes >= 1);
        // Halving the fpp never shrinks the filter.
        let tighter = BloomParams::for_capacity(n, fpp / 2.0);
        prop_assert!(tighter.nbits >= p.nbits);
    }

    #[test]
    fn observed_fpp_stays_reasonable(
        seed in any::<u32>(),
    ) {
        let mut filter = BloomFilter::with_capacity(1_000, 0.02);
        for i in 0..1_000u64 {
            filter.insert(&(i ^ seed as u64).to_le_bytes());
        }
        let mut fps = 0usize;
        let probes = 5_000u64;
        for i in 0..probes {
            let key = (1_000_000 + i * 7919) ^ seed as u64;
            if filter.contains(&key.to_le_bytes()) {
                fps += 1;
            }
        }
        let rate = fps as f64 / probes as f64;
        prop_assert!(rate < 0.06, "observed fpp {}", rate);
    }
}
