//! Per-query work summary.

use crate::span::SpanNode;
use std::fmt::Write;

/// What one query cost: the partitions it touched, the candidate-level
/// accounting, and its span tree.
///
/// Counter semantics (they are disjoint — a candidate is exactly one of
/// pruned / abandoned / refined):
///
/// * `candidates_pruned` — eliminated by an iSAX-T lower bound *before*
///   any raw-series distance work.
/// * `candidates_abandoned` — raw-series distance started but cut off
///   early by the current kNN threshold (early abandoning).
/// * `candidates_refined` — full raw-series distance computed.
///
/// The refine-cascade counters slice the same work a different way:
/// `lanes_pruned_paa` counts candidates eliminated by the batched
/// PAA-vs-query lower-bound pre-filter (a subset of the work that would
/// otherwise have been abandoned or refined), and
/// `refine_block_candidates` counts candidates that reached the lane
/// distance kernels (`refined + abandoned` of the cascade stage).
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// Partitions whose payload was loaded from the DFS.
    pub partitions_loaded: usize,
    /// Which partitions were loaded, ascending.
    pub partition_ids: Vec<u64>,
    /// Candidates eliminated by a lower bound before distance work.
    pub candidates_pruned: u64,
    /// Candidates whose distance computation was abandoned early.
    pub candidates_abandoned: u64,
    /// Candidates with a fully computed raw-series distance.
    pub candidates_refined: u64,
    /// Exact-match probes rejected by a partition Bloom filter.
    pub bloom_rejected: u64,
    /// Candidates eliminated by the batched PAA lower-bound pre-filter.
    pub lanes_pruned_paa: u64,
    /// Candidates that entered the lane/block distance kernels.
    pub refine_block_candidates: u64,
    /// Partitions skipped by a best-effort degraded query because no
    /// replica could serve them (0 outside degraded mode).
    pub partitions_skipped: u64,
    /// Span forest for the query (usually one root).
    pub spans: Vec<SpanNode>,
}

impl QueryProfile {
    /// Finds the first span named `name` anywhere in the forest.
    pub fn span(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Renders the profile as indented text for CLI dumps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "partitions_loaded={} pruned={} abandoned={} refined={} bloom_rejected={} \
             paa_pruned={} block_candidates={}",
            self.partitions_loaded,
            self.candidates_pruned,
            self.candidates_abandoned,
            self.candidates_refined,
            self.bloom_rejected,
            self.lanes_pruned_paa,
            self.refine_block_candidates,
        );
        if self.partitions_skipped > 0 {
            let _ = writeln!(out, "partitions_skipped={} (degraded)", self.partitions_skipped);
        }
        if !self.partition_ids.is_empty() {
            let ids: Vec<String> = self.partition_ids.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(out, "partitions=[{}]", ids.join(","));
        }
        for span in &self.spans {
            out.push_str(&span.render());
        }
        out
    }
}

/// What one *workload* cost under the shared-scan batch engine: every
/// query's own [`QueryProfile`] (in input order) plus the batch-level
/// sharing accounting the per-query view cannot express.
///
/// `partitions_loaded` counts *physical* loads — distinct partitions
/// deserialized from the DFS once for the whole batch. The logical
/// demand is the sum of the per-query `partitions_loaded` counters;
/// `partitions_shared` is the difference (logical − physical), i.e. the
/// number of loads the engine avoided by serving one deserialized
/// partition to several queries.
#[derive(Debug, Clone, Default)]
pub struct BatchProfile {
    /// Per-query profiles, in workload (input) order.
    pub queries: Vec<QueryProfile>,
    /// Distinct partitions physically deserialized for the batch.
    pub partitions_loaded: usize,
    /// Partition loads avoided by sharing (logical demand − physical).
    pub partitions_shared: usize,
    /// Batch-level span forest (plan / load / scan / merge phases).
    pub spans: Vec<SpanNode>,
}

impl BatchProfile {
    /// Sum of the per-query logical partition-load counters.
    pub fn logical_loads(&self) -> usize {
        self.queries.iter().map(|q| q.partitions_loaded).sum()
    }

    /// Finds the first span named `name` anywhere in the batch forest.
    pub fn span(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Renders the batch summary plus each query's profile for CLI dumps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch queries={} partitions_loaded={} partitions_shared={} (logical={})",
            self.queries.len(),
            self.partitions_loaded,
            self.partitions_shared,
            self.logical_loads(),
        );
        for span in &self.spans {
            out.push_str(&span.render());
        }
        for (i, q) in self.queries.iter().enumerate() {
            let _ = writeln!(out, "query #{i}:");
            for line in q.render().lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    #[test]
    fn batch_profile_accounting_and_render() {
        let per_query = |loaded: usize| QueryProfile {
            partitions_loaded: loaded,
            ..QueryProfile::default()
        };
        let batch = BatchProfile {
            queries: vec![per_query(2), per_query(1), per_query(2)],
            partitions_loaded: 3,
            partitions_shared: 2,
            spans: Vec::new(),
        };
        assert_eq!(batch.logical_loads(), 5);
        assert_eq!(batch.logical_loads() - batch.partitions_loaded, 2);
        let text = batch.render();
        assert!(text.contains("queries=3"));
        assert!(text.contains("partitions_loaded=3"));
        assert!(text.contains("partitions_shared=2"));
        assert!(text.contains("query #2"));
    }

    #[test]
    fn batch_profile_span_lookup() {
        let t = Tracer::new();
        {
            let root = t.root("batch-knn");
            let _plan = root.child("plan");
        }
        let batch = BatchProfile {
            spans: t.span_tree(),
            ..BatchProfile::default()
        };
        assert!(batch.span("plan").is_some());
        assert!(batch.span("nope").is_none());
        assert!(batch.render().contains("batch-knn"));
    }

    #[test]
    fn render_includes_counters_and_spans() {
        let t = Tracer::new();
        {
            let root = t.root("query");
            let _route = root.child("route");
        }
        let profile = QueryProfile {
            partitions_loaded: 2,
            partition_ids: vec![3, 7],
            candidates_pruned: 10,
            candidates_abandoned: 4,
            candidates_refined: 6,
            bloom_rejected: 0,
            lanes_pruned_paa: 3,
            refine_block_candidates: 10,
            partitions_skipped: 0,
            spans: t.span_tree(),
        };
        let text = profile.render();
        assert!(text.contains("partitions_loaded=2"));
        assert!(!text.contains("partitions_skipped"), "hidden when zero");
        assert!(text.contains("paa_pruned=3"));
        assert!(text.contains("block_candidates=10"));
        assert!(text.contains("partitions=[3,7]"));
        assert!(text.contains("query"));
        assert!(profile.span("route").is_some());
    }

    #[test]
    fn render_shows_degraded_skips() {
        let profile = QueryProfile {
            partitions_skipped: 2,
            ..QueryProfile::default()
        };
        assert!(profile.render().contains("partitions_skipped=2 (degraded)"));
    }
}
