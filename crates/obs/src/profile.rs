//! Per-query work summary.

use crate::span::SpanNode;
use std::fmt::Write;

/// What one query cost: the partitions it touched, the candidate-level
/// accounting, and its span tree.
///
/// Counter semantics (they are disjoint — a candidate is exactly one of
/// pruned / abandoned / refined):
///
/// * `candidates_pruned` — eliminated by an iSAX-T lower bound *before*
///   any raw-series distance work.
/// * `candidates_abandoned` — raw-series distance started but cut off
///   early by the current kNN threshold (early abandoning).
/// * `candidates_refined` — full raw-series distance computed.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// Partitions whose payload was loaded from the DFS.
    pub partitions_loaded: usize,
    /// Which partitions were loaded, ascending.
    pub partition_ids: Vec<u64>,
    /// Candidates eliminated by a lower bound before distance work.
    pub candidates_pruned: u64,
    /// Candidates whose distance computation was abandoned early.
    pub candidates_abandoned: u64,
    /// Candidates with a fully computed raw-series distance.
    pub candidates_refined: u64,
    /// Exact-match probes rejected by a partition Bloom filter.
    pub bloom_rejected: u64,
    /// Span forest for the query (usually one root).
    pub spans: Vec<SpanNode>,
}

impl QueryProfile {
    /// Finds the first span named `name` anywhere in the forest.
    pub fn span(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Renders the profile as indented text for CLI dumps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "partitions_loaded={} pruned={} abandoned={} refined={} bloom_rejected={}",
            self.partitions_loaded,
            self.candidates_pruned,
            self.candidates_abandoned,
            self.candidates_refined,
            self.bloom_rejected,
        );
        if !self.partition_ids.is_empty() {
            let ids: Vec<String> = self.partition_ids.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(out, "partitions=[{}]", ids.join(","));
        }
        for span in &self.spans {
            out.push_str(&span.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    #[test]
    fn render_includes_counters_and_spans() {
        let t = Tracer::new();
        {
            let root = t.root("query");
            let _route = root.child("route");
        }
        let profile = QueryProfile {
            partitions_loaded: 2,
            partition_ids: vec![3, 7],
            candidates_pruned: 10,
            candidates_abandoned: 4,
            candidates_refined: 6,
            bloom_rejected: 0,
            spans: t.span_tree(),
        };
        let text = profile.render();
        assert!(text.contains("partitions_loaded=2"));
        assert!(text.contains("partitions=[3,7]"));
        assert!(text.contains("query"));
        assert!(profile.span("route").is_some());
    }
}
