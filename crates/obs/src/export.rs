//! Exporters: chrome-trace JSON and Prometheus text.
//!
//! * [`chrome_trace_json`] renders finished spans as complete (`"ph":
//!   "X"`) events in the [Trace Event Format] — drop the file onto
//!   `about:tracing` or load it in Perfetto to see the query/build
//!   timeline per thread.
//! * [`PromText`] accumulates `# HELP` / `# TYPE` / sample lines in the
//!   Prometheus text exposition format; the cluster crate uses it to
//!   merge its `MetricsSnapshot` counters with span aggregates.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::span::SpanRecord;
use std::fmt::Write;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders span records as a chrome-trace JSON array of complete
/// (`"ph": "X"`) events. Timestamps and durations are microseconds, as
/// the format requires; `pid` is fixed (one process), `tid` is the dense
/// thread id each span ran on, and `args` carries the span id, parent
/// id, and any attached counters.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"tardis\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"id\":{}",
            json_escape(r.name),
            r.start_us,
            r.dur_us,
            r.thread,
            r.id
        );
        if let Some(parent) = r.parent {
            let _ = write!(out, ",\"parent\":{parent}");
        }
        for (name, value) in &r.counters {
            let _ = write!(out, ",\"{}\":{}", json_escape(name), value);
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

/// Accumulates metrics in the Prometheus text exposition format.
///
/// Each distinct metric name gets `# HELP` and `# TYPE` header lines the
/// first time it appears; labeled samples of the same name share one
/// header block (as the format requires).
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    seen: std::collections::BTreeSet<String>,
}

impl PromText {
    /// Creates an empty dump.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.seen.insert(name.to_string()) {
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    /// Appends an unlabeled counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends an unlabeled gauge sample (a value that can go down —
    /// queue depths, in-flight counts).
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends a counter sample with one label.
    pub fn labeled_counter(
        &mut self,
        name: &str,
        help: &str,
        label_key: &str,
        label_value: &str,
        value: u64,
    ) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name}{{{label_key}=\"{label_value}\"}} {value}");
    }

    /// Appends a gauge sample with one label.
    pub fn labeled_gauge(
        &mut self,
        name: &str,
        help: &str,
        label_key: &str,
        label_value: &str,
        value: u64,
    ) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name}{{{label_key}=\"{label_value}\"}} {value}");
    }

    /// Appends per-span-name `count` and `total microseconds` counters
    /// from a tracer's aggregates.
    pub fn spans(&mut self, aggregates: &[crate::span::SpanAggregate]) {
        for agg in aggregates {
            self.labeled_counter(
                "tardis_span_count",
                "Finished spans by name.",
                "span",
                agg.name,
                agg.count,
            );
        }
        for agg in aggregates {
            self.labeled_counter(
                "tardis_span_total_us",
                "Summed span wall-clock time by name, microseconds.",
                "span",
                agg.name,
                agg.total_us,
            );
        }
    }

    /// The accumulated text dump.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    #[test]
    fn chrome_trace_is_wellformed_for_nested_spans() {
        let t = Tracer::new();
        {
            let root = t.root("query");
            let load = root.child("load");
            load.add("partitions_loaded", 2);
        }
        let json = t.chrome_trace_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"query\""));
        assert!(json.contains("\"partitions_loaded\":2"));
        assert!(json.contains("\"parent\":"));
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        assert_eq!(Tracer::disabled().chrome_trace_json(), "[]");
        assert_eq!(Tracer::new().chrome_trace_json(), "[]");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn prom_text_emits_headers_once() {
        let mut p = PromText::new();
        p.counter("tardis_blocks_read", "Blocks read.", 4);
        p.gauge("tardis_queue_depth", "Waiting queries.", 3);
        p.labeled_counter("tardis_span_count", "Spans.", "span", "route", 2);
        p.labeled_counter("tardis_span_count", "Spans.", "span", "load", 1);
        let text = p.finish();
        assert_eq!(text.matches("# TYPE tardis_span_count counter").count(), 1);
        assert!(text.contains("tardis_blocks_read 4"));
        assert!(text.contains("# TYPE tardis_queue_depth gauge"));
        assert!(text.contains("tardis_queue_depth 3"));
        assert!(text.contains("tardis_span_count{span=\"route\"} 2"));
        assert!(text.contains("tardis_span_count{span=\"load\"} 1"));
    }

    #[test]
    fn spans_section_renders_aggregates() {
        let t = Tracer::new();
        {
            let _a = t.root("route");
        }
        let mut p = PromText::new();
        p.spans(&t.aggregates());
        let text = p.finish();
        assert!(text.contains("tardis_span_count{span=\"route\"} 1"));
        assert!(text.contains("tardis_span_total_us{span=\"route\"}"));
    }
}
