//! Peak-heap tracking global allocator.
//!
//! The bounded-memory build path (`TardisIndex::build_sorted`) claims
//! flat peak memory in the run budget rather than the dataset size. That
//! claim is only worth anything if it is *measured*, so this module
//! provides a drop-in [`GlobalAlloc`] wrapper over the system allocator
//! that tracks live heap bytes and their high-water mark. Binaries that
//! want the measurement opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tardis_obs::PeakAlloc = tardis_obs::PeakAlloc;
//! ```
//!
//! and read [`peak_bytes`] / reset the mark with [`reset_peak`] around
//! the region of interest. Libraries never install it; when no binary
//! has, every probe returns 0 and exporters omit the gauge.
//!
//! The machinery mirrors the counting allocator that pins the span
//! overhead contract in `crates/obs/tests/no_alloc.rs`: a zero-sized
//! wrapper over [`System`] updating atomics on every call. Tracking
//! costs two relaxed atomic ops per allocation — negligible next to the
//! allocation itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live heap bytes allocated through [`PeakAlloc`].
static LIVE: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE`] since the last [`reset_peak`].
static PEAK: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed global allocator that tracks live bytes and their
/// peak. Zero-sized; install as `#[global_allocator]`.
pub struct PeakAlloc;

#[inline]
fn grow(bytes: usize) {
    let live = LIVE.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn shrink(bytes: usize) {
    LIVE.fetch_sub(bytes as u64, Ordering::Relaxed);
}

// SAFETY: delegates every operation to `System` unchanged; the atomics
// only observe sizes and never affect pointer values or layouts.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            grow(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            grow(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        shrink(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            shrink(layout.size());
            grow(new_size);
        }
        p
    }
}

/// Heap bytes currently live (0 when [`PeakAlloc`] is not installed).
pub fn current_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live heap bytes since the last [`reset_peak`] (0 when
/// [`PeakAlloc`] is not installed).
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live size, so the next
/// [`peak_bytes`] reading isolates the region that follows.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install `PeakAlloc` as the global
    // allocator (that would conflict with other suites), so exercise the
    // `GlobalAlloc` impl directly.
    #[test]
    fn tracks_live_and_peak() {
        let a = PeakAlloc;
        reset_peak();
        let base = current_bytes();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(current_bytes(), base + 4096);
            assert!(peak_bytes() >= base + 4096);
            let p = a.realloc(p, layout, 8192);
            assert!(!p.is_null());
            assert_eq!(current_bytes(), base + 8192);
            let grown = Layout::from_size_align(8192, 8).unwrap();
            a.dealloc(p, grown);
        }
        assert_eq!(current_bytes(), base);
        assert!(peak_bytes() >= base + 8192);
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
    }
}
