//! Hierarchical wall-clock spans with counter attachment.
//!
//! The span model is explicit-parent rather than thread-local: a
//! [`Tracer`] hands out root spans, and every child is opened from its
//! parent (`span.child("load")`). This makes parentage deterministic
//! when work fans out across a worker pool — a task running on any
//! thread opens a child of the query span it was given, and the record
//! it produces carries that thread's id for the chrome-trace view.
//!
//! A disabled tracer costs one branch and zero allocations per span
//! operation (see the crate docs for the overhead contract).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Small dense per-thread id for trace output (`ThreadId` is opaque and
/// its integer accessor is unstable).
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// One finished span: name, interval, thread, parentage, counters.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Tracer-unique span id (assigned at open time, so parents have
    /// smaller ids than their children).
    pub id: u32,
    /// Parent span id, `None` for roots.
    pub parent: Option<u32>,
    /// Static span name (e.g. `"route"`, `"refine"`).
    pub name: &'static str,
    /// Start offset from the tracer epoch, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Dense id of the thread the span ran on.
    pub thread: u64,
    /// Counters attached while the span was open (merged by name).
    pub counters: Vec<(&'static str, u64)>,
}

/// A span record re-threaded into its tree position.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Static span name.
    pub name: &'static str,
    /// Start offset from the tracer epoch, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Dense id of the thread the span ran on.
    pub thread: u64,
    /// Counters attached while the span was open.
    pub counters: Vec<(&'static str, u64)>,
    /// Child spans, ascending by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Looks up an attached counter by name (first match).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// Depth-first search for the first descendant (or self) with `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let _ = write!(out, "{:indent$}{} {}us", "", self.name, self.dur_us, indent = depth * 2);
        for (name, value) in &self.counters {
            let _ = write!(out, " {name}={value}");
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }

    /// Renders the subtree as indented text (for CLI profile dumps).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }
}

/// Per-name aggregate over a tracer's records (for the Prometheus dump).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAggregate {
    /// Span name.
    pub name: &'static str,
    /// Number of finished spans with this name.
    pub count: u64,
    /// Summed wall-clock duration, microseconds.
    pub total_us: u64,
}

#[derive(Debug)]
struct TracerInner {
    epoch: Instant,
    records: Mutex<Vec<SpanRecord>>,
    next_id: AtomicU32,
}

/// A handle that collects span records; cheap to clone and share.
///
/// [`Tracer::disabled`] (also the [`Default`]) collects nothing and
/// makes every span operation a no-op costing one branch.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// Creates an *enabled* tracer whose epoch is "now".
    pub fn new() -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                records: Mutex::new(Vec::new()),
                next_id: AtomicU32::new(1),
            })),
        }
    }

    /// Creates a disabled tracer: spans opened from it are no-ops.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether spans opened from this tracer record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span.
    pub fn root(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(inner) => Span::open(Arc::clone(inner), None, name),
        }
    }

    /// Snapshot of every *finished* span, ascending by start time (ties
    /// broken by id, so parents precede the children they enclose).
    pub fn records(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut records = inner.records.lock().clone();
        records.sort_by_key(|r| (r.start_us, r.id));
        records
    }

    /// Re-threads the finished spans into their forest of trees.
    pub fn span_tree(&self) -> Vec<SpanNode> {
        build_tree(&self.records())
    }

    /// The subtree rooted at span `root` (by id), or empty if that span
    /// has not finished. Lets a per-query profile carry only its own
    /// spans when one tracer is shared across many queries.
    pub fn span_tree_under(&self, root: u32) -> Vec<SpanNode> {
        let mut keep = std::collections::HashSet::from([root]);
        // Records are sorted (start, id) and ids grow at open time, so a
        // parent always precedes its children: one pass closes the set.
        let kept: Vec<SpanRecord> = self
            .records()
            .into_iter()
            .filter(|r| {
                if r.id == root || r.parent.is_some_and(|p| keep.contains(&p)) {
                    keep.insert(r.id);
                    true
                } else {
                    false
                }
            })
            .collect();
        build_tree(&kept)
    }

    /// Per-name `(count, total duration)` aggregates, sorted by name.
    pub fn aggregates(&self) -> Vec<SpanAggregate> {
        let mut by_name: std::collections::BTreeMap<&'static str, (u64, u64)> =
            std::collections::BTreeMap::new();
        for r in self.records() {
            let slot = by_name.entry(r.name).or_default();
            slot.0 += 1;
            slot.1 += r.dur_us;
        }
        by_name
            .into_iter()
            .map(|(name, (count, total_us))| SpanAggregate { name, count, total_us })
            .collect()
    }

    /// Exports every finished span as chrome-trace "X" (complete) events
    /// — a JSON array loadable in `about:tracing` / Perfetto. Span
    /// counters and parentage ride along in `args`.
    pub fn chrome_trace_json(&self) -> String {
        crate::export::chrome_trace_json(&self.records())
    }
}

/// Builds the span forest from records sorted by `(start_us, id)`.
pub(crate) fn build_tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    use std::collections::HashMap;
    let mut nodes: HashMap<u32, SpanNode> = HashMap::new();
    // Children of each parent, in record (= start) order.
    let mut children_of: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut roots: Vec<u32> = Vec::new();
    for r in records {
        nodes.insert(
            r.id,
            SpanNode {
                name: r.name,
                start_us: r.start_us,
                dur_us: r.dur_us,
                thread: r.thread,
                counters: r.counters.clone(),
                children: Vec::new(),
            },
        );
        match r.parent {
            // Ids are assigned at open time and records are sorted by
            // (start, id), so a finished parent was inserted before any
            // of its children. A parent with no record (still open at
            // export time) promotes its children to roots.
            Some(p) if nodes.contains_key(&p) => {
                children_of.entry(p).or_default().push(r.id);
            }
            _ => roots.push(r.id),
        }
    }
    fn assemble(
        id: u32,
        nodes: &mut std::collections::HashMap<u32, SpanNode>,
        children_of: &std::collections::HashMap<u32, Vec<u32>>,
    ) -> SpanNode {
        let mut node = nodes.remove(&id).expect("node inserted above");
        if let Some(kids) = children_of.get(&id) {
            for &kid in kids {
                node.children.push(assemble(kid, nodes, children_of));
            }
        }
        node.children.sort_by_key(|c| c.start_us);
        node
    }
    roots
        .into_iter()
        .map(|id| assemble(id, &mut nodes, &children_of))
        .collect()
}

struct ActiveSpan {
    tracer: Arc<TracerInner>,
    id: u32,
    parent: Option<u32>,
    name: &'static str,
    start: Instant,
    counters: Mutex<Vec<(&'static str, u64)>>,
}

/// An open span. Dropping it records the interval; counters added while
/// open ride along on the record. Opened from a disabled tracer, every
/// method is a single-branch no-op.
pub struct Span {
    active: Option<ActiveSpan>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.active {
            Some(a) => write!(f, "Span({}, id {})", a.name, a.id),
            None => write!(f, "Span(noop)"),
        }
    }
}

impl Span {
    fn open(tracer: Arc<TracerInner>, parent: Option<u32>, name: &'static str) -> Span {
        let id = tracer.next_id.fetch_add(1, Ordering::Relaxed);
        Span {
            active: Some(ActiveSpan {
                tracer,
                id,
                parent,
                name,
                start: Instant::now(),
                counters: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A span that records nothing (what a disabled tracer hands out).
    pub fn noop() -> Span {
        Span { active: None }
    }

    /// Whether this span records anything.
    pub fn is_enabled(&self) -> bool {
        self.active.is_some()
    }

    /// This span's tracer-unique id (`None` for no-op spans). Pair with
    /// [`Tracer::span_tree_under`] to extract one query's subtree.
    pub fn id(&self) -> Option<u32> {
        self.active.as_ref().map(|a| a.id)
    }

    /// Opens a child span. Callable from any thread; the child's record
    /// carries the opening thread's id.
    pub fn child(&self, name: &'static str) -> Span {
        match &self.active {
            None => Span { active: None },
            Some(a) => Span::open(Arc::clone(&a.tracer), Some(a.id), name),
        }
    }

    /// Attaches (or accumulates into) a named counter on this span.
    pub fn add(&self, name: &'static str, value: u64) {
        if let Some(a) = &self.active {
            let mut counters = a.counters.lock();
            match counters.iter_mut().find(|(n, _)| *n == name) {
                Some(slot) => slot.1 += value,
                None => counters.push((name, value)),
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let dur_us = a.start.elapsed().as_micros() as u64;
        let start_us = a
            .start
            .saturating_duration_since(a.tracer.epoch)
            .as_micros() as u64;
        let record = SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            start_us,
            dur_us,
            thread: current_tid(),
            counters: a.counters.into_inner(),
        };
        a.tracer.records.lock().push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        {
            let root = t.root("query");
            assert!(!root.is_enabled());
            let child = root.child("load");
            child.add("partitions", 3);
        }
        assert!(t.records().is_empty());
        assert!(t.span_tree().is_empty());
    }

    #[test]
    fn spans_nest_and_carry_counters() {
        let t = Tracer::new();
        {
            let root = t.root("query");
            {
                let load = root.child("load");
                load.add("partitions", 2);
                load.add("partitions", 1);
            }
            let _refine = root.child("refine");
        }
        let tree = t.span_tree();
        assert_eq!(tree.len(), 1);
        let root = &tree[0];
        assert_eq!(root.name, "query");
        assert_eq!(root.children.len(), 2);
        let load = root.find("load").unwrap();
        assert_eq!(load.counter("partitions"), Some(3));
        // Children are contained in the parent's interval.
        for c in &root.children {
            assert!(c.start_us >= root.start_us);
            assert!(c.start_us + c.dur_us <= root.start_us + root.dur_us + 1);
        }
    }

    #[test]
    fn cross_thread_children_are_attributed() {
        let t = Tracer::new();
        {
            let root = t.root("query");
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let root = &root;
                    scope.spawn(move || {
                        let s = root.child("task");
                        s.add("work", 1);
                    });
                }
            });
        }
        let tree = t.span_tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].children.len(), 3);
        let tids: std::collections::HashSet<u64> =
            tree[0].children.iter().map(|c| c.thread).collect();
        assert!(tids.len() >= 2, "worker spans keep their thread ids");
    }

    #[test]
    fn span_tree_under_isolates_one_query() {
        let t = Tracer::new();
        {
            let _q1 = t.root("query");
        }
        let root_id;
        {
            let q2 = t.root("query");
            root_id = q2.id().unwrap();
            let _load = q2.child("load");
        }
        assert_eq!(t.span_tree().len(), 2, "two roots in the full forest");
        let sub = t.span_tree_under(root_id);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub[0].children.len(), 1);
        assert_eq!(sub[0].children[0].name, "load");
        assert!(t.span_tree_under(999).is_empty());
    }

    #[test]
    fn aggregates_merge_by_name() {
        let t = Tracer::new();
        for _ in 0..4 {
            let _s = t.root("route");
        }
        {
            let _s = t.root("load");
        }
        let aggs = t.aggregates();
        assert_eq!(aggs.len(), 2);
        let route = aggs.iter().find(|a| a.name == "route").unwrap();
        assert_eq!(route.count, 4);
    }

    #[test]
    fn records_sorted_by_start() {
        let t = Tracer::new();
        {
            let a = t.root("a");
            let _b = a.child("b");
        }
        let records = t.records();
        assert_eq!(records.len(), 2);
        assert!(records[0].start_us <= records[1].start_us);
    }
}
