#![warn(missing_docs)]

//! Query-path observability for the TARDIS reproduction.
//!
//! The paper's evaluation (§VI, Figures 13–16) hinges on per-stage
//! accounting — partitions loaded, candidates refined, per-stage build
//! time — and distributed similarity search more generally lives or dies
//! on per-node work accounting. This crate provides the measurement
//! substrate:
//!
//! * [`Tracer`] / [`Span`] — hierarchical wall-clock spans with counter
//!   attachment. Spans are created explicitly from a parent (no
//!   thread-local magic), so worker-pool tasks can open children of a
//!   query span from any thread; each record carries the thread that
//!   produced it.
//! * [`QueryProfile`] — the per-query work summary every query path
//!   returns alongside its answer: partitions loaded, candidates
//!   pruned / refined / abandoned, and the span tree.
//! * [`export`] — a chrome-trace JSON exporter (loadable in
//!   `about:tracing` / Perfetto) and a Prometheus text renderer that the
//!   cluster merges with its [`MetricsSnapshot`]-style counters.
//! * [`peak`] — an opt-in peak-heap tracking global allocator
//!   ([`PeakAlloc`]) that proves the bounded-memory build's flat-memory
//!   claim; exporters surface it as the `tardis_build_peak_bytes` gauge.
//!
//! **Overhead contract:** a disabled tracer ([`Tracer::disabled`], the
//! default for library users) must cost *one branch and no allocation*
//! per span operation. [`Span::noop`], `Tracer::disabled().root(..)`,
//! `child(..)`, and `add(..)` on a disabled span never allocate and
//! never read the clock; `crates/obs/tests/no_alloc.rs` pins this with a
//! counting global allocator.

pub mod export;
pub mod peak;
pub mod profile;
pub mod span;

pub use export::{chrome_trace_json, PromText};
pub use peak::PeakAlloc;
pub use profile::{BatchProfile, QueryProfile};
pub use span::{Span, SpanAggregate, SpanNode, SpanRecord, Tracer};
