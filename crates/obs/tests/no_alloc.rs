//! Pins the overhead contract: with tracing disabled, span operations
//! allocate nothing.
//!
//! This file must hold exactly one test — the default test harness runs
//! tests on multiple threads, and a sibling test's allocations would
//! pollute the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_allocate_nothing() {
    let tracer = tardis_obs::Tracer::disabled();
    // Warm up thread-local state outside the measured window.
    {
        let warm = tracer.root("warm");
        let _ = warm.child("warm-child");
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        let root = tracer.root("query");
        let route = root.child("route");
        route.add("partitions", 1);
        let load = root.child("load");
        load.add("bytes", 4096);
        drop(load);
        drop(route);
        drop(root);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled span path must not allocate (contract in crate docs)"
    );
}
