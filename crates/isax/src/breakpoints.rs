//! SAX breakpoints: nested Gaussian quantiles.
//!
//! SAX divides the value space of a z-normalized series into `c` horizontal
//! stripes of equal probability under N(0,1) (§II-B). The breakpoints for
//! cardinality `2^b` are the quantiles `Φ⁻¹(i / 2^b)` for `i = 1..2^b-1`.
//!
//! Because `Φ⁻¹(i / 2^(b-1)) = Φ⁻¹(2i / 2^b)`, the breakpoint sets for
//! powers of two are *nested*: the table for `b-1` bits is every other entry
//! of the table for `b` bits. This nesting is exactly what makes iSAX
//! cardinality reduction a bit-shift on bucket indices — and iSAX-T
//! reduction a string drop-right.

use std::sync::OnceLock;

/// Maximum supported cardinality bits. `2^9 = 512` is the baseline's
/// default initial cardinality (Table II), the largest any component needs.
pub const MAX_CARD_BITS: u8 = 9;

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// Peter Acklam's rational approximation polished by one Halley step
/// against a double-precision normal CDF (Hart 1968); absolute error is
/// below ~1e-13 over `(0, 1)`, far tighter than the f32 storage of the
/// series themselves.
///
/// Returns `-inf` for `p <= 0` and `+inf` for `p >= 1`.
pub fn inv_normal_cdf(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }

    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail (by symmetry).
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step against the double-precision CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Standard normal lower-tail CDF, Hart (1968) rational approximation as
/// popularized by West; accurate to ~1e-15 in double precision.
fn normal_cdf(x: f64) -> f64 {
    let xabs = x.abs();
    let tail = if xabs > 37.0 {
        0.0
    } else {
        let expo = (-xabs * xabs / 2.0).exp();
        if xabs < 7.071_067_811_865_47 {
            let num = (((((3.526_249_659_989_11e-2 * xabs + 0.700_383_064_443_688) * xabs
                + 6.373_962_203_531_65)
                * xabs
                + 33.912_866_078_383)
                * xabs
                + 112.079_291_497_871)
                * xabs
                + 221.213_596_169_931)
                * xabs
                + 220.206_867_912_376;
            let den = ((((((8.838_834_764_831_84e-2 * xabs + 1.755_667_163_182_64) * xabs
                + 16.064_177_579_207)
                * xabs
                + 86.780_732_202_946_1)
                * xabs
                + 296.564_248_779_674)
                * xabs
                + 637.333_633_378_831)
                * xabs
                + 793.826_512_519_948)
                * xabs
                + 440.413_735_824_752;
            expo * num / den
        } else {
            let b = xabs + 0.65;
            let b = xabs + 4.0 / b;
            let b = xabs + 3.0 / b;
            let b = xabs + 2.0 / b;
            let b = xabs + 1.0 / b;
            expo / b / 2.506_628_274_631
        }
    };
    if x > 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// The master breakpoint table at [`MAX_CARD_BITS`]: `2^MAX - 1` sorted
/// quantiles. Lower-cardinality tables are strided views into this one so
/// that nesting is bit-exact.
fn master_table() -> &'static [f64] {
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let c = 1usize << MAX_CARD_BITS;
        (1..c).map(|i| inv_normal_cdf(i as f64 / c as f64)).collect()
    })
}

/// Breakpoints for cardinality `2^bits`, as an iterator of `2^bits - 1`
/// ascending values taken from the master table.
///
/// # Panics
/// Panics if `bits` is 0 or exceeds [`MAX_CARD_BITS`].
pub fn breakpoints(bits: u8) -> impl Iterator<Item = f64> + Clone + 'static {
    assert!(
        (1..=MAX_CARD_BITS).contains(&bits),
        "cardinality bits {bits} out of range 1..={MAX_CARD_BITS}"
    );
    let stride = 1usize << (MAX_CARD_BITS - bits);
    master_table().iter().copied().skip(stride - 1).step_by(stride)
}

/// The `i`-th breakpoint (0-based) at cardinality `2^bits`.
///
/// # Panics
/// Panics if `bits` is out of range or `i >= 2^bits - 1`.
#[inline]
pub fn breakpoint_at(bits: u8, i: usize) -> f64 {
    assert!(
        (1..=MAX_CARD_BITS).contains(&bits),
        "cardinality bits {bits} out of range 1..={MAX_CARD_BITS}"
    );
    assert!(i < (1usize << bits) - 1, "breakpoint index {i} out of range");
    let stride = 1usize << (MAX_CARD_BITS - bits);
    master_table()[stride * (i + 1) - 1]
}

/// Maps a (z-normalized) value to its SAX bucket at cardinality `2^bits`.
///
/// Buckets are numbered bottom-up: bucket 0 is `(-inf, β₁)` and bucket
/// `2^bits - 1` is `[β_last, +inf)`. Stripes are half-open `[lo, hi)` as in
/// Figure 1(c) of the paper, so a value exactly on a breakpoint belongs to
/// the stripe above it.
///
/// The nesting property guarantees `bucket_of(v, b-1) == bucket_of(v, b) >> 1`.
#[inline]
pub fn bucket_of(value: f64, bits: u8) -> u16 {
    assert!(
        (1..=MAX_CARD_BITS).contains(&bits),
        "cardinality bits {bits} out of range 1..={MAX_CARD_BITS}"
    );
    // Binary search in the max-cardinality table, then shift down: one
    // search serves every cardinality.
    let table = master_table();
    let max_bucket = table.partition_point(|&b| b <= value) as u16;
    max_bucket >> (MAX_CARD_BITS - bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn inv_cdf_median_is_zero() {
        assert_close(inv_normal_cdf(0.5), 0.0, 1e-12);
    }

    #[test]
    fn inv_cdf_known_quantiles() {
        // Classic SAX cardinality-4 breakpoints: ±0.6745, 0.
        assert_close(inv_normal_cdf(0.25), -0.6744897501960817, 1e-9);
        assert_close(inv_normal_cdf(0.75), 0.6744897501960817, 1e-9);
        // Cardinality-8 outer breakpoints: ±1.1503.
        assert_close(inv_normal_cdf(0.125), -1.1503493803760079, 1e-9);
        // 97.5% quantile — the 1.96 of confidence-interval fame.
        assert_close(inv_normal_cdf(0.975), 1.959963984540054, 1e-9);
    }

    #[test]
    fn inv_cdf_symmetry() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.49] {
            assert_close(inv_normal_cdf(p), -inv_normal_cdf(1.0 - p), 1e-11);
        }
    }

    #[test]
    fn inv_cdf_edges() {
        assert_eq!(inv_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_normal_cdf(1.0), f64::INFINITY);
        assert_eq!(inv_normal_cdf(-0.5), f64::NEG_INFINITY);
    }

    #[test]
    fn inv_cdf_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let x = inv_normal_cdf(i as f64 / 1000.0);
            assert!(x > prev, "not monotone at i={i}");
            prev = x;
        }
    }

    #[test]
    fn breakpoints_counts() {
        for bits in 1..=MAX_CARD_BITS {
            assert_eq!(breakpoints(bits).count(), (1 << bits) - 1, "bits={bits}");
        }
    }

    #[test]
    fn breakpoints_sorted() {
        for bits in 1..=MAX_CARD_BITS {
            let bp: Vec<f64> = breakpoints(bits).collect();
            for w in bp.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn breakpoints_are_nested() {
        for bits in 2..=MAX_CARD_BITS {
            let hi: Vec<f64> = breakpoints(bits).collect();
            let lo: Vec<f64> = breakpoints(bits - 1).collect();
            for (j, &b) in lo.iter().enumerate() {
                // lo[j] must be hi[2j+1] (bit-exact: same master entries).
                assert_eq!(b, hi[2 * j + 1], "bits={bits} j={j}");
            }
        }
    }

    #[test]
    fn breakpoint_at_matches_iterator() {
        for bits in [1u8, 3, 6, 9] {
            let all: Vec<f64> = breakpoints(bits).collect();
            for (i, &b) in all.iter().enumerate() {
                assert_eq!(breakpoint_at(bits, i), b);
            }
        }
    }

    #[test]
    fn card2_breakpoint_is_zero() {
        let bp: Vec<f64> = breakpoints(1).collect();
        assert_eq!(bp.len(), 1);
        assert_close(bp[0], 0.0, 1e-12);
    }

    #[test]
    fn bucket_of_basics() {
        // 1 bit: negative → 0, non-negative → 1 (half-open [0, inf)).
        assert_eq!(bucket_of(-0.5, 1), 0);
        assert_eq!(bucket_of(0.0, 1), 1);
        assert_eq!(bucket_of(0.5, 1), 1);
        // 2 bits: boundaries at ~-0.674, 0, 0.674.
        assert_eq!(bucket_of(-1.0, 2), 0);
        assert_eq!(bucket_of(-0.3, 2), 1);
        assert_eq!(bucket_of(0.3, 2), 2);
        assert_eq!(bucket_of(1.0, 2), 3);
    }

    #[test]
    fn bucket_on_breakpoint_goes_up() {
        let b = breakpoint_at(2, 2); // ~0.6745
        assert_eq!(bucket_of(b, 2), 3);
        assert_eq!(bucket_of(b - 1e-9, 2), 2);
    }

    #[test]
    fn bucket_nesting_property() {
        let values = [-3.0, -1.2, -0.674, -0.1, 0.0, 0.1, 0.674, 1.2, 3.0, 0.33];
        for &v in &values {
            for bits in 2..=MAX_CARD_BITS {
                assert_eq!(
                    bucket_of(v, bits - 1),
                    bucket_of(v, bits) >> 1,
                    "v={v} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn buckets_cover_full_range() {
        assert_eq!(bucket_of(f64::NEG_INFINITY, 9), 0);
        assert_eq!(bucket_of(f64::INFINITY, 9), 511);
        assert_eq!(bucket_of(-100.0, 9), 0);
        assert_eq!(bucket_of(100.0, 9), 511);
    }

    #[test]
    fn buckets_are_equiprobable_under_normal() {
        // Sample the inverse CDF uniformly; each bucket should receive an
        // equal share of quantile positions.
        let bits = 3;
        let c = 1usize << bits;
        let mut counts = vec![0usize; c];
        let n = 8000;
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            counts[bucket_of(inv_normal_cdf(p), bits) as usize] += 1;
        }
        for &cnt in &counts {
            assert_eq!(cnt, n / c);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_of_rejects_zero_bits() {
        bucket_of(0.0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn breakpoints_reject_excess_bits() {
        let _ = breakpoints(MAX_CARD_BITS + 1);
    }
}
