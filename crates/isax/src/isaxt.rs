//! iSAX-Transposition (iSAX-T) signatures — the paper's new word-level
//! signature scheme (§III-A, Figure 4).
//!
//! A uniform-cardinality SAX word of `w` segments × `b` bits forms a `w×b`
//! bit matrix (one row per segment, MSB-first columns). iSAX-T *transposes*
//! it into `b` bit-planes of `w` bits each and packs every plane into
//! `w/4` hex nibbles. The signature string is the concatenation of planes,
//! most-significant plane first.
//!
//! Because all segments of a word share one cardinality (word-level
//! cardinality), reducing cardinality from `2^hc` to `2^lc` is a string
//! drop-right of `(log₂hc − log₂lc)·w/4` letters (Equation 2) — no
//! per-character masking.

use crate::error::IsaxError;
use crate::sax::SaxWord;
use std::fmt;

/// Hexadecimal alphabet used by [`SigT::to_hex`]/[`fmt::Display`].
const HEX: &[u8; 16] = b"0123456789ABCDEF";

/// An iSAX-T signature: hex nibbles of the transposed bit matrix.
///
/// `nibbles[k]` holds 4 consecutive segments of one bit-plane; plane `j`
/// (0-based from the most significant bit) occupies nibbles
/// `j·w/4 .. (j+1)·w/4`. Within a nibble, the earlier segment is the more
/// significant bit, so the hex string reads exactly as in Figure 4.
///
/// ```
/// use tardis_isax::{SaxWord, SigT};
///
/// // The paper's Figure 4 example: SAX(T,4,16) = [1100, 1101, 0110, 0001].
/// let word = SaxWord::from_buckets(vec![0b1100, 0b1101, 0b0110, 0b0001], 4).unwrap();
/// let sig = SigT::from_sax(&word);
/// assert_eq!(sig.to_hex(), "CE25");
///
/// // Cardinality reduction is a string drop-right (Equation 2).
/// assert_eq!(sig.drop_right(2).unwrap().to_hex(), "CE");
/// assert_eq!(sig.drop_right(1).unwrap().to_hex(), "C");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigT {
    nibbles: Vec<u8>,
    w: u16,
}

impl SigT {
    /// Builds a signature from a uniform-cardinality SAX word.
    ///
    /// The resulting signature has `word.bits()` planes.
    pub fn from_sax(word: &SaxWord) -> SigT {
        let w = word.word_len();
        let bits = word.bits();
        let npp = w / 4; // nibbles per plane
        let mut nibbles = vec![0u8; npp * bits as usize];
        for (plane, chunk) in nibbles.chunks_exact_mut(npp).enumerate() {
            let shift = bits as usize - 1 - plane;
            for (k, nib) in chunk.iter_mut().enumerate() {
                let mut v = 0u8;
                for s in 0..4 {
                    let bucket = word.buckets()[k * 4 + s];
                    v = (v << 1) | (((bucket >> shift) & 1) as u8);
                }
                *nib = v;
            }
        }
        SigT {
            nibbles,
            w: w as u16,
        }
    }

    /// Builds a signature directly from raw nibble values.
    ///
    /// # Errors
    /// * [`IsaxError::InvalidWordLength`] for a bad `w`.
    /// * [`IsaxError::InvalidCardinality`] if the nibble count is not a
    ///   multiple of `w/4` (i.e. not a whole number of planes) or exceeds
    ///   the maximum cardinality.
    pub fn from_nibbles(nibbles: Vec<u8>, w: usize) -> Result<SigT, IsaxError> {
        crate::paa::validate_word_len(w)?;
        let npp = w / 4;
        if nibbles.len() % npp != 0 {
            return Err(IsaxError::InvalidCardinality {
                bits: (nibbles.len() / npp) as u8,
            });
        }
        let bits = nibbles.len() / npp;
        if bits == 0 || bits > crate::breakpoints::MAX_CARD_BITS as usize {
            return Err(IsaxError::InvalidCardinality { bits: bits as u8 });
        }
        // This is a parsing entry point (hex strings, persisted images):
        // reject out-of-range nibbles rather than asserting.
        if nibbles.iter().any(|&n| n >= 16) {
            return Err(IsaxError::InvalidCardinality { bits: bits as u8 });
        }
        Ok(SigT {
            nibbles,
            w: w as u16,
        })
    }

    /// Parses a hex string produced by [`Self::to_hex`].
    ///
    /// # Errors
    /// Propagates the nibble-level errors; non-hex characters yield
    /// [`IsaxError::InvalidCardinality`] via a sentinel (rejected before
    /// construction).
    pub fn from_hex(s: &str, w: usize) -> Result<SigT, IsaxError> {
        let mut nibbles = Vec::with_capacity(s.len());
        for c in s.bytes() {
            let v = match c {
                b'0'..=b'9' => c - b'0',
                b'A'..=b'F' => c - b'A' + 10,
                b'a'..=b'f' => c - b'a' + 10,
                _ => return Err(IsaxError::InvalidCardinality { bits: 0 }),
            };
            nibbles.push(v);
        }
        SigT::from_nibbles(nibbles, w)
    }

    /// Word length `w`.
    pub fn word_len(&self) -> usize {
        self.w as usize
    }

    /// Nibbles per bit-plane (`w/4`).
    #[inline]
    pub fn nibbles_per_plane(&self) -> usize {
        (self.w / 4) as usize
    }

    /// Number of cardinality bits (planes) this signature carries.
    #[inline]
    pub fn bits(&self) -> u8 {
        (self.nibbles.len() / self.nibbles_per_plane()) as u8
    }

    /// Raw nibble values (each `< 16`).
    pub fn nibbles(&self) -> &[u8] {
        &self.nibbles
    }

    /// Signature length in letters (nibbles) — the paper's string length.
    pub fn len(&self) -> usize {
        self.nibbles.len()
    }

    /// Whether the signature is empty (zero planes — never produced by
    /// [`Self::from_sax`], but the root of a sigTree uses an empty prefix).
    pub fn is_empty(&self) -> bool {
        self.nibbles.is_empty()
    }

    /// The root signature: zero planes (covers the whole space).
    pub fn root(w: usize) -> Result<SigT, IsaxError> {
        crate::paa::validate_word_len(w)?;
        Ok(SigT {
            nibbles: Vec::new(),
            w: w as u16,
        })
    }

    /// **The drop-right conversion (Equation 2).** Reduces the signature to
    /// `to_bits` cardinality bits by truncating
    /// `(self.bits() − to_bits)·w/4` letters. O(kept length), no
    /// per-character work.
    ///
    /// # Errors
    /// [`IsaxError::CannotPromote`] if `to_bits > self.bits()`.
    pub fn drop_right(&self, to_bits: u8) -> Result<SigT, IsaxError> {
        if to_bits > self.bits() {
            return Err(IsaxError::CannotPromote {
                have: self.bits(),
                want: to_bits,
            });
        }
        Ok(SigT {
            nibbles: self.nibbles[..self.nibbles_per_plane() * to_bits as usize].to_vec(),
            w: self.w,
        })
    }

    /// Borrowed prefix view at `to_bits` planes (no allocation); `None`
    /// when the signature is shallower than requested.
    pub fn prefix_nibbles(&self, to_bits: u8) -> Option<&[u8]> {
        let n = self.nibbles_per_plane() * to_bits as usize;
        self.nibbles.get(..n)
    }

    /// Whether `self` is a prefix of (or equal to) `other` — i.e. `other`
    /// lies in the subtree rooted at `self` in a sigTree.
    pub fn is_prefix_of(&self, other: &SigT) -> bool {
        self.w == other.w
            && other.nibbles.len() >= self.nibbles.len()
            && other.nibbles[..self.nibbles.len()] == self.nibbles[..]
    }

    /// The bit-plane at `layer` (0-based) packed into a `u32` key — the
    /// child-routing key inside a sigTree node. `None` if the signature has
    /// fewer planes.
    pub fn plane_key(&self, layer: u8) -> Option<u32> {
        let npp = self.nibbles_per_plane();
        let start = npp * layer as usize;
        let plane = self.nibbles.get(start..start + npp)?;
        let mut key = 0u32;
        for &n in plane {
            key = (key << 4) | n as u32;
        }
        Some(key)
    }

    /// Extends the signature by one plane given its packed key (inverse of
    /// [`Self::plane_key`]); used when enumerating sigTree children.
    pub fn child(&self, key: u32) -> SigT {
        let npp = self.nibbles_per_plane();
        let mut nibbles = Vec::with_capacity(self.nibbles.len() + npp);
        nibbles.extend_from_slice(&self.nibbles);
        for i in (0..npp).rev() {
            nibbles.push(((key >> (4 * i)) & 0xF) as u8);
        }
        SigT {
            nibbles,
            w: self.w,
        }
    }

    /// Recovers per-segment bucket indices (the inverse transposition).
    /// Used to evaluate lower-bound distances against a node signature.
    pub fn to_buckets(&self) -> Vec<u16> {
        let mut buckets = Vec::new();
        self.to_buckets_into(&mut buckets);
        buckets
    }

    /// [`Self::to_buckets`] into a caller-owned buffer (cleared first).
    /// Lower-bound scans evaluate a bound per tree node; reusing one
    /// scratch buffer across nodes keeps the walk allocation-free.
    pub fn to_buckets_into(&self, out: &mut Vec<u16>) {
        let w = self.w as usize;
        let bits = self.bits();
        let npp = self.nibbles_per_plane();
        out.clear();
        out.resize(w, 0);
        for plane in 0..bits as usize {
            for (k, &nib) in self.nibbles[plane * npp..(plane + 1) * npp].iter().enumerate() {
                for s in 0..4 {
                    let bit = (nib >> (3 - s)) & 1;
                    out[k * 4 + s] = (out[k * 4 + s] << 1) | bit as u16;
                }
            }
        }
    }

    /// Converts back into a uniform-cardinality SAX word.
    ///
    /// # Panics
    /// Panics if the signature is empty (the root has no word form).
    pub fn to_sax(&self) -> SaxWord {
        assert!(!self.is_empty(), "root signature has no SAX word form");
        SaxWord::from_buckets(self.to_buckets(), self.bits()).expect("valid by construction")
    }

    /// Hex string rendering (`"CE25"` style, Figure 4).
    pub fn to_hex(&self) -> String {
        self.nibbles.iter().map(|&n| HEX[n as usize] as char).collect()
    }

    /// Approximate in-memory footprint in bytes (index-size accounting).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.nibbles.capacity()
    }
}

impl fmt::Display for SigT {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "ε")
        } else {
            f.write_str(&self.to_hex())
        }
    }
}

/// Reference implementation of cardinality reduction *without* the
/// transposition trick: recompute the reduced word character by character
/// (shift each bucket), then re-encode. Semantically identical to
/// [`SigT::drop_right`]; exists for the ablation benchmark that quantifies
/// the iSAX-T claim.
pub fn reduce_naive(word: &SaxWord, to_bits: u8) -> Result<SigT, IsaxError> {
    let reduced = word.reduce(to_bits)?;
    Ok(SigT::from_sax(&reduced))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sax(buckets: Vec<u16>, bits: u8) -> SaxWord {
        SaxWord::from_buckets(buckets, bits).unwrap()
    }

    /// The worked example of Figure 4: SAX(T,4,16) = [1100,1101,0110,0001].
    fn figure4_word() -> SaxWord {
        sax(vec![0b1100, 0b1101, 0b0110, 0b0001], 4)
    }

    #[test]
    fn figure4_signature_is_ce25() {
        let sig = SigT::from_sax(&figure4_word());
        assert_eq!(sig.to_hex(), "CE25");
        assert_eq!(sig.bits(), 4);
        assert_eq!(sig.word_len(), 4);
    }

    #[test]
    fn figure4_drop_right_ladder() {
        // Figure 4(b): C → CE → CE2 → CE25 across cardinalities 2,4,8,16.
        let sig = SigT::from_sax(&figure4_word());
        assert_eq!(sig.drop_right(1).unwrap().to_hex(), "C");
        assert_eq!(sig.drop_right(2).unwrap().to_hex(), "CE");
        assert_eq!(sig.drop_right(3).unwrap().to_hex(), "CE2");
        assert_eq!(sig.drop_right(4).unwrap().to_hex(), "CE25");
    }

    #[test]
    fn drop_right_letter_count_matches_equation2() {
        // Eq. 2: n = (log2 hc − log2 lc) · w/4.
        let word = sax([0b11001; 8].iter().map(|&b| b as u16).collect(), 5);
        let sig = SigT::from_sax(&word);
        for lc_bits in 1..=5u8 {
            let reduced = sig.drop_right(lc_bits).unwrap();
            let dropped = sig.len() - reduced.len();
            assert_eq!(dropped, (5 - lc_bits) as usize * 8 / 4);
        }
    }

    #[test]
    fn drop_right_matches_naive_reduction() {
        let word = sax(vec![0b110, 0b011, 0b101, 0b000, 0b111, 0b100, 0b010, 0b001], 3);
        let sig = SigT::from_sax(&word);
        for bits in 1..=3u8 {
            assert_eq!(
                sig.drop_right(bits).unwrap(),
                reduce_naive(&word, bits).unwrap(),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn drop_right_cannot_promote() {
        let sig = SigT::from_sax(&sax(vec![1, 0, 1, 0], 1));
        assert!(matches!(
            sig.drop_right(2),
            Err(IsaxError::CannotPromote { have: 1, want: 2 })
        ));
    }

    #[test]
    fn to_buckets_roundtrip() {
        let word = figure4_word();
        let sig = SigT::from_sax(&word);
        assert_eq!(sig.to_buckets(), word.buckets());
        assert_eq!(sig.to_sax(), word);
    }

    #[test]
    fn roundtrip_through_hex() {
        let word = sax(vec![0b10110, 0b00101, 0b11111, 0b00000], 5);
        let sig = SigT::from_sax(&word);
        let parsed = SigT::from_hex(&sig.to_hex(), 4).unwrap();
        assert_eq!(parsed, sig);
        assert_eq!(parsed.to_sax(), word);
    }

    #[test]
    fn from_hex_rejects_garbage() {
        assert!(SigT::from_hex("XY", 4).is_err());
    }

    #[test]
    fn from_nibbles_rejects_partial_planes() {
        // w=8 → 2 nibbles per plane; 3 nibbles is not a whole plane count.
        assert!(SigT::from_nibbles(vec![1, 2, 3], 8).is_err());
    }

    #[test]
    fn from_nibbles_rejects_excess_planes() {
        let nibbles = vec![0u8; 10]; // w=4 → 10 planes > MAX_CARD_BITS = 9.
        assert!(SigT::from_nibbles(nibbles, 4).is_err());
    }

    #[test]
    fn prefix_relation() {
        let word = figure4_word();
        let sig = SigT::from_sax(&word);
        let p = sig.drop_right(2).unwrap();
        assert!(p.is_prefix_of(&sig));
        assert!(!sig.is_prefix_of(&p));
        assert!(sig.is_prefix_of(&sig));
        let root = SigT::root(4).unwrap();
        assert!(root.is_prefix_of(&sig));
    }

    #[test]
    fn prefix_requires_same_word_len() {
        let a = SigT::from_sax(&sax(vec![1, 0, 1, 0], 1));
        let b = SigT::from_sax(&sax(vec![1, 0, 1, 0, 1, 0, 1, 0], 1));
        assert!(!a.is_prefix_of(&b));
    }

    #[test]
    fn plane_key_and_child_roundtrip() {
        let word = sax(vec![0b10, 0b01, 0b11, 0b00, 0b11, 0b10, 0b00, 0b01], 2);
        let sig = SigT::from_sax(&word);
        let root = SigT::root(8).unwrap();
        let k0 = sig.plane_key(0).unwrap();
        let k1 = sig.plane_key(1).unwrap();
        assert!(sig.plane_key(2).is_none());
        let rebuilt = root.child(k0).child(k1);
        assert_eq!(rebuilt, sig);
    }

    #[test]
    fn plane_key_packs_msb_first() {
        // w=8, plane of bits 1,0,1,1,0,0,1,0 → nibbles 0b1011, 0b0010 →
        // key 0xB2.
        let word = sax(vec![1, 0, 1, 1, 0, 0, 1, 0], 1);
        let sig = SigT::from_sax(&word);
        assert_eq!(sig.plane_key(0), Some(0xB2));
        assert_eq!(sig.to_hex(), "B2");
    }

    #[test]
    fn example3_walkthrough() {
        // Example 3: T = [0110₄, 0011₄, 1011₄, …] converts to "1473…".
        // The paper's example uses w=3 which cannot hex-pack; reproduce the
        // per-plane packing semantics with w=4 by appending a 0 segment:
        // planes of [0110, 0011, 1011, 0000]:
        //   plane0: 0,0,1,0 → 2 ... checks transposition order instead.
        let word = sax(vec![0b0110, 0b0011, 0b1011, 0b0000], 4);
        let sig = SigT::from_sax(&word);
        // plane0 (MSBs): 0,0,1,0 → 0b0010 = 2
        // plane1: 1,0,0,0 → 8; plane2: 1,1,1,0 → E; plane3: 0,1,1,0 → 6
        assert_eq!(sig.to_hex(), "28E6");
        // Matching an internal node at 1-bit cardinality = first plane.
        assert_eq!(sig.drop_right(1).unwrap().to_hex(), "2");
    }

    #[test]
    fn root_is_empty_and_displays_epsilon() {
        let root = SigT::root(8).unwrap();
        assert!(root.is_empty());
        assert_eq!(root.bits(), 0);
        assert_eq!(root.to_string(), "ε");
    }

    #[test]
    fn display_is_hex() {
        let sig = SigT::from_sax(&figure4_word());
        assert_eq!(sig.to_string(), "CE25");
    }

    #[test]
    fn w8_two_letters_per_plane() {
        // §IV (Fig. 7 caption): word length 8 → 2 letters per bit of
        // cardinality.
        let word = sax(vec![1, 1, 0, 0, 1, 0, 1, 0], 1);
        let sig = SigT::from_sax(&word);
        assert_eq!(sig.len(), 2);
        assert_eq!(sig.to_hex(), "CA");
    }
}
