//! Lower-bounding distances (MINDIST).
//!
//! SAX's defining property (§II-B) is that distances computed from stripe
//! boundaries lower-bound the true Euclidean distance. All functions here
//! return values guaranteed `≤ ED(X, Y)` for any series X, Y with the given
//! representations; property tests in this crate verify the guarantee.
//!
//! The scaling follows Keogh's PAA bound: for word length `w` over series
//! length `n`, `MINDIST = sqrt(n/w) · sqrt(Σᵢ dᵢ²)` where `dᵢ` is a
//! per-segment region distance.

use crate::error::IsaxError;
use crate::isax::ISaxWord;
use crate::isaxt::SigT;
use crate::region::Region;
use crate::sax::SaxWord;

/// Scales the per-segment squared sum into the final lower bound.
#[inline]
fn scale(sum_sq: f64, n: usize, w: usize) -> f64 {
    ((n as f64 / w as f64) * sum_sq).sqrt()
}

/// MINDIST between two uniform-cardinality SAX words over series of length
/// `n`. Words may have different cardinalities (region gaps handle it).
///
/// # Errors
/// [`IsaxError::WordLengthMismatch`] when the word lengths differ.
pub fn mindist_sax(a: &SaxWord, b: &SaxWord, n: usize) -> Result<f64, IsaxError> {
    if a.word_len() != b.word_len() {
        return Err(IsaxError::WordLengthMismatch {
            left: a.word_len(),
            right: b.word_len(),
        });
    }
    let sum_sq: f64 = a
        .buckets()
        .iter()
        .zip(b.buckets())
        .map(|(&ba, &bb)| {
            let d = Region::of_bucket(ba, a.bits()).dist(&Region::of_bucket(bb, b.bits()));
            d * d
        })
        .sum();
    Ok(scale(sum_sq, n, a.word_len()))
}

/// MINDIST between a raw query (via its PAA) and a SAX word — the tighter
/// bound used "since the query time series is provided" (§V-B).
///
/// # Errors
/// [`IsaxError::WordLengthMismatch`] when lengths differ.
pub fn mindist_paa_sax(paa: &[f64], word: &SaxWord, n: usize) -> Result<f64, IsaxError> {
    if paa.len() != word.word_len() {
        return Err(IsaxError::WordLengthMismatch {
            left: paa.len(),
            right: word.word_len(),
        });
    }
    let sum_sq: f64 = paa
        .iter()
        .zip(word.buckets())
        .map(|(&m, &b)| {
            let d = Region::of_bucket(b, word.bits()).dist_point(m);
            d * d
        })
        .sum();
    Ok(scale(sum_sq, n, paa.len()))
}

/// MINDIST between a query PAA and a character-level iSAX word (per-segment
/// variable cardinality) — the baseline's pruning bound.
///
/// # Errors
/// [`IsaxError::WordLengthMismatch`] when lengths differ.
pub fn mindist_paa_isax(paa: &[f64], word: &ISaxWord, n: usize) -> Result<f64, IsaxError> {
    if paa.len() != word.word_len() {
        return Err(IsaxError::WordLengthMismatch {
            left: paa.len(),
            right: word.word_len(),
        });
    }
    let sum_sq: f64 = paa
        .iter()
        .zip(word.regions())
        .map(|(&m, r)| {
            let d = r.dist_point(m);
            d * d
        })
        .sum();
    Ok(scale(sum_sq, n, paa.len()))
}

/// MINDIST between a query PAA and an iSAX-T signature (a sigTree node) —
/// TARDIS's pruning bound. The signature's word-level cardinality applies
/// to every segment.
///
/// The root signature (zero planes) covers the whole space, so its bound
/// is 0.
///
/// # Errors
/// [`IsaxError::WordLengthMismatch`] when lengths differ.
pub fn mindist_paa_sigt(paa: &[f64], sig: &SigT, n: usize) -> Result<f64, IsaxError> {
    let mut scratch = Vec::new();
    mindist_paa_sigt_scratch(paa, sig, n, &mut scratch)
}

/// [`mindist_paa_sigt`] with a caller-owned bucket scratch buffer.
///
/// Pruning scans evaluate this bound once per tree node; threading one
/// scratch buffer through the walk makes the whole scan allocation-free
/// (the per-call `to_buckets` vector dominated the bound's cost).
///
/// # Errors
/// [`IsaxError::WordLengthMismatch`] when lengths differ.
pub fn mindist_paa_sigt_scratch(
    paa: &[f64],
    sig: &SigT,
    n: usize,
    scratch: &mut Vec<u16>,
) -> Result<f64, IsaxError> {
    if paa.len() != sig.word_len() {
        return Err(IsaxError::WordLengthMismatch {
            left: paa.len(),
            right: sig.word_len(),
        });
    }
    if sig.is_empty() {
        return Ok(0.0);
    }
    let bits = sig.bits();
    sig.to_buckets_into(scratch);
    let sum_sq: f64 = paa
        .iter()
        .zip(scratch.iter())
        .map(|(&m, &b)| {
            let d = Region::of_bucket(b, bits).dist_point(m);
            d * d
        })
        .sum();
    Ok(scale(sum_sq, n, paa.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paa::paa;

    fn norm(values: &mut [f32]) {
        tardis_ts::z_normalize_in_place(values);
    }

    fn series(seed: u64, n: usize) -> Vec<f32> {
        // Cheap deterministic pseudo-random walk.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let step = ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            acc += step;
            v.push(acc);
        }
        norm(&mut v);
        v
    }

    #[test]
    fn identical_words_have_zero_mindist() {
        let v = series(1, 64);
        let w = SaxWord::from_series(&v, 8, 4).unwrap();
        assert_eq!(mindist_sax(&w, &w, 64).unwrap(), 0.0);
    }

    #[test]
    fn sax_mindist_lower_bounds_ed() {
        for (sa, sb) in [(1u64, 2u64), (3, 4), (5, 6), (7, 8)] {
            let a = series(sa, 64);
            let b = series(sb, 64);
            let ed = tardis_ts::squared_euclidean(&a, &b).sqrt();
            for bits in [1u8, 2, 4, 8] {
                let wa = SaxWord::from_series(&a, 8, bits).unwrap();
                let wb = SaxWord::from_series(&b, 8, bits).unwrap();
                let md = mindist_sax(&wa, &wb, 64).unwrap();
                assert!(md <= ed + 1e-9, "bits={bits}: {md} > {ed}");
            }
        }
    }

    #[test]
    fn paa_sax_bound_tighter_than_sax_sax() {
        let a = series(11, 64);
        let b = series(12, 64);
        let pa = paa(&a, 8).unwrap();
        let wa = SaxWord::from_series(&a, 8, 3).unwrap();
        let wb = SaxWord::from_series(&b, 8, 3).unwrap();
        let loose = mindist_sax(&wa, &wb, 64).unwrap();
        let tight = mindist_paa_sax(&pa, &wb, 64).unwrap();
        let ed = tardis_ts::squared_euclidean(&a, &b).sqrt();
        assert!(tight + 1e-12 >= loose, "{tight} < {loose}");
        assert!(tight <= ed + 1e-9);
    }

    #[test]
    fn paa_sax_zero_when_paa_inside_regions() {
        let a = series(21, 64);
        let pa = paa(&a, 8).unwrap();
        let wa = SaxWord::from_paa(&pa, 5).unwrap();
        // The query's own word contains each PAA value in its region.
        assert_eq!(mindist_paa_sax(&pa, &wa, 64).unwrap(), 0.0);
    }

    #[test]
    fn isax_bound_lower_bounds_ed_mixed_cardinalities() {
        let a = series(31, 64);
        let b = series(32, 64);
        let pa = paa(&a, 8).unwrap();
        let ed = tardis_ts::squared_euclidean(&a, &b).sqrt();
        let wb = SaxWord::from_series(&b, 8, 6).unwrap();
        // Build an iSAX word with irregular per-character bits.
        let mut word = ISaxWord::from_sax(&wb, 1).unwrap();
        // Promote a few characters along b's own path.
        for seg in [0usize, 2, 5] {
            let bit = word.branch_bit(seg, &wb);
            word = word.promoted(seg, bit);
        }
        let md = mindist_paa_isax(&pa, &word, 64).unwrap();
        assert!(md <= ed + 1e-9, "{md} > {ed}");
    }

    #[test]
    fn sigt_bound_matches_sax_form() {
        let a = series(41, 64);
        let b = series(42, 64);
        let pa = paa(&a, 8).unwrap();
        let wb = SaxWord::from_series(&b, 8, 4).unwrap();
        let sig = SigT::from_sax(&wb);
        let via_sax = mindist_paa_sax(&pa, &wb, 64).unwrap();
        let via_sig = mindist_paa_sigt(&pa, &sig, 64).unwrap();
        assert!((via_sax - via_sig).abs() < 1e-12);
    }

    #[test]
    fn sigt_bound_monotone_in_depth() {
        // Deeper (higher-cardinality) prefixes give tighter (larger) bounds.
        let a = series(51, 64);
        let b = series(52, 64);
        let pa = paa(&a, 8).unwrap();
        let sig = SigT::from_sax(&SaxWord::from_series(&b, 8, 6).unwrap());
        let mut prev = 0.0;
        for bits in 1..=6u8 {
            let md = mindist_paa_sigt(&pa, &sig.drop_right(bits).unwrap(), 64).unwrap();
            assert!(md + 1e-12 >= prev, "bits={bits}: {md} < {prev}");
            prev = md;
        }
    }

    #[test]
    fn root_signature_bound_is_zero() {
        let a = series(61, 64);
        let pa = paa(&a, 8).unwrap();
        let root = SigT::root(8).unwrap();
        assert_eq!(mindist_paa_sigt(&pa, &root, 64).unwrap(), 0.0);
    }

    #[test]
    fn word_length_mismatch_errors() {
        let a = series(71, 64);
        let pa8 = paa(&a, 8).unwrap();
        let w4 = SaxWord::from_series(&a, 4, 2).unwrap();
        assert!(mindist_paa_sax(&pa8, &w4, 64).is_err());
        let w8 = SaxWord::from_series(&a, 8, 2).unwrap();
        assert!(mindist_sax(&w8, &w4, 64).is_err());
        let i4 = ISaxWord::from_sax(&w4, 1).unwrap();
        assert!(mindist_paa_isax(&pa8, &i4, 64).is_err());
        let s4 = SigT::from_sax(&w4);
        assert!(mindist_paa_sigt(&pa8, &s4, 64).is_err());
    }

    #[test]
    fn scaling_uses_segment_width() {
        // One segment differs by regions that are far apart; check the
        // sqrt(n/w) factor concretely: n=16, w=4 → factor 2.
        let qa = vec![-3.0f64, 0.5, 0.5, 0.5];
        // Build a word whose first segment is the top region.
        let wb = SaxWord::from_paa(&[3.0, 0.5, 0.5, 0.5], 2).unwrap();
        let md = mindist_paa_sax(&qa, &wb, 16).unwrap();
        let top_lo = crate::breakpoints::breakpoint_at(2, 2);
        let expected = 2.0 * (top_lo - (-3.0));
        assert!((md - expected).abs() < 1e-9, "{md} vs {expected}");
    }
}
