//! Error type for representation operations.

use std::fmt;

/// Errors produced when constructing or converting iSAX representations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaxError {
    /// Word length must be positive, a multiple of 4 (hex packing), at most
    /// 32, and not longer than the series.
    InvalidWordLength {
        /// The offending word length.
        w: usize,
    },
    /// Cardinality bits outside `1..=MAX_CARD_BITS`.
    InvalidCardinality {
        /// The offending bit count.
        bits: u8,
    },
    /// Series shorter than the word length.
    SeriesTooShort {
        /// Series length.
        len: usize,
        /// Word length requested.
        w: usize,
    },
    /// A conversion targeted a higher cardinality than the source holds.
    CannotPromote {
        /// Bits held by the source representation.
        have: u8,
        /// Bits requested.
        want: u8,
    },
    /// Two representations with different word lengths were combined.
    WordLengthMismatch {
        /// Left operand word length.
        left: usize,
        /// Right operand word length.
        right: usize,
    },
}

impl fmt::Display for IsaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaxError::InvalidWordLength { w } => write!(
                f,
                "invalid word length {w}: must be in 4..=32 and a multiple of 4"
            ),
            IsaxError::InvalidCardinality { bits } => write!(
                f,
                "invalid cardinality: 2^{bits} (bits must be 1..={})",
                crate::breakpoints::MAX_CARD_BITS
            ),
            IsaxError::SeriesTooShort { len, w } => {
                write!(f, "series of length {len} shorter than word length {w}")
            }
            IsaxError::CannotPromote { have, want } => {
                write!(f, "cannot promote representation from {have} to {want} bits")
            }
            IsaxError::WordLengthMismatch { left, right } => {
                write!(f, "word length mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for IsaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(IsaxError::InvalidWordLength { w: 5 }
            .to_string()
            .contains("multiple of 4"));
        assert!(IsaxError::InvalidCardinality { bits: 12 }
            .to_string()
            .contains("2^12"));
        assert!(IsaxError::SeriesTooShort { len: 3, w: 8 }
            .to_string()
            .contains("shorter"));
        assert!(IsaxError::CannotPromote { have: 2, want: 5 }
            .to_string()
            .contains("promote"));
        assert!(IsaxError::WordLengthMismatch { left: 4, right: 8 }
            .to_string()
            .contains("mismatch"));
    }
}
