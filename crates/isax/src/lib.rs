#![warn(missing_docs)]

//! iSAX representations for the TARDIS distributed index.
//!
//! This crate implements, from scratch, the full representation stack of the
//! paper (§II-B, §III-A):
//!
//! * [`paa`] — Piecewise Aggregate Approximation.
//! * [`breakpoints`] — nested Gaussian-quantile SAX breakpoints for
//!   cardinalities 2¹..2⁹ (512, the baseline's initial cardinality).
//! * [`sax`] — fixed-cardinality SAX words.
//! * [`isax`] — *character-level* variable-cardinality iSAX words, used by
//!   the DPiSAX/iBT baseline.
//! * [`isaxt`] — *word-level* iSAX-Transposition signatures ([`SigT`]), the
//!   paper's new signature scheme where cardinality reduction is a
//!   drop-right on a hex string (Figure 4 / Equation 2).
//! * [`mindist`] — lower-bounding distances (SAX–SAX, PAA–SAX, PAA–iSAX),
//!   all guaranteed ≤ the true Euclidean distance.

pub mod breakpoints;
pub mod error;
pub mod isax;
pub mod isaxt;
pub mod mindist;
pub mod paa;
pub mod region;
pub mod sax;

pub use breakpoints::{breakpoints, bucket_of, inv_normal_cdf, MAX_CARD_BITS};
pub use error::IsaxError;
pub use isax::{ISaxSym, ISaxWord};
pub use isaxt::SigT;
pub use mindist::{
    mindist_paa_isax, mindist_paa_sax, mindist_paa_sigt, mindist_paa_sigt_scratch, mindist_sax,
};
pub use paa::{paa, paa_into, paa_lanes_into, segment_lengths};
pub use region::Region;
pub use sax::SaxWord;
