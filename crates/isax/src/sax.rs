//! Fixed-cardinality SAX words.

use crate::breakpoints::{bucket_of, MAX_CARD_BITS};
use crate::error::IsaxError;
use crate::paa::{paa, validate_word_len};
use std::fmt;

/// A SAX word: `w` segments, every one discretized at the *same*
/// cardinality `2^bits` (§II-B). This uniform-cardinality representation is
/// the input to both iSAX (character-level, baseline) and iSAX-T
/// (word-level, TARDIS) conversions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SaxWord {
    buckets: Vec<u16>,
    bits: u8,
}

impl SaxWord {
    /// Builds a SAX word directly from bucket indices.
    ///
    /// # Errors
    /// * [`IsaxError::InvalidWordLength`] for a bad segment count.
    /// * [`IsaxError::InvalidCardinality`] for bits outside `1..=MAX`.
    pub fn from_buckets(buckets: Vec<u16>, bits: u8) -> Result<Self, IsaxError> {
        validate_word_len(buckets.len())?;
        if bits == 0 || bits > MAX_CARD_BITS {
            return Err(IsaxError::InvalidCardinality { bits });
        }
        let card = 1u32 << bits;
        debug_assert!(
            buckets.iter().all(|&b| (b as u32) < card),
            "bucket exceeds cardinality"
        );
        Ok(SaxWord { buckets, bits })
    }

    /// SAX(T, w, 2^bits): computes PAA then discretizes each segment.
    ///
    /// The input series is expected to be z-normalized already (this
    /// function does not normalize).
    pub fn from_series(values: &[f32], w: usize, bits: u8) -> Result<Self, IsaxError> {
        if bits == 0 || bits > MAX_CARD_BITS {
            return Err(IsaxError::InvalidCardinality { bits });
        }
        let p = paa(values, w)?;
        Ok(SaxWord {
            buckets: p.iter().map(|&m| bucket_of(m, bits)).collect(),
            bits,
        })
    }

    /// Discretizes an existing PAA vector.
    pub fn from_paa(paa: &[f64], bits: u8) -> Result<Self, IsaxError> {
        validate_word_len(paa.len())?;
        if bits == 0 || bits > MAX_CARD_BITS {
            return Err(IsaxError::InvalidCardinality { bits });
        }
        Ok(SaxWord {
            buckets: paa.iter().map(|&m| bucket_of(m, bits)).collect(),
            bits,
        })
    }

    /// Word length (number of segments).
    pub fn word_len(&self) -> usize {
        self.buckets.len()
    }

    /// Cardinality bits per segment.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Bucket indices per segment.
    pub fn buckets(&self) -> &[u16] {
        &self.buckets
    }

    /// Reduces the word to a lower cardinality by dropping low-order bits
    /// of every bucket (valid because breakpoints nest).
    ///
    /// # Errors
    /// [`IsaxError::CannotPromote`] when `to_bits > self.bits()` and
    /// [`IsaxError::InvalidCardinality`] when `to_bits == 0`.
    pub fn reduce(&self, to_bits: u8) -> Result<SaxWord, IsaxError> {
        if to_bits == 0 {
            return Err(IsaxError::InvalidCardinality { bits: to_bits });
        }
        if to_bits > self.bits {
            return Err(IsaxError::CannotPromote {
                have: self.bits,
                want: to_bits,
            });
        }
        let shift = self.bits - to_bits;
        Ok(SaxWord {
            buckets: self.buckets.iter().map(|&b| b >> shift).collect(),
            bits: to_bits,
        })
    }
}

impl fmt::Display for SaxWord {
    /// Renders as `{b1, b2, …}₂ᵇ` style: bucket list with the cardinality.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b:0width$b}", width = self.bits as usize)?;
        }
        write!(f, "}}@{}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_series_card4_paper_example() {
        // Figure 1(b): PAA(T,4) = [-1.5, -0.4, 0.3, 1.5]. At cardinality 4
        // (breakpoints -0.674, 0, 0.674) the buckets are [0, 1, 2, 3] which
        // is SAX 00, 01, 10, 11 — the paper's Figure 1(c) reading (their
        // label order differs; region membership is what matters).
        let values = [-1.5f32, -0.4, 0.3, 1.5];
        let w = SaxWord::from_series(&values, 4, 2).unwrap();
        assert_eq!(w.buckets(), &[0, 1, 2, 3]);
    }

    #[test]
    fn from_paa_matches_from_series_when_w_equals_n() {
        let values = [-1.5f32, -0.4, 0.3, 1.5];
        let p: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let a = SaxWord::from_series(&values, 4, 3).unwrap();
        let b = SaxWord::from_paa(&p, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reduce_shifts_buckets() {
        let w = SaxWord::from_buckets(vec![0b110, 0b011, 0b111, 0b000], 3).unwrap();
        let r = w.reduce(1).unwrap();
        assert_eq!(r.buckets(), &[1, 0, 1, 0]);
        assert_eq!(r.bits(), 1);
    }

    #[test]
    fn reduce_to_same_is_identity() {
        let w = SaxWord::from_buckets(vec![1, 2, 3, 0], 2).unwrap();
        assert_eq!(w.reduce(2).unwrap(), w);
    }

    #[test]
    fn reduce_cannot_promote() {
        let w = SaxWord::from_buckets(vec![1, 0, 1, 0], 1).unwrap();
        assert_eq!(
            w.reduce(2),
            Err(IsaxError::CannotPromote { have: 1, want: 2 })
        );
    }

    #[test]
    fn reduce_rejects_zero_bits() {
        let w = SaxWord::from_buckets(vec![1, 0, 1, 0], 1).unwrap();
        assert_eq!(w.reduce(0), Err(IsaxError::InvalidCardinality { bits: 0 }));
    }

    #[test]
    fn reduce_equals_direct_conversion() {
        // Reducing a high-cardinality word must equal converting the series
        // directly at the low cardinality (the nesting property end-to-end).
        let values: Vec<f32> = (0..64)
            .map(|i| ((i as f32) * 0.7).sin() * 1.5)
            .collect();
        let hi = SaxWord::from_series(&values, 8, 9).unwrap();
        for bits in 1..=8u8 {
            let direct = SaxWord::from_series(&values, 8, bits).unwrap();
            assert_eq!(hi.reduce(bits).unwrap(), direct, "bits={bits}");
        }
    }

    #[test]
    fn invalid_word_length_rejected() {
        assert!(matches!(
            SaxWord::from_buckets(vec![0, 0, 0], 1),
            Err(IsaxError::InvalidWordLength { w: 3 })
        ));
    }

    #[test]
    fn invalid_cardinality_rejected() {
        assert!(matches!(
            SaxWord::from_buckets(vec![0; 4], 0),
            Err(IsaxError::InvalidCardinality { bits: 0 })
        ));
        assert!(matches!(
            SaxWord::from_buckets(vec![0; 4], 10),
            Err(IsaxError::InvalidCardinality { bits: 10 })
        ));
    }

    #[test]
    fn display_shows_binary() {
        let w = SaxWord::from_buckets(vec![0b10, 0b01, 0b11, 0b00], 2).unwrap();
        assert_eq!(w.to_string(), "{10,01,11,00}@2");
    }
}
