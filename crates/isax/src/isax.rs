//! Character-level variable-cardinality iSAX words — the representation
//! used by the iBT / DPiSAX baseline (§II-B, §II-C).
//!
//! Unlike iSAX-T, every segment (character) of an iSAX word carries its own
//! cardinality: `[0₁, 11₂, 0₁]` uses 1, 2, and 1 bits. Splitting a leaf in
//! the binary iSAX tree promotes exactly one character by one bit. This is
//! the representation whose comparison/matching cost the paper identifies
//! as a bottleneck ("high matching overhead").

use crate::error::IsaxError;
use crate::paa::validate_word_len;
use crate::region::Region;
use crate::sax::SaxWord;
use std::fmt;

/// One character of an iSAX word: a bucket prefix at `bits` cardinality
/// bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ISaxSym {
    /// Bucket index at cardinality `2^bits` (the top `bits` bits of the
    /// full-resolution bucket).
    pub prefix: u16,
    /// Number of cardinality bits used by this character.
    pub bits: u8,
}

impl ISaxSym {
    /// The value-space region covered by this character.
    pub fn region(&self) -> Region {
        Region::of_bucket(self.prefix, self.bits)
    }

    /// Whether a full-resolution bucket (at `full_bits`) falls under this
    /// character's prefix.
    ///
    /// # Panics
    /// Debug-asserts `full_bits >= self.bits`.
    #[inline]
    pub fn covers(&self, full_bucket: u16, full_bits: u8) -> bool {
        debug_assert!(full_bits >= self.bits);
        (full_bucket >> (full_bits - self.bits)) == self.prefix
    }

    /// The two children of this character after a 1-bit promotion.
    pub fn split(&self) -> (ISaxSym, ISaxSym) {
        let bits = self.bits + 1;
        (
            ISaxSym {
                prefix: self.prefix << 1,
                bits,
            },
            ISaxSym {
                prefix: (self.prefix << 1) | 1,
                bits,
            },
        )
    }
}

/// A character-level iSAX word: per-segment variable cardinality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ISaxWord {
    syms: Vec<ISaxSym>,
}

impl ISaxWord {
    /// Builds an iSAX word from characters.
    ///
    /// # Errors
    /// [`IsaxError::InvalidWordLength`] for a bad segment count.
    pub fn new(syms: Vec<ISaxSym>) -> Result<Self, IsaxError> {
        validate_word_len(syms.len())?;
        Ok(ISaxWord { syms })
    }

    /// Converts a uniform-cardinality SAX word into an iSAX word where
    /// every character uses `bits` bits.
    pub fn from_sax(word: &SaxWord, bits: u8) -> Result<Self, IsaxError> {
        if bits > word.bits() {
            return Err(IsaxError::CannotPromote {
                have: word.bits(),
                want: bits,
            });
        }
        let shift = word.bits() - bits;
        Ok(ISaxWord {
            syms: word
                .buckets()
                .iter()
                .map(|&b| ISaxSym {
                    prefix: b >> shift,
                    bits,
                })
                .collect(),
        })
    }

    /// The root-level word: every character at 1 bit.
    pub fn root_level(word: &SaxWord) -> Self {
        ISaxWord::from_sax(word, 1).expect("1 bit always available")
    }

    /// Word length (number of characters).
    pub fn word_len(&self) -> usize {
        self.syms.len()
    }

    /// The characters.
    pub fn syms(&self) -> &[ISaxSym] {
        &self.syms
    }

    /// Sum of per-character bits — the "depth" of this word in an iBT.
    pub fn total_bits(&self) -> u32 {
        self.syms.iter().map(|s| s.bits as u32).sum()
    }

    /// Whether a full-resolution SAX word falls under this iSAX word
    /// (every character covers the corresponding bucket).
    ///
    /// This per-character masking is the baseline's routing primitive; its
    /// cost is what iSAX-T's drop-right replaces.
    pub fn covers(&self, full: &SaxWord) -> Result<bool, IsaxError> {
        if full.word_len() != self.word_len() {
            return Err(IsaxError::WordLengthMismatch {
                left: self.word_len(),
                right: full.word_len(),
            });
        }
        let full_bits = full.bits();
        if self.syms.iter().any(|s| s.bits > full_bits) {
            return Err(IsaxError::CannotPromote {
                have: full_bits,
                want: self.syms.iter().map(|s| s.bits).max().unwrap_or(0),
            });
        }
        Ok(self
            .syms
            .iter()
            .zip(full.buckets())
            .all(|(s, &b)| s.covers(b, full_bits)))
    }

    /// Returns a copy with character `seg` promoted by one bit, taking the
    /// branch indicated by `bit` (0 = lower half, 1 = upper half).
    ///
    /// # Panics
    /// Panics if `seg` is out of range or `bit > 1`.
    pub fn promoted(&self, seg: usize, bit: u8) -> ISaxWord {
        assert!(bit <= 1, "branch bit must be 0 or 1");
        let mut syms = self.syms.clone();
        let s = &mut syms[seg];
        s.prefix = (s.prefix << 1) | bit as u16;
        s.bits += 1;
        ISaxWord { syms }
    }

    /// The branch bit (0 or 1) a full-resolution word takes at character
    /// `seg` when this word is promoted there.
    ///
    /// # Panics
    /// Debug-asserts the full word has enough bits.
    pub fn branch_bit(&self, seg: usize, full: &SaxWord) -> u8 {
        let s = self.syms[seg];
        let full_bits = full.bits();
        debug_assert!(full_bits > s.bits);
        ((full.buckets()[seg] >> (full_bits - s.bits - 1)) & 1) as u8
    }

    /// Per-character regions (for lower-bound distances).
    pub fn regions(&self) -> impl Iterator<Item = Region> + '_ {
        self.syms.iter().map(|s| s.region())
    }

    /// Approximate in-memory footprint in bytes (index-size accounting).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.syms.capacity() * std::mem::size_of::<ISaxSym>()
    }
}

impl fmt::Display for ISaxWord {
    /// Paper-style rendering: `[0₁, 11₂, 0₁]` as `[0@1,11@2,0@1]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.syms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{:0width$b}@{}", s.prefix, s.bits, width = s.bits as usize)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sax(buckets: Vec<u16>, bits: u8) -> SaxWord {
        SaxWord::from_buckets(buckets, bits).unwrap()
    }

    #[test]
    fn from_sax_uniform() {
        let w = sax(vec![0b110, 0b011, 0b101, 0b000], 3);
        let i = ISaxWord::from_sax(&w, 2).unwrap();
        assert_eq!(
            i.syms(),
            &[
                ISaxSym { prefix: 0b11, bits: 2 },
                ISaxSym { prefix: 0b01, bits: 2 },
                ISaxSym { prefix: 0b10, bits: 2 },
                ISaxSym { prefix: 0b00, bits: 2 },
            ]
        );
    }

    #[test]
    fn root_level_is_one_bit() {
        let w = sax(vec![0b110, 0b011, 0b101, 0b000], 3);
        let r = ISaxWord::root_level(&w);
        assert!(r.syms().iter().all(|s| s.bits == 1));
        assert_eq!(
            r.syms().iter().map(|s| s.prefix).collect::<Vec<_>>(),
            vec![1, 0, 1, 0]
        );
    }

    #[test]
    fn covers_accepts_own_extension() {
        let full = sax(vec![0b110, 0b011, 0b101, 0b000], 3);
        let node = ISaxWord::from_sax(&full, 2).unwrap();
        assert!(node.covers(&full).unwrap());
    }

    #[test]
    fn covers_rejects_other_branch() {
        let full = sax(vec![0b110, 0b011, 0b101, 0b000], 3);
        let mut node = ISaxWord::from_sax(&full, 1).unwrap();
        node = node.promoted(0, 0); // full has branch bit 1 at seg 0.
        assert!(!node.covers(&full).unwrap());
    }

    #[test]
    fn covers_mixed_cardinalities() {
        // Paper Figure 2(a): node [0@1, 11@2, 0@1] covers [0xx, 11x, 0xx].
        let node = ISaxWord::new(vec![
            ISaxSym { prefix: 0, bits: 1 },
            ISaxSym { prefix: 0b11, bits: 2 },
            ISaxSym { prefix: 0, bits: 1 },
            ISaxSym { prefix: 1, bits: 1 },
        ])
        .unwrap();
        let inside = sax(vec![0b011, 0b110, 0b001, 0b111], 3);
        let outside = sax(vec![0b011, 0b100, 0b001, 0b111], 3);
        assert!(node.covers(&inside).unwrap());
        assert!(!node.covers(&outside).unwrap());
    }

    #[test]
    fn covers_errors_on_word_length_mismatch() {
        let node = ISaxWord::new(vec![ISaxSym { prefix: 0, bits: 1 }; 8]).unwrap();
        let full = sax(vec![0; 4], 3);
        assert!(matches!(
            node.covers(&full),
            Err(IsaxError::WordLengthMismatch { .. })
        ));
    }

    #[test]
    fn covers_errors_when_node_deeper_than_query() {
        let node = ISaxWord::new(vec![ISaxSym { prefix: 0, bits: 5 }; 4]).unwrap();
        let full = sax(vec![0; 4], 3);
        assert!(matches!(
            node.covers(&full),
            Err(IsaxError::CannotPromote { .. })
        ));
    }

    #[test]
    fn split_produces_siblings() {
        let s = ISaxSym { prefix: 0b10, bits: 2 };
        let (lo, hi) = s.split();
        assert_eq!(lo, ISaxSym { prefix: 0b100, bits: 3 });
        assert_eq!(hi, ISaxSym { prefix: 0b101, bits: 3 });
    }

    #[test]
    fn promoted_adjusts_one_character() {
        let node = ISaxWord::new(vec![ISaxSym { prefix: 0, bits: 1 }; 4]).unwrap();
        let p = node.promoted(2, 1);
        assert_eq!(p.syms()[2], ISaxSym { prefix: 0b01, bits: 2 });
        assert_eq!(p.syms()[0], ISaxSym { prefix: 0, bits: 1 });
        assert_eq!(p.total_bits(), 5);
    }

    #[test]
    fn branch_bit_reads_next_bit() {
        let full = sax(vec![0b110, 0b011, 0b101, 0b000], 3);
        let node = ISaxWord::from_sax(&full, 1).unwrap();
        // Segment 0: bucket 110; after the first bit (1), next bit is 1.
        assert_eq!(node.branch_bit(0, &full), 1);
        // Segment 1: bucket 011; after 0, next bit is 1.
        assert_eq!(node.branch_bit(1, &full), 1);
        // Segment 3: bucket 000; next bit 0.
        assert_eq!(node.branch_bit(3, &full), 0);
    }

    #[test]
    fn display_paper_style() {
        let node = ISaxWord::new(vec![
            ISaxSym { prefix: 0, bits: 1 },
            ISaxSym { prefix: 0b11, bits: 2 },
            ISaxSym { prefix: 0, bits: 1 },
            ISaxSym { prefix: 1, bits: 1 },
        ])
        .unwrap();
        assert_eq!(node.to_string(), "[0@1,11@2,0@1,1@1]");
    }

    #[test]
    fn total_bits_counts_depth() {
        let w = sax(vec![0, 1, 0, 1], 1);
        let node = ISaxWord::root_level(&w);
        assert_eq!(node.total_bits(), 4);
    }
}
