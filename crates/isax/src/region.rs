//! Value-space regions (SAX stripes) and distances between them.

use crate::breakpoints::{breakpoint_at, MAX_CARD_BITS};

/// A half-open stripe `[lo, hi)` of the (z-normalized) value space, where
/// `lo` may be `-inf` and `hi` may be `+inf`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Inclusive lower boundary (possibly `-inf`).
    pub lo: f64,
    /// Exclusive upper boundary (possibly `+inf`).
    pub hi: f64,
}

impl Region {
    /// Region of `bucket` at cardinality `2^bits`.
    ///
    /// # Panics
    /// Panics if `bits` is out of `1..=MAX_CARD_BITS` or the bucket exceeds
    /// the cardinality.
    pub fn of_bucket(bucket: u16, bits: u8) -> Region {
        assert!(
            (1..=MAX_CARD_BITS).contains(&bits),
            "cardinality bits {bits} out of range"
        );
        let card = 1u32 << bits;
        assert!((bucket as u32) < card, "bucket {bucket} out of range for 2^{bits}");
        let lo = if bucket == 0 {
            f64::NEG_INFINITY
        } else {
            breakpoint_at(bits, bucket as usize - 1)
        };
        let hi = if bucket as u32 == card - 1 {
            f64::INFINITY
        } else {
            breakpoint_at(bits, bucket as usize)
        };
        Region { lo, hi }
    }

    /// Whether a value falls inside the region (`lo <= x < hi`).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x < self.hi
    }

    /// Distance from a point to the region (0 if inside).
    pub fn dist_point(&self, x: f64) -> f64 {
        if x < self.lo {
            self.lo - x
        } else if x > self.hi {
            x - self.hi
        } else {
            0.0
        }
    }

    /// Distance between two regions: 0 when they overlap or touch,
    /// otherwise the gap between the nearest boundaries.
    pub fn dist(&self, other: &Region) -> f64 {
        if self.lo > other.hi {
            self.lo - other.hi
        } else if other.lo > self.hi {
            other.lo - self.hi
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakpoints::breakpoint_at;

    #[test]
    fn bucket_regions_tile_the_line() {
        for bits in [1u8, 2, 3] {
            let card = 1u16 << bits;
            let first = Region::of_bucket(0, bits);
            assert_eq!(first.lo, f64::NEG_INFINITY);
            let last = Region::of_bucket(card - 1, bits);
            assert_eq!(last.hi, f64::INFINITY);
            for b in 0..card - 1 {
                let r = Region::of_bucket(b, bits);
                let next = Region::of_bucket(b + 1, bits);
                assert_eq!(r.hi, next.lo, "bits={bits} bucket={b}");
            }
        }
    }

    #[test]
    fn card4_matches_paper_figure() {
        // Figure 1(c): stripe "11" = [0.67, inf), stripe "01" = [-0.67, 0).
        let top = Region::of_bucket(3, 2);
        assert!((top.lo - 0.6744897501960817).abs() < 1e-9);
        assert_eq!(top.hi, f64::INFINITY);
        let second = Region::of_bucket(1, 2);
        assert!((second.lo + 0.6744897501960817).abs() < 1e-9);
        assert!((second.hi - 0.0).abs() < 1e-12);
    }

    #[test]
    fn contains_is_half_open() {
        let r = Region::of_bucket(1, 2); // [-0.674, 0)
        assert!(r.contains(-0.5));
        assert!(r.contains(r.lo));
        assert!(!r.contains(0.0));
    }

    #[test]
    fn dist_point_inside_is_zero() {
        let r = Region::of_bucket(2, 2); // [0, 0.674)
        assert_eq!(r.dist_point(0.3), 0.0);
        assert!(r.dist_point(-0.5) > 0.0);
        assert!(r.dist_point(1.0) > 0.0);
    }

    #[test]
    fn adjacent_regions_have_zero_distance() {
        let a = Region::of_bucket(1, 2);
        let b = Region::of_bucket(2, 2);
        assert_eq!(a.dist(&b), 0.0);
        assert_eq!(b.dist(&a), 0.0);
    }

    #[test]
    fn far_regions_have_breakpoint_gap() {
        let a = Region::of_bucket(0, 2); // (-inf, -0.674)
        let b = Region::of_bucket(3, 2); // [0.674, inf)
        let expected = breakpoint_at(2, 2) - breakpoint_at(2, 0);
        assert!((a.dist(&b) - expected).abs() < 1e-12);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn same_region_zero_distance() {
        let a = Region::of_bucket(1, 3);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn mixed_cardinality_overlap_is_zero() {
        // Bucket 1 of 1 bit is [0, inf); bucket 3 of 2 bits is [0.674, inf):
        // they overlap, so distance 0.
        let wide = Region::of_bucket(1, 1);
        let narrow = Region::of_bucket(3, 2);
        assert_eq!(wide.dist(&narrow), 0.0);
    }

    #[test]
    #[should_panic(expected = "bucket 4 out of range")]
    fn bucket_out_of_range_panics() {
        Region::of_bucket(4, 2);
    }
}
