//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA divides a series into `w` equal-length segments and represents each
//! by its mean (§II-B, Figure 1(b)). For series lengths not divisible by
//! `w`, segment `i` covers indices `[i·n/w, (i+1)·n/w)` (integer division of
//! the products), the standard generalization which reduces to equal-length
//! segments in the divisible case that all paper datasets satisfy
//! (256/8, 128/8, 192/8, 64/8).

use crate::error::IsaxError;

/// Validates a word length: 4..=32 and a multiple of 4 (the hex-nibble
/// packing of iSAX-T signatures requires `w % 4 == 0`; 32 keeps a
/// bit-plane within a `u32` child key).
pub fn validate_word_len(w: usize) -> Result<(), IsaxError> {
    if w == 0 || w > 32 || w % 4 != 0 {
        return Err(IsaxError::InvalidWordLength { w });
    }
    Ok(())
}

/// Computes the PAA of `values` with `w` segments into `out`.
///
/// `out` is cleared and filled with exactly `w` segment means (in `f64`).
///
/// # Errors
/// * [`IsaxError::InvalidWordLength`] if `w` fails [`validate_word_len`].
/// * [`IsaxError::SeriesTooShort`] if the series has fewer than `w` values.
pub fn paa_into(values: &[f32], w: usize, out: &mut Vec<f64>) -> Result<(), IsaxError> {
    validate_word_len(w)?;
    let n = values.len();
    if n < w {
        return Err(IsaxError::SeriesTooShort { len: n, w });
    }
    out.clear();
    out.reserve(w);
    if n % w == 0 {
        // Fast path: equal-length segments.
        let seg = n / w;
        for chunk in values.chunks_exact(seg) {
            let sum: f64 = chunk.iter().map(|&v| v as f64).sum();
            out.push(sum / seg as f64);
        }
    } else {
        for i in 0..w {
            let start = i * n / w;
            let end = (i + 1) * n / w;
            let sum: f64 = values[start..end].iter().map(|&v| v as f64).sum();
            out.push(sum / (end - start) as f64);
        }
    }
    Ok(())
}

/// Computes the PAA of `values` with `w` segments, returning a fresh vector.
///
/// See [`paa_into`] for the error conditions.
pub fn paa(values: &[f32], w: usize) -> Result<Vec<f64>, IsaxError> {
    let mut out = Vec::with_capacity(w);
    paa_into(values, w, &mut out)?;
    Ok(out)
}

/// Computes the PAA of `values` with `w` segments into `out`, summing each
/// segment in 8-lane order: element `8t+j` of the segment accumulates into
/// lane `j`, remainder element `j` into lane `j`, and the lanes fold as
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
///
/// Mathematically these are the same segment means as [`paa_into`] over the
/// same `[i·n/w, (i+1)·n/w)` boundaries, but breaking the sequential-add
/// dependency chain makes bulk sidecar construction (one call per series at
/// every partition load) several times faster. The result can differ from
/// [`paa_into`] in the last bits, so keep [`paa_into`] wherever PAA values
/// feed signature quantization — a signature must not depend on which
/// routine produced its PAA — and use this routine where the values only
/// feed lower bounds, which hold for any faithful rounding of the mean.
///
/// # Errors
/// Same conditions as [`paa_into`]: invalid `w` or `n < w`.
pub fn paa_lanes_into(values: &[f32], w: usize, out: &mut Vec<f64>) -> Result<(), IsaxError> {
    validate_word_len(w)?;
    let n = values.len();
    if n < w {
        return Err(IsaxError::SeriesTooShort { len: n, w });
    }
    out.clear();
    out.reserve(w);
    for i in 0..w {
        let start = i * n / w;
        let end = (i + 1) * n / w;
        out.push(lane_sum(&values[start..end]) / (end - start) as f64);
    }
    Ok(())
}

/// Deterministic 8-lane sum used by [`paa_lanes_into`].
#[inline]
fn lane_sum(seg: &[f32]) -> f64 {
    let mut lanes = [0.0f64; 8];
    let mut chunks = seg.chunks_exact(8);
    for c in &mut chunks {
        for j in 0..8 {
            lanes[j] += c[j] as f64;
        }
    }
    for (j, &v) in chunks.remainder().iter().enumerate() {
        lanes[j] += v as f64;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
}

/// Per-segment lengths `sⱼ` (as `f64`) of the PAA segmentation of an
/// `n`-point series into `w` segments, using the same `[i·n/w, (i+1)·n/w)`
/// boundaries as [`paa_into`]. They sum to `n`.
///
/// These are the weights of the weighted PAA lower bound used by the refine
/// pre-filter: per-segment Cauchy–Schwarz gives `ED²(q, c) ≥ Σⱼ sⱼ·(q̄ⱼ −
/// c̄ⱼ)²`, valid also when `n` is not divisible by `w`.
///
/// # Errors
/// Same conditions as [`paa_into`]: invalid `w` or `n < w`.
pub fn segment_lengths(n: usize, w: usize) -> Result<Vec<f64>, IsaxError> {
    validate_word_len(w)?;
    if n < w {
        return Err(IsaxError::SeriesTooShort { len: n, w });
    }
    Ok((0..w)
        .map(|i| ((i + 1) * n / w - i * n / w) as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paa_of_divisible_series() {
        let v: Vec<f32> = vec![1.0, 3.0, 2.0, 4.0, -1.0, 1.0, 0.0, 0.0];
        let p = paa(&v, 4).unwrap();
        assert_eq!(p, vec![2.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn paa_identity_when_w_equals_n() {
        let v: Vec<f32> = vec![1.0, -2.0, 3.0, 0.5];
        let p = paa(&v, 4).unwrap();
        assert_eq!(p, vec![1.0, -2.0, 3.0, 0.5]);
    }

    #[test]
    fn paa_of_non_divisible_series_covers_everything() {
        // n = 10, w = 4 → segments [0,2) [2,5) [5,7) [7,10).
        let v: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let p = paa(&v, 4).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], 0.5);
        assert_eq!(p[1], 3.0);
        assert_eq!(p[2], 5.5);
        assert_eq!(p[3], 8.0);
    }

    #[test]
    fn paa_mean_preserved_when_divisible() {
        let v: Vec<f32> = (0..64).map(|i| ((i * 7) % 13) as f32).collect();
        let p = paa(&v, 8).unwrap();
        let mean_v: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / 64.0;
        let mean_p: f64 = p.iter().sum::<f64>() / 8.0;
        assert!((mean_v - mean_p).abs() < 1e-9);
    }

    #[test]
    fn paa_rejects_bad_word_lengths() {
        let v = vec![0.0f32; 16];
        assert_eq!(paa(&v, 0), Err(IsaxError::InvalidWordLength { w: 0 }));
        assert_eq!(paa(&v, 5), Err(IsaxError::InvalidWordLength { w: 5 }));
        assert_eq!(paa(&v, 36), Err(IsaxError::InvalidWordLength { w: 36 }));
    }

    #[test]
    fn paa_rejects_short_series() {
        let v = vec![0.0f32; 3];
        assert_eq!(paa(&v, 4), Err(IsaxError::SeriesTooShort { len: 3, w: 4 }));
    }

    #[test]
    fn paa_into_reuses_buffer() {
        let mut buf = vec![99.0; 2];
        paa_into(&[1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0], 4, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn segment_lengths_match_paa_boundaries() {
        // Divisible case: all segments equal.
        assert_eq!(segment_lengths(64, 8).unwrap(), vec![8.0; 8]);
        // Non-divisible: n = 10, w = 4 → [0,2) [2,5) [5,7) [7,10).
        assert_eq!(segment_lengths(10, 4).unwrap(), vec![2.0, 3.0, 2.0, 3.0]);
        // Always sums to n.
        for (n, w) in [(10usize, 4usize), (37, 8), (100, 12), (64, 8)] {
            let s: f64 = segment_lengths(n, w).unwrap().iter().sum();
            assert_eq!(s, n as f64, "n={n} w={w}");
        }
    }

    #[test]
    fn segment_lengths_rejects_bad_inputs() {
        assert_eq!(
            segment_lengths(16, 5),
            Err(IsaxError::InvalidWordLength { w: 5 })
        );
        assert_eq!(
            segment_lengths(3, 4),
            Err(IsaxError::SeriesTooShort { len: 3, w: 4 })
        );
    }

    #[test]
    fn paa_lanes_matches_paa_values() {
        // Same means up to rounding, same errors, on divisible and
        // non-divisible lengths.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        };
        for (n, w) in [(64usize, 8usize), (256, 8), (37, 8), (10, 4), (100, 12)] {
            let v: Vec<f32> = (0..n).map(|_| next()).collect();
            let a = paa(&v, w).unwrap();
            let mut b = Vec::new();
            paa_lanes_into(&v, w, &mut b).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() <= 1e-12 * x.abs().max(1.0), "n={n} w={w}: {x} vs {y}");
            }
        }
        let short = vec![0.0f32; 3];
        let mut out = Vec::new();
        assert_eq!(
            paa_lanes_into(&short, 4, &mut out),
            Err(IsaxError::SeriesTooShort { len: 3, w: 4 })
        );
        assert_eq!(
            paa_lanes_into(&[0.0; 16], 5, &mut out),
            Err(IsaxError::InvalidWordLength { w: 5 })
        );
    }

    #[test]
    fn weighted_paa_bound_is_sound() {
        // ED²(a, b) ≥ Σⱼ sⱼ·(āⱼ − b̄ⱼ)² on arbitrary (incl. non-divisible)
        // lengths — the per-segment Cauchy–Schwarz bound the refine
        // pre-filter relies on.
        let mut x = 0x243F6A8885A308D3u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        };
        for (n, w) in [(64usize, 8usize), (37, 8), (100, 12), (10, 4)] {
            let a: Vec<f32> = (0..n).map(|_| next()).collect();
            let b: Vec<f32> = (0..n).map(|_| next()).collect();
            let ed_sq: f64 = a
                .iter()
                .zip(&b)
                .map(|(&p, &q)| {
                    let d = p as f64 - q as f64;
                    d * d
                })
                .sum();
            let pa = paa(&a, w).unwrap();
            let pb = paa(&b, w).unwrap();
            let s = segment_lengths(n, w).unwrap();
            let bound: f64 = s
                .iter()
                .zip(pa.iter().zip(&pb))
                .map(|(sj, (x, y))| sj * (x - y) * (x - y))
                .sum();
            assert!(
                bound <= ed_sq + 1e-9,
                "n={n} w={w}: bound {bound} > ed² {ed_sq}"
            );
        }
    }
}
