//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA divides a series into `w` equal-length segments and represents each
//! by its mean (§II-B, Figure 1(b)). For series lengths not divisible by
//! `w`, segment `i` covers indices `[i·n/w, (i+1)·n/w)` (integer division of
//! the products), the standard generalization which reduces to equal-length
//! segments in the divisible case that all paper datasets satisfy
//! (256/8, 128/8, 192/8, 64/8).

use crate::error::IsaxError;

/// Validates a word length: 4..=32 and a multiple of 4 (the hex-nibble
/// packing of iSAX-T signatures requires `w % 4 == 0`; 32 keeps a
/// bit-plane within a `u32` child key).
pub fn validate_word_len(w: usize) -> Result<(), IsaxError> {
    if w == 0 || w > 32 || w % 4 != 0 {
        return Err(IsaxError::InvalidWordLength { w });
    }
    Ok(())
}

/// Computes the PAA of `values` with `w` segments into `out`.
///
/// `out` is cleared and filled with exactly `w` segment means (in `f64`).
///
/// # Errors
/// * [`IsaxError::InvalidWordLength`] if `w` fails [`validate_word_len`].
/// * [`IsaxError::SeriesTooShort`] if the series has fewer than `w` values.
pub fn paa_into(values: &[f32], w: usize, out: &mut Vec<f64>) -> Result<(), IsaxError> {
    validate_word_len(w)?;
    let n = values.len();
    if n < w {
        return Err(IsaxError::SeriesTooShort { len: n, w });
    }
    out.clear();
    out.reserve(w);
    if n % w == 0 {
        // Fast path: equal-length segments.
        let seg = n / w;
        for chunk in values.chunks_exact(seg) {
            let sum: f64 = chunk.iter().map(|&v| v as f64).sum();
            out.push(sum / seg as f64);
        }
    } else {
        for i in 0..w {
            let start = i * n / w;
            let end = (i + 1) * n / w;
            let sum: f64 = values[start..end].iter().map(|&v| v as f64).sum();
            out.push(sum / (end - start) as f64);
        }
    }
    Ok(())
}

/// Computes the PAA of `values` with `w` segments, returning a fresh vector.
///
/// See [`paa_into`] for the error conditions.
pub fn paa(values: &[f32], w: usize) -> Result<Vec<f64>, IsaxError> {
    let mut out = Vec::with_capacity(w);
    paa_into(values, w, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paa_of_divisible_series() {
        let v: Vec<f32> = vec![1.0, 3.0, 2.0, 4.0, -1.0, 1.0, 0.0, 0.0];
        let p = paa(&v, 4).unwrap();
        assert_eq!(p, vec![2.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn paa_identity_when_w_equals_n() {
        let v: Vec<f32> = vec![1.0, -2.0, 3.0, 0.5];
        let p = paa(&v, 4).unwrap();
        assert_eq!(p, vec![1.0, -2.0, 3.0, 0.5]);
    }

    #[test]
    fn paa_of_non_divisible_series_covers_everything() {
        // n = 10, w = 4 → segments [0,2) [2,5) [5,7) [7,10).
        let v: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let p = paa(&v, 4).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], 0.5);
        assert_eq!(p[1], 3.0);
        assert_eq!(p[2], 5.5);
        assert_eq!(p[3], 8.0);
    }

    #[test]
    fn paa_mean_preserved_when_divisible() {
        let v: Vec<f32> = (0..64).map(|i| ((i * 7) % 13) as f32).collect();
        let p = paa(&v, 8).unwrap();
        let mean_v: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / 64.0;
        let mean_p: f64 = p.iter().sum::<f64>() / 8.0;
        assert!((mean_v - mean_p).abs() < 1e-9);
    }

    #[test]
    fn paa_rejects_bad_word_lengths() {
        let v = vec![0.0f32; 16];
        assert_eq!(paa(&v, 0), Err(IsaxError::InvalidWordLength { w: 0 }));
        assert_eq!(paa(&v, 5), Err(IsaxError::InvalidWordLength { w: 5 }));
        assert_eq!(paa(&v, 36), Err(IsaxError::InvalidWordLength { w: 36 }));
    }

    #[test]
    fn paa_rejects_short_series() {
        let v = vec![0.0f32; 3];
        assert_eq!(paa(&v, 4), Err(IsaxError::SeriesTooShort { len: 3, w: 4 }));
    }

    #[test]
    fn paa_into_reuses_buffer() {
        let mut buf = vec![99.0; 2];
        paa_into(&[1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0], 4, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
