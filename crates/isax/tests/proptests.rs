//! Property-based tests for the representation stack.
//!
//! These pin down the invariants the paper's correctness rests on:
//! breakpoint nesting, iSAX-T drop-right equivalence, transposition
//! round-trips, and the lower-bound guarantee of every MINDIST variant.

use proptest::prelude::*;
use tardis_isax::{
    breakpoints::bucket_of, isaxt::reduce_naive, mindist_paa_isax, mindist_paa_sax,
    mindist_paa_sigt, mindist_sax, paa, ISaxWord, SaxWord, SigT,
};
use tardis_ts::{squared_euclidean, z_normalize_in_place};

/// Strategy: a z-normalized series of length `n`.
fn znorm_series(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-5.0f32..5.0, n).prop_map(|mut v| {
        z_normalize_in_place(&mut v);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_nesting_holds_everywhere(v in -6.0f64..6.0) {
        for bits in 2..=9u8 {
            prop_assert_eq!(bucket_of(v, bits - 1), bucket_of(v, bits) >> 1);
        }
    }

    #[test]
    fn sax_reduce_commutes_with_conversion(series in znorm_series(64), bits in 1u8..=8) {
        let hi = SaxWord::from_series(&series, 8, 9).unwrap();
        let direct = SaxWord::from_series(&series, 8, bits).unwrap();
        prop_assert_eq!(hi.reduce(bits).unwrap(), direct);
    }

    #[test]
    fn sigt_roundtrips_buckets(series in znorm_series(64), bits in 1u8..=9) {
        let word = SaxWord::from_series(&series, 8, bits).unwrap();
        let sig = SigT::from_sax(&word);
        let buckets = sig.to_buckets();
        prop_assert_eq!(buckets.as_slice(), word.buckets());
        prop_assert_eq!(sig.to_sax(), word);
    }

    #[test]
    fn sigt_hex_roundtrip(series in znorm_series(32), bits in 1u8..=9) {
        let word = SaxWord::from_series(&series, 8, bits).unwrap();
        let sig = SigT::from_sax(&word);
        let parsed = SigT::from_hex(&sig.to_hex(), 8).unwrap();
        prop_assert_eq!(parsed, sig);
    }

    #[test]
    fn drop_right_equals_naive_reduction(series in znorm_series(64), to_bits in 1u8..=6) {
        let word = SaxWord::from_series(&series, 8, 6).unwrap();
        let sig = SigT::from_sax(&word);
        prop_assert_eq!(
            sig.drop_right(to_bits).unwrap(),
            reduce_naive(&word, to_bits).unwrap()
        );
    }

    #[test]
    fn drop_right_is_a_prefix(series in znorm_series(64), to_bits in 1u8..=6) {
        let sig = SigT::from_sax(&SaxWord::from_series(&series, 8, 6).unwrap());
        let reduced = sig.drop_right(to_bits).unwrap();
        prop_assert!(reduced.is_prefix_of(&sig));
        prop_assert!(sig.to_hex().starts_with(&reduced.to_hex()));
    }

    #[test]
    fn mindist_sax_lower_bounds_ed(
        a in znorm_series(64),
        b in znorm_series(64),
        bits in 1u8..=8,
    ) {
        let ed = squared_euclidean(&a, &b).sqrt();
        let wa = SaxWord::from_series(&a, 8, bits).unwrap();
        let wb = SaxWord::from_series(&b, 8, bits).unwrap();
        let md = mindist_sax(&wa, &wb, 64).unwrap();
        prop_assert!(md <= ed + 1e-6, "mindist {} > ed {}", md, ed);
    }

    #[test]
    fn mindist_paa_sax_lower_bounds_ed(
        a in znorm_series(64),
        b in znorm_series(64),
        bits in 1u8..=9,
    ) {
        let ed = squared_euclidean(&a, &b).sqrt();
        let pa = paa(&a, 8).unwrap();
        let wb = SaxWord::from_series(&b, 8, bits).unwrap();
        let md = mindist_paa_sax(&pa, &wb, 64).unwrap();
        prop_assert!(md <= ed + 1e-6, "mindist {} > ed {}", md, ed);
    }

    #[test]
    fn mindist_sigt_lower_bounds_ed_at_every_depth(
        a in znorm_series(64),
        b in znorm_series(64),
    ) {
        let ed = squared_euclidean(&a, &b).sqrt();
        let pa = paa(&a, 8).unwrap();
        let sig = SigT::from_sax(&SaxWord::from_series(&b, 8, 6).unwrap());
        for bits in 1..=6u8 {
            let md = mindist_paa_sigt(&pa, &sig.drop_right(bits).unwrap(), 64).unwrap();
            prop_assert!(md <= ed + 1e-6, "bits {}: mindist {} > ed {}", bits, md, ed);
        }
    }

    #[test]
    fn mindist_isax_lower_bounds_ed_random_promotions(
        a in znorm_series(64),
        b in znorm_series(64),
        promos in prop::collection::vec(0usize..8, 0..12),
    ) {
        let ed = squared_euclidean(&a, &b).sqrt();
        let pa = paa(&a, 8).unwrap();
        let full = SaxWord::from_series(&b, 8, 9).unwrap();
        let mut word = ISaxWord::from_sax(&full, 1).unwrap();
        for seg in promos {
            if word.syms()[seg].bits < 9 {
                let bit = word.branch_bit(seg, &full);
                word = word.promoted(seg, bit);
            }
        }
        // The promoted word still covers b, so it must lower-bound ED(a, b).
        prop_assert!(word.covers(&full).unwrap());
        let md = mindist_paa_isax(&pa, &word, 64).unwrap();
        prop_assert!(md <= ed + 1e-6, "mindist {} > ed {}", md, ed);
    }

    #[test]
    fn paa_lower_bound_property(a in znorm_series(64), b in znorm_series(64)) {
        // sqrt(n/w)·ED(PAA(a), PAA(b)) ≤ ED(a, b) — Keogh's PAA bound,
        // which underlies every MINDIST above.
        let ed = squared_euclidean(&a, &b).sqrt();
        let pa = paa(&a, 8).unwrap();
        let pb = paa(&b, 8).unwrap();
        let sum_sq: f64 = pa.iter().zip(&pb).map(|(x, y)| (x - y) * (x - y)).sum();
        let bound = (64.0f64 / 8.0 * sum_sq).sqrt();
        prop_assert!(bound <= ed + 1e-6, "paa bound {} > ed {}", bound, ed);
    }

    #[test]
    fn plane_key_child_roundtrip(series in znorm_series(64)) {
        let sig = SigT::from_sax(&SaxWord::from_series(&series, 8, 6).unwrap());
        let mut rebuilt = SigT::root(8).unwrap();
        for layer in 0..6u8 {
            rebuilt = rebuilt.child(sig.plane_key(layer).unwrap());
        }
        prop_assert_eq!(rebuilt, sig);
    }

    #[test]
    fn isax_covers_iff_prefix(series in znorm_series(64), bits in 1u8..=9, node_bits in 1u8..=9) {
        prop_assume!(node_bits <= bits);
        let full = SaxWord::from_series(&series, 8, bits).unwrap();
        let node = ISaxWord::from_sax(&full, node_bits).unwrap();
        prop_assert!(node.covers(&full).unwrap());
    }
}
