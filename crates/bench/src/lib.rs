#![warn(missing_docs)]

//! Shared harness for the experiment binary and criterion benches:
//! dataset setup, index construction, workload execution, and table
//! formatting.
//!
//! Scales are reduced uniformly from the paper's billions to what a
//! single machine indexes in seconds; every experiment keeps the paper's
//! *relative* configuration (same sampling fraction, same `L-MaxSize`,
//! the baseline at initial cardinality 512 vs TARDIS at 64, …) so shapes
//! and orderings remain comparable. See EXPERIMENTS.md for the recorded
//! paper-vs-measured results.

use std::time::Duration;
use tardis_baseline::{BaselineConfig, DpisaxIndex};
use tardis_cluster::{Cluster, ClusterConfig, DfsConfig};
use tardis_core::{TardisConfig, TardisIndex};
use tardis_data::{DnaLike, NoaaLike, RandomWalk, SeriesGen, TexmexLike};

/// Records per dataset block at bench scale.
pub const BLOCK_RECORDS: usize = 1_000;

/// Partition capacity at bench scale (the paper derives ~110k records
/// from a 128 MB HDFS block; scaled down ~50x).
pub const PARTITION_CAPACITY: usize = 2_000;

/// Local leaf threshold at bench scale (paper: 1,000; scaled with the
/// partition capacity to keep the partition/leaf ratio).
pub const LOCAL_THRESHOLD: usize = 100;

/// The four dataset families of §VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// RandomWalk benchmark, length 256.
    RandomWalk,
    /// Texmex-like SIFT vectors, length 128.
    Texmex,
    /// DNA-like windows, length 192.
    Dna,
    /// NOAA-like station temperature, length 64.
    Noaa,
}

impl Family {
    /// All families, in the paper's presentation order.
    pub const ALL: [Family; 4] = [Family::RandomWalk, Family::Texmex, Family::Dna, Family::Noaa];

    /// Short name (paper abbreviations: Rw, Tx, Dn, Na).
    pub fn name(&self) -> &'static str {
        match self {
            Family::RandomWalk => "RandomWalk",
            Family::Texmex => "Texmex",
            Family::Dna => "DNA",
            Family::Noaa => "Noaa",
        }
    }

    /// Instantiates the generator with a fixed per-family seed.
    pub fn generator(&self) -> Box<dyn SeriesGen> {
        match self {
            Family::RandomWalk => Box::new(RandomWalk::new(101)),
            Family::Texmex => Box::new(TexmexLike::new(202)),
            Family::Dna => Box::new(DnaLike::new(303)),
            Family::Noaa => Box::new(NoaaLike::new(404)),
        }
    }
}

/// A prepared environment: cluster with the dataset stored as blocks.
pub struct Env {
    /// The simulated cluster.
    pub cluster: Cluster,
    /// Dataset generator.
    pub gen: Box<dyn SeriesGen>,
    /// Dataset DFS file name.
    pub file: String,
    /// Records stored.
    pub n: u64,
}

impl Env {
    /// Creates a cluster (optionally with simulated block-read latency)
    /// and writes `n` records of `family`.
    ///
    /// # Panics
    /// Panics on substrate failure (benches want loud failures).
    pub fn prepare(family: Family, n: u64, read_latency: Duration) -> Env {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            dfs: DfsConfig {
                read_latency,
                ..DfsConfig::default()
            },
            ..ClusterConfig::default()
        })
        .expect("cluster");
        let gen = family.generator();
        let file = family.name().to_lowercase();
        tardis_data::write_dataset(&cluster, &file, gen.as_ref(), n, BLOCK_RECORDS)
            .expect("write dataset");
        Env {
            cluster,
            gen,
            file,
            n,
        }
    }

    /// The bench-scale TARDIS configuration (Table II, scaled).
    pub fn tardis_config(&self) -> TardisConfig {
        TardisConfig {
            g_max_size: PARTITION_CAPACITY,
            l_max_size: LOCAL_THRESHOLD,
            ..TardisConfig::default()
        }
    }

    /// The bench-scale baseline configuration (Table II, scaled; initial
    /// cardinality 512).
    pub fn baseline_config(&self) -> BaselineConfig {
        BaselineConfig {
            g_max_size: PARTITION_CAPACITY,
            l_max_size: LOCAL_THRESHOLD,
            ..BaselineConfig::default()
        }
    }

    /// Builds the TARDIS index with the default bench config.
    ///
    /// # Panics
    /// Panics on build failure.
    pub fn build_tardis(&self) -> (TardisIndex, tardis_core::BuildReport) {
        TardisIndex::build(&self.cluster, &self.file, &self.tardis_config()).expect("tardis build")
    }

    /// Builds the baseline index with the default bench config.
    ///
    /// # Panics
    /// Panics on build failure.
    pub fn build_baseline(&self) -> (DpisaxIndex, tardis_baseline::BaselineBuildReport) {
        DpisaxIndex::build(&self.cluster, &self.file, &self.baseline_config())
            .expect("baseline build")
    }
}

/// Formats a duration as fractional seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Formats bytes as KB/MB.
pub fn human_bytes(b: usize) -> String {
    if b >= 1024 * 1024 {
        format!("{:.1} MB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.1} KB", b as f64 / 1024.0)
    }
}

/// Prints a markdown-style table: header row then aligned data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", line.join(" | "));
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        fmt_row(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_expected_lengths() {
        assert_eq!(Family::RandomWalk.generator().series_len(), 256);
        assert_eq!(Family::Texmex.generator().series_len(), 128);
        assert_eq!(Family::Dna.generator().series_len(), 192);
        assert_eq!(Family::Noaa.generator().series_len(), 64);
    }

    #[test]
    fn prepare_and_build_smoke() {
        let env = Env::prepare(Family::Noaa, 1_000, Duration::ZERO);
        let (index, report) = env.build_tardis();
        assert_eq!(report.n_records, 1_000);
        assert!(index.n_partitions() >= 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500s");
        assert!(human_bytes(2048).contains("KB"));
        assert!(human_bytes(3 * 1024 * 1024).contains("MB"));
    }
}
