//! Regenerates every table and figure of the TARDIS evaluation (§VI) at
//! reproduction scale.
//!
//! ```sh
//! cargo run --release -p tardis-bench --bin experiments -- all
//! cargo run --release -p tardis-bench --bin experiments -- fig15
//! ```
//!
//! Subcommands: `table2`, `fig9`, `fig10`, `fig11`, `fig12`, `fig13`,
//! `fig14`, `fig15`, `fig16`, `fig17`, `ablations`, `profiles` (the
//! observability demo: spans + merged Prometheus dump), `queries` (the
//! shared-scan batch engine vs the naive per-query baseline; writes
//! `BENCH_queries.json`), `kernels` (refine-kernel throughput: scalar
//! baselines vs the lane kernels and the PAA-prefilter block cascade;
//! writes `BENCH_kernels.json`), `server` (resident `tardis-server`
//! daemon vs cold per-query CLI-style index opens; writes
//! `BENCH_server.json`), `balance` (replica-aware load balancing under
//! a Zipfian mix: replication 1 vs 2 vs adaptive hot-partition
//! re-replication; writes `BENCH_balance.json`), `ingest` (continuous
//! ingest through the daemon: sustained sealed-delta throughput plus
//! query latency while the background compactor folds deltas; writes
//! `BENCH_ingest.json`), `build` (in-memory vs external-sort bounded
//! memory construction: wall time and peak heap at 1x and 10x scale;
//! writes `BENCH_build.json`), `all`, and `quick` (a reduced-size pass
//! over everything for smoke testing).

use std::time::Duration;
use tardis_baseline::baseline_knn;
use tardis_bench::{human_bytes, print_table, secs, Env, Family};
use tardis_core::eval::{evaluate_strategy, Neighbor};
use tardis_core::{
    error_ratio, exact_match, ground_truth_knn, recall, KnnStrategy, TardisConfig, TardisIndex,
};
use tardis_data::{profile_dataset, QueryWorkload};
use tardis_ts::{distribution_mse, TimeSeries};

/// Track peak heap so the `build` experiment can demonstrate the
/// external-sort build's flat memory profile with real numbers.
#[global_allocator]
static ALLOC: tardis_cluster::PeakAlloc = tardis_cluster::PeakAlloc;

/// Scale profile: full (default) or quick (CI smoke).
#[derive(Clone, Copy)]
struct Scale {
    base: u64,
    queries: usize,
    knn_queries: usize,
}

const FULL: Scale = Scale {
    base: 40_000,
    queries: 100,
    knn_queries: 10,
};
const QUICK: Scale = Scale {
    base: 6_000,
    queries: 30,
    knn_queries: 4,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let scale = if args.iter().any(|a| a == "--quick") || cmd == "quick" {
        QUICK
    } else {
        FULL
    };
    let run_all = cmd == "all" || cmd == "quick";
    let t0 = std::time::Instant::now();
    if run_all || cmd == "table2" {
        table2();
    }
    if run_all || cmd == "fig9" {
        fig9(scale);
    }
    if run_all || cmd == "fig10" {
        fig10(scale);
    }
    if run_all || cmd == "fig11" {
        fig11(scale);
    }
    if run_all || cmd == "fig12" {
        fig12(scale);
    }
    if run_all || cmd == "fig13" {
        fig13(scale);
    }
    if run_all || cmd == "fig14" {
        fig14(scale);
    }
    if run_all || cmd == "fig15" {
        fig15(scale);
    }
    if run_all || cmd == "fig16" {
        fig16(scale);
    }
    if run_all || cmd == "fig17" {
        fig17(scale);
    }
    if run_all || cmd == "ablations" {
        ablations(scale);
    }
    if run_all || cmd == "profiles" {
        profiles(scale);
    }
    if run_all || cmd == "queries" {
        queries(scale);
    }
    if run_all || cmd == "kernels" {
        kernels(scale);
    }
    if run_all || cmd == "server" {
        server(scale);
    }
    if run_all || cmd == "balance" {
        balance(scale);
    }
    if run_all || cmd == "ingest" {
        ingest(scale);
    }
    if run_all || cmd == "build" {
        build(scale);
    }
    if !run_all
        && ![
            "table2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17", "ablations", "profiles", "queries", "kernels", "server", "balance", "ingest",
            "build",
        ]
        .contains(&cmd)
    {
        eprintln!("unknown experiment '{cmd}'");
        eprintln!("usage: experiments [table2|fig9|...|fig17|ablations|profiles|queries|kernels|server|balance|ingest|build|all|quick] [--quick]");
        std::process::exit(2);
    }
    println!("\n(total experiment time: {})", secs(t0.elapsed()));
}

fn banner(id: &str, what: &str) {
    println!("\n=== {id}: {what} ===");
}

/// Strips the ground-truth labels off a workload, keeping the queries.
fn workload_queries(workload: &QueryWorkload) -> Vec<TimeSeries> {
    workload.queries.iter().map(|(q, _)| q.clone()).collect()
}

/// Table II — resolved experimental configuration.
fn table2() {
    banner("Table II", "experimental configuration (reproduction scale)");
    let t = TardisConfig::default();
    let rows = vec![
        vec!["Block size".into(), format!("{} records", tardis_bench::BLOCK_RECORDS)],
        vec!["Word length".into(), t.word_len.to_string()],
        vec!["Sampling percentage".into(), format!("{:.0}%", t.sampling_fraction * 100.0)],
        vec!["L-MaxSize".into(), tardis_bench::LOCAL_THRESHOLD.to_string()],
        vec!["G-MaxSize (partition capacity)".into(), tardis_bench::PARTITION_CAPACITY.to_string()],
        vec!["Initial cardinality (TARDIS)".into(), t.initial_cardinality().to_string()],
        vec!["Initial cardinality (Baseline)".into(), "512".into()],
        vec!["Multi-Partition Access threshold pth".into(), t.pth.to_string()],
        vec!["Bloom filter target fpp".into(), format!("{}", t.bloom_fpp)],
    ];
    print_table(&["Parameter", "Value"], &rows);
}

/// Figure 9 — dataset value-distribution skew.
fn fig9(scale: Scale) {
    banner("Figure 9", "dataset distributions (value-frequency skew)");
    let sample = (scale.base / 40).max(200);
    let mut rows = Vec::new();
    for family in Family::ALL {
        let gen = family.generator();
        let p = profile_dataset(gen.as_ref(), sample);
        rows.push(vec![
            family.name().to_string(),
            p.series_len.to_string(),
            format!("{:.3}", p.stats.mean()),
            format!("{:.3}", p.stats.std_dev()),
            format!("{:+.3}", p.skewness()),
            format!("{:.3}", p.peak_frequency()),
        ]);
    }
    print_table(
        &["Dataset", "Length", "Mean", "Std", "Skewness", "PeakBinFreq"],
        &rows,
    );
    println!("(paper: datasets chosen to cover a wide range of skewness)");
}

/// Figure 10 — clustered-index construction time, TARDIS vs baseline.
fn fig10(scale: Scale) {
    banner(
        "Figure 10",
        "index construction time (T: TARDIS, B: Baseline)",
    );
    // (a) RandomWalk scaling, with the read+convert step the paper
    // singles out ("66 mins vs 2007 mins" at 1 B) shown separately.
    let mut rows = Vec::new();
    for mult in [1u64, 2, 4] {
        let n = scale.base * mult / 2;
        let env = Env::prepare(Family::RandomWalk, n, Duration::ZERO);
        let (_, t) = env.build_tardis();
        let (_, b) = env.build_baseline();
        rows.push(vec![
            format!("{n}"),
            secs(t.total_time()),
            secs(b.total_time()),
            format!("{:.2}x", b.total_time().as_secs_f64() / t.total_time().as_secs_f64()),
            secs(t.read_convert + t.shuffle),
            secs(b.read_convert + b.shuffle),
        ]);
    }
    println!("(a) RandomWalk scaling (route+shuffle = the paper's 'read and");
    println!("    convert data' step, which folds in partition-id assignment):");
    print_table(
        &["Records", "TARDIS", "Baseline", "Speedup", "T:conv+route", "B:conv+route"],
        &rows,
    );

    // (b) All datasets at one size.
    let mut rows = Vec::new();
    for family in Family::ALL {
        let env = Env::prepare(family, scale.base, Duration::ZERO);
        let (_, t) = env.build_tardis();
        let (_, b) = env.build_baseline();
        rows.push(vec![
            family.name().to_string(),
            secs(t.total_time()),
            secs(b.total_time()),
            format!("{:.2}x", b.total_time().as_secs_f64() / t.total_time().as_secs_f64()),
        ]);
    }
    println!("(b) all datasets at {} records:", scale.base);
    print_table(&["Dataset", "TARDIS", "Baseline", "Speedup"], &rows);
    println!("(paper: TARDIS ≈8x faster; 334 vs 2323 min at 1B)");
}

/// Figure 11 — global-index construction breakdown.
fn fig11(scale: Scale) {
    banner("Figure 11", "global index construction time breakdown");
    let mut rows = Vec::new();
    for family in Family::ALL {
        let env = Env::prepare(family, scale.base, Duration::ZERO);
        let (_, t) = env.build_tardis();
        let (_, b) = env.build_baseline();
        rows.push(vec![
            family.name().to_string(),
            secs(t.global.sampling),
            secs(t.global.statistics),
            secs(t.global.skeleton),
            secs(t.global.packing),
            secs(t.global.total()),
            secs(b.global.total()),
        ]);
    }
    print_table(
        &[
            "Dataset",
            "T:sample",
            "T:stats",
            "T:skeleton",
            "T:packing",
            "T:total",
            "B:total",
        ],
        &rows,
    );
    println!("(paper: TARDIS global in ~10 min vs baseline ~46 min at 1B;");
    println!(" baseline tree-build time grows linearly with dataset size)");
}

/// Figure 12 — Bloom filter construction overhead.
fn fig12(scale: Scale) {
    banner("Figure 12", "Bloom filter index construction overhead");
    let mut rows = Vec::new();
    for mult in [1u64, 2, 4] {
        let n = scale.base * mult / 2;
        let env = Env::prepare(Family::RandomWalk, n, Duration::ZERO);
        let with_cfg = env.tardis_config();
        let without_cfg = TardisConfig {
            bloom_enabled: false,
            ..with_cfg.clone()
        };
        let (_, with) = TardisIndex::build(&env.cluster, &env.file, &with_cfg).expect("build");
        let (_, without) =
            TardisIndex::build(&env.cluster, &env.file, &without_cfg).expect("build");
        let overhead =
            with.total_time().as_secs_f64() - without.total_time().as_secs_f64();
        rows.push(vec![
            format!("{n}"),
            secs(with.total_time()),
            secs(without.total_time()),
            format!("{:+.3}s", overhead),
            human_bytes(with.bloom_bytes),
            human_bytes(with.bloom_bytes / with.n_partitions.max(1)),
        ]);
    }
    print_table(
        &[
            "Records",
            "WithBloom",
            "NoBloom",
            "Overhead",
            "BloomTotal",
            "Bloom/part",
        ],
        &rows,
    );
    println!("(paper: negligible overhead while intermediates fit in memory;");
    println!(" ~66 KB filter per partition)");
}

/// Figure 13 — index sizes.
fn fig13(scale: Scale) {
    banner("Figure 13", "index size (global and local)");
    let mut rows = Vec::new();
    for mult in [1u64, 2, 4] {
        let n = scale.base * mult / 2;
        let env = Env::prepare(Family::RandomWalk, n, Duration::ZERO);
        let (_, t) = env.build_tardis();
        let (_, b) = env.build_baseline();
        rows.push(vec![
            format!("{n}"),
            human_bytes(t.global_index_bytes),
            human_bytes(b.global_index_bytes),
            human_bytes(t.local_index_bytes),
            human_bytes(b.local_index_bytes),
        ]);
    }
    print_table(
        &["Records", "T:global", "B:global", "T:local", "B:local"],
        &rows,
    );
    println!("(paper shape: TARDIS global larger — whole sigTree vs leaf table —");
    println!(" but TARDIS local smaller thanks to initial cardinality 64 vs 512)");
}

/// Figure 14 — exact-match mean query time.
fn fig14(scale: Scale) {
    banner("Figure 14", "exact match average query time");
    // Simulated block-read latency models HDFS loads (this is what the
    // Bloom filter saves).
    let latency = Duration::from_millis(2);
    let mut rows = Vec::new();
    for family in Family::ALL {
        let env = Env::prepare(family, scale.base, latency);
        let (index, _) = env.build_tardis();
        let (baseline, _) = env.build_baseline();
        let workload = QueryWorkload::mixed(env.gen.as_ref(), env.n, scale.queries, 42);

        let time_tardis = |use_bloom: bool| {
            let t0 = std::time::Instant::now();
            for (q, _) in &workload.queries {
                exact_match(&index, &env.cluster, q, use_bloom).expect("query");
            }
            t0.elapsed() / workload.len() as u32
        };
        let t_bf = time_tardis(true);
        let t_nobf = time_tardis(false);
        let t0 = std::time::Instant::now();
        for (q, _) in &workload.queries {
            tardis_baseline::baseline_exact_match(&baseline, &env.cluster, q).expect("query");
        }
        let t_base = t0.elapsed() / workload.len() as u32;
        rows.push(vec![
            family.name().to_string(),
            format!("{:.2} ms", t_bf.as_secs_f64() * 1e3),
            format!("{:.2} ms", t_nobf.as_secs_f64() * 1e3),
            format!("{:.2} ms", t_base.as_secs_f64() * 1e3),
        ]);
    }
    print_table(&["Dataset", "Tardis-BF", "Tardis-NoBF", "Baseline"], &rows);
    println!("(paper: Tardis-BF ≈ half the baseline — absent queries skip the");
    println!(" partition load; 4s vs 9s on RandomWalk)");
}

/// Shared fig15/fig16 row: evaluate baseline + all TARDIS strategies.
fn quality_rows(
    env: &Env,
    index: &TardisIndex,
    baseline: &tardis_baseline::DpisaxIndex,
    queries: &[TimeSeries],
    truths: &[Vec<Neighbor>],
    k: usize,
) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    // Baseline.
    let t0 = std::time::Instant::now();
    let mut b_recall = 0.0;
    let mut b_ratio = 0.0;
    for (q, t) in queries.iter().zip(truths) {
        let ans = baseline_knn(baseline, &env.cluster, q, k).expect("baseline knn");
        b_recall += recall(&ans.neighbors, t);
        b_ratio += error_ratio(&ans.neighbors, t);
    }
    let b_time = t0.elapsed() / queries.len() as u32;
    rows.push(vec![
        "Baseline (DPiSAX)".into(),
        format!("{:.1}%", b_recall / queries.len() as f64 * 100.0),
        format!("{:.3}", b_ratio / queries.len() as f64),
        format!("{:.1} ms", b_time.as_secs_f64() * 1e3),
    ]);
    // TARDIS strategies.
    for strategy in KnnStrategy::ALL {
        let summary = evaluate_strategy(index, &env.cluster, queries, truths, k, strategy)
            .expect("evaluate");
        rows.push(vec![
            strategy.name().into(),
            format!("{:.1}%", summary.recall * 100.0),
            format!("{:.3}", summary.error_ratio),
            format!("{:.1} ms", summary.avg_query_time.as_secs_f64() * 1e3),
        ]);
    }
    rows
}

fn knn_setup(
    family: Family,
    n: u64,
    n_queries: usize,
    k: usize,
) -> (
    Env,
    TardisIndex,
    tardis_baseline::DpisaxIndex,
    Vec<TimeSeries>,
    Vec<Vec<Neighbor>>,
) {
    let env = Env::prepare(family, n, Duration::ZERO);
    let (index, _) = env.build_tardis();
    let (baseline, _) = env.build_baseline();
    let workload = QueryWorkload::existing(env.gen.as_ref(), env.n, n_queries, 7);
    let queries = workload_queries(&workload);
    let truths: Vec<Vec<Neighbor>> = queries
        .iter()
        .map(|q| ground_truth_knn(&env.cluster, &env.file, q, k).expect("truth"))
        .collect();
    (env, index, baseline, queries, truths)
}

/// Figure 15 — kNN-approximate quality across datasets.
fn fig15(scale: Scale) {
    // Paper: 400M records, k=500, partition 110k → k/partition ≈ 0.5%.
    // Scaled: partition 2,000 → k = 50 keeps the ratio comparable.
    let k = 50;
    banner(
        "Figure 15",
        "kNN approximate performance per dataset (scaled k)",
    );
    for family in Family::ALL {
        let (env, index, baseline, queries, truths) =
            knn_setup(family, scale.base, scale.knn_queries, k);
        println!("\n{} ({} records, k = {k}):", family.name(), scale.base);
        let rows = quality_rows(&env, &index, &baseline, &queries, &truths, k);
        print_table(&["Method", "Recall", "ErrorRatio", "AvgTime"], &rows);
    }
    println!("\n(paper at 400M/k=500: baseline 1.5%, target-node 6.7%,");
    println!(" one-partition 18.9%, multi-partition 43.4% recall)");
}

/// Figure 16 — impact of dataset size and of k.
fn fig16(scale: Scale) {
    banner("Figure 16", "impact of dataset size (left) and k (right)");
    println!("(left) RandomWalk, k = 100, varying dataset size:");
    for mult in [1u64, 2, 4] {
        let n = scale.base * mult / 2;
        let (env, index, baseline, queries, truths) =
            knn_setup(Family::RandomWalk, n, scale.knn_queries, 100);
        println!("\n  {n} records:");
        let rows = quality_rows(&env, &index, &baseline, &queries, &truths, 100);
        print_table(&["Method", "Recall", "ErrorRatio", "AvgTime"], &rows);
    }

    println!("\n(right) RandomWalk at {} records, varying k:", scale.base);
    let env = Env::prepare(Family::RandomWalk, scale.base, Duration::ZERO);
    let (index, _) = env.build_tardis();
    let (baseline, _) = env.build_baseline();
    let workload = QueryWorkload::existing(env.gen.as_ref(), env.n, scale.knn_queries, 7);
    let queries = workload_queries(&workload);
    for k in [10usize, 50, 100, 200] {
        let truths: Vec<Vec<Neighbor>> = queries
            .iter()
            .map(|q| ground_truth_knn(&env.cluster, &env.file, q, k).expect("truth"))
            .collect();
        println!("\n  k = {k}:");
        let rows = quality_rows(&env, &index, &baseline, &queries, &truths, k);
        print_table(&["Method", "Recall", "ErrorRatio", "AvgTime"], &rows);
    }
    println!("\n(paper shape: recall decreases with dataset size; multi-partition");
    println!(" stays best across k; baseline flat and low)");
}

/// Figure 17 — impact of the sampling percentage.
fn fig17(scale: Scale) {
    banner("Figure 17", "impact of sampling percentage");
    let n = scale.base;
    let env = Env::prepare(Family::RandomWalk, n, Duration::ZERO);
    let k = 50;
    let workload = QueryWorkload::existing(env.gen.as_ref(), env.n, scale.knn_queries, 7);
    let queries = workload_queries(&workload);
    let truths: Vec<Vec<Neighbor>> = queries
        .iter()
        .map(|q| ground_truth_knn(&env.cluster, &env.file, q, k).expect("truth"))
        .collect();

    // Reference partition-size distribution from the 100% build.
    let full_cfg = TardisConfig {
        sampling_fraction: 1.0,
        ..env.tardis_config()
    };
    let (full_index, _) = TardisIndex::build(&env.cluster, &env.file, &full_cfg).expect("build");
    let reference = size_histogram(&full_index);

    let mut rows = Vec::new();
    for pct in [1.0f64, 5.0, 10.0, 20.0, 40.0, 100.0] {
        let cfg = TardisConfig {
            sampling_fraction: pct / 100.0,
            ..env.tardis_config()
        };
        let (index, report) = TardisIndex::build(&env.cluster, &env.file, &cfg).expect("build");
        let hist = size_histogram(&index);
        let mse = distribution_mse(&hist, &reference);
        let summary = evaluate_strategy(
            &index,
            &env.cluster,
            &queries,
            &truths,
            k,
            KnnStrategy::MultiPartition,
        )
        .expect("evaluate");
        rows.push(vec![
            format!("{pct}%"),
            secs(report.global.total()),
            human_bytes(report.global_index_bytes),
            format!("{:.5}", mse),
            format!("{:.3}", summary.error_ratio),
        ]);
    }
    print_table(
        &[
            "Sampling",
            "GlobalBuild",
            "GlobalSize",
            "PartSizeMSE",
            "ErrorRatio(MP)",
        ],
        &rows,
    );
    println!("(paper: 10% sampling ≈ the 100% distribution; small percentages");
    println!(" cut build time but raise MSE and error ratio)");
}

/// Design-choice ablations beyond the paper's figures: the iBT split
/// policy, TARDIS's initial cardinality, the word length, and the `pth`
/// partition cap of Multi-Partitions Access.
fn ablations(scale: Scale) {
    banner("Ablations", "design-choice sweeps (not in the paper's figures)");
    let n = scale.base / 2;

    // --- (a) Baseline split policy: round-robin vs statistics. ---
    println!("(a) iBT split policy on RandomWalk ({n} records):");
    let env = Env::prepare(Family::RandomWalk, n, Duration::ZERO);
    let mut rows = Vec::new();
    for policy in [
        tardis_baseline::SplitPolicy::RoundRobin,
        tardis_baseline::SplitPolicy::Statistics,
    ] {
        let cfg = tardis_baseline::BaselineConfig {
            split_policy: policy,
            ..env.baseline_config()
        };
        let t0 = std::time::Instant::now();
        let (index, _) = tardis_baseline::DpisaxIndex::build(&env.cluster, &env.file, &cfg)
            .expect("baseline build");
        let build = t0.elapsed();
        // Structure of the largest partition's local iBT (small partitions
        // never split and hide the policy difference).
        let biggest = index
            .partitions()
            .iter()
            .max_by_key(|p| p.n_records)
            .map(|p| p.pid)
            .unwrap_or(0);
        let tree = index.load_partition(&env.cluster, biggest).expect("load");
        let s = tree.stats();
        rows.push(vec![
            format!("{policy:?}"),
            secs(build),
            s.n_nodes.to_string(),
            format!("{:.2}", s.avg_leaf_depth),
            s.max_leaf_depth.to_string(),
            format!("{:.1}", s.avg_leaf_size),
        ]);
    }
    print_table(
        &["Policy", "Build", "Nodes(p0)", "AvgDepth", "MaxDepth", "AvgLeaf"],
        &rows,
    );
    println!("(round-robin's 'excessive subdivision' shows as more nodes/depth)");

    // --- (b) TARDIS initial cardinality sweep. ---
    println!("\n(b) TARDIS initial cardinality on RandomWalk ({n} records), k = 50:");
    let k = 50;
    let workload = QueryWorkload::existing(env.gen.as_ref(), env.n, scale.knn_queries, 7);
    let queries = workload_queries(&workload);
    let truths: Vec<Vec<Neighbor>> = queries
        .iter()
        .map(|q| ground_truth_knn(&env.cluster, &env.file, q, k).expect("truth"))
        .collect();
    let mut rows = Vec::new();
    for bits in [4u8, 5, 6, 7] {
        let cfg = TardisConfig {
            initial_card_bits: bits,
            ..env.tardis_config()
        };
        let t0 = std::time::Instant::now();
        let (index, report) =
            TardisIndex::build(&env.cluster, &env.file, &cfg).expect("build");
        let build = t0.elapsed();
        let summary = evaluate_strategy(
            &index,
            &env.cluster,
            &queries,
            &truths,
            k,
            KnnStrategy::OnePartition,
        )
        .expect("evaluate");
        rows.push(vec![
            format!("2^{bits} = {}", 1u32 << bits),
            secs(build),
            human_bytes(report.local_index_bytes),
            format!("{:.1}%", summary.recall * 100.0),
            format!("{:.3}", summary.error_ratio),
        ]);
    }
    print_table(
        &["InitCard", "Build", "LocalIdx", "Recall(1P)", "ErrRatio(1P)"],
        &rows,
    );

    // --- (c) Word length sweep. ---
    println!("\n(c) word length on RandomWalk ({n} records), k = 50:");
    let mut rows = Vec::new();
    for w in [4usize, 8, 16] {
        let cfg = TardisConfig {
            word_len: w,
            ..env.tardis_config()
        };
        let t0 = std::time::Instant::now();
        let (index, _) = TardisIndex::build(&env.cluster, &env.file, &cfg).expect("build");
        let build = t0.elapsed();
        let summary = evaluate_strategy(
            &index,
            &env.cluster,
            &queries,
            &truths,
            k,
            KnnStrategy::OnePartition,
        )
        .expect("evaluate");
        rows.push(vec![
            w.to_string(),
            build.as_secs_f64().to_string()[..5.min(build.as_secs_f64().to_string().len())]
                .to_string(),
            index.n_partitions().to_string(),
            format!("{:.1}%", summary.recall * 100.0),
            format!("{:.3}", summary.error_ratio),
        ]);
    }
    print_table(
        &["WordLen", "Build(s)", "Partitions", "Recall(1P)", "ErrRatio(1P)"],
        &rows,
    );

    // --- (d) pth sweep for Multi-Partitions Access. ---
    println!("\n(d) pth (Multi-Partitions cap) on RandomWalk ({n} records), k = 50:");
    let mut rows = Vec::new();
    for pth in [1usize, 2, 5, 10, 40] {
        let cfg = TardisConfig {
            pth,
            ..env.tardis_config()
        };
        let (index, _) = TardisIndex::build(&env.cluster, &env.file, &cfg).expect("build");
        let summary = evaluate_strategy(
            &index,
            &env.cluster,
            &queries,
            &truths,
            k,
            KnnStrategy::MultiPartition,
        )
        .expect("evaluate");
        rows.push(vec![
            pth.to_string(),
            format!("{:.1}%", summary.recall * 100.0),
            format!("{:.3}", summary.error_ratio),
            format!("{:.1} ms", summary.avg_query_time.as_secs_f64() * 1e3),
            format!("{:.1}", summary.avg_partitions_loaded),
        ]);
    }
    print_table(
        &["pth", "Recall(MP)", "ErrRatio(MP)", "AvgTime", "PartsLoaded"],
        &rows,
    );
    println!("(accuracy–cost knob: more sibling partitions, better answers)");

    // --- (e) Refine phase vs signature-only answers (§II-D's claim). ---
    println!("\n(e) baseline kNN: refined vs signature-only (un-clustered DPiSAX):");
    let (b_index, _) = env.build_baseline();
    let mut refined_recall = 0.0;
    let mut sig_recall = 0.0;
    for (q, t) in queries.iter().zip(&truths) {
        let refined = tardis_baseline::baseline_knn(&b_index, &env.cluster, q, k)
            .expect("baseline knn");
        let sig_only =
            tardis_baseline::baseline_knn_sig_only(&b_index, &env.cluster, q, k)
                .expect("sig-only knn");
        refined_recall += recall(&refined.neighbors, t);
        sig_recall += recall(&sig_only.neighbors, t);
    }
    let nq = queries.len() as f64;
    print_table(
        &["Variant", "Recall"],
        &[
            vec!["refined (clustered)".into(), format!("{:.1}%", refined_recall / nq * 100.0)],
            vec!["signature-only (un-clustered)".into(), format!("{:.1}%", sig_recall / nq * 100.0)],
        ],
    );
    println!("(paper §II-D: skipping the refine phase degrades accuracy)");

    // --- (f) Partition caching: cold vs warm query latency. ---
    println!("\n(f) DFS block cache: cold vs warm kNN latency ({n} records):");
    let cached_env = {
        use tardis_cluster::{Cluster, ClusterConfig, DfsConfig};
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            dfs: DfsConfig {
                read_latency: Duration::from_millis(2),
                cache_bytes: 256 << 20,
                ..DfsConfig::default()
            },
            ..ClusterConfig::default()
        })
        .expect("cluster");
        tardis_data::write_dataset(&cluster, "rw", env.gen.as_ref(), n, 1_000)
            .expect("write");
        cluster
    };
    let (c_index, _) = TardisIndex::build(
        &cached_env,
        "rw",
        &TardisConfig {
            g_max_size: tardis_bench::PARTITION_CAPACITY,
            l_max_size: tardis_bench::LOCAL_THRESHOLD,
            ..TardisConfig::default()
        },
    )
    .expect("build");
    let time_pass = |label: &str| {
        let t0 = std::time::Instant::now();
        for q in &queries {
            tardis_core::knn_approximate(
                &c_index,
                &cached_env,
                q,
                k,
                KnnStrategy::OnePartition,
            )
            .expect("knn");
        }
        let avg = t0.elapsed() / queries.len() as u32;
        let m = cached_env.metrics().snapshot();
        (label.to_string(), avg, m)
    };
    let (_, cold, m0) = time_pass("cold");
    let (_, warm, m1) = time_pass("warm");
    let warm_delta_hits = m1.cache_hits - m0.cache_hits;
    print_table(
        &["Pass", "AvgQueryTime", "CacheHits"],
        &[
            vec!["cold".into(), format!("{:.1} ms", cold.as_secs_f64() * 1e3), m0.cache_hits.to_string()],
            vec!["warm".into(), format!("{:.1} ms", warm.as_secs_f64() * 1e3), warm_delta_hits.to_string()],
        ],
    );
    println!("(hot partitions served from memory skip disk and latency)");
}

/// Query-path observability demo: build and query under one live tracer
/// on a fault-injected cluster, then dump per-query profiles, span
/// aggregates, and the merged Prometheus text (span counters next to the
/// cluster's fault/retry counters).
fn profiles(scale: Scale) {
    banner("Profiles", "query-path observability (spans + Prometheus)");
    use tardis_cluster::{Cluster, ClusterConfig, FaultPlan, RetryPolicy, Tracer};
    let n = scale.base / 2;
    let gen = Family::RandomWalk.generator();
    // A lively fault plan with a deep zero-backoff retry budget: faults
    // and retries show up in the Prometheus dump while every operation
    // still succeeds.
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 4,
        faults: Some(FaultPlan {
            seed: 7,
            block_read_fail_p: 0.3,
            task_fail_p: 0.1,
            ..FaultPlan::default()
        }),
        retry: RetryPolicy {
            max_attempts: 32,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            ..RetryPolicy::default()
        },
        ..ClusterConfig::default()
    })
    .expect("cluster");
    tardis_data::write_dataset(&cluster, "rw", gen.as_ref(), n, tardis_bench::BLOCK_RECORDS)
        .expect("write");
    let cfg = TardisConfig {
        g_max_size: tardis_bench::PARTITION_CAPACITY,
        l_max_size: tardis_bench::LOCAL_THRESHOLD,
        ..TardisConfig::default()
    };
    let tracer = Tracer::new();
    let (index, _) =
        TardisIndex::build_profiled(&cluster, "rw", &cfg, &tracer).expect("build");
    let q = gen.series(17);
    let (_, profile) =
        tardis_core::exact_match_profiled(&index, &cluster, &q, true, &tracer).expect("exact");
    println!("\nexact-match profile:\n{}", profile.render());
    for strategy in KnnStrategy::ALL {
        let (_, profile) = tardis_core::knn_approximate_profiled(
            &index, &cluster, &q, 20, strategy, &tracer,
        )
        .expect("knn");
        println!("{} profile:\n{}", strategy.name(), profile.render());
    }
    let aggregates = tracer.aggregates();
    let prom = cluster.metrics().snapshot().prometheus_text(Some(&aggregates));
    println!("merged Prometheus dump (cluster + span counters):\n{prom}");
}

/// Batch-query baseline: the shared-scan engine vs naive per-query
/// execution on a partition-overlapping workload. Prints a table and
/// writes `BENCH_queries.json` (the repo's first checked-in benchmark
/// baseline) with both timings and the sharing counters.
fn queries(scale: Scale) {
    banner("Queries", "shared-scan batch engine vs naive per-query baseline");
    use tardis_cluster::Tracer;
    use tardis_core::{
        exact_match_batch, exact_match_batch_naive, knn_batch_naive, knn_batch_profiled,
    };
    let env = Env::prepare(Family::Noaa, scale.base, Duration::ZERO);
    let (index, _) = env.build_tardis();
    // scale.queries queries over scale.queries/4 distinct stored series:
    // guaranteed partition overlap, the shape batch workloads take when
    // many clients probe the same hot region.
    let distinct = (scale.queries / 4).max(1) as u64;
    let queries: Vec<TimeSeries> = (0..scale.queries as u64)
        .map(|i| env.gen.series((i % distinct) * 97))
        .collect();
    let k = 10;

    let time = |f: &mut dyn FnMut()| {
        // One warm-up, then best of 3 (the block cache is hot either
        // way, so "best" measures compute, not cache luck).
        f();
        (0..3)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed()
            })
            .min()
            .unwrap()
    };

    let naive_knn = time(&mut || {
        knn_batch_naive(&index, &env.cluster, &queries, k, KnnStrategy::MultiPartition).unwrap();
    });
    let mut last_profile = None;
    let shared_knn = time(&mut || {
        let (_, p) = knn_batch_profiled(
            &index,
            &env.cluster,
            &queries,
            k,
            KnnStrategy::MultiPartition,
            &Tracer::disabled(),
        )
        .unwrap();
        last_profile = Some(p);
    });
    let profile = last_profile.unwrap();

    let naive_exact = time(&mut || {
        exact_match_batch_naive(&index, &env.cluster, &queries, true).unwrap();
    });
    let shared_exact = time(&mut || {
        exact_match_batch(&index, &env.cluster, &queries, true).unwrap();
    });

    let knn_speedup = naive_knn.as_secs_f64() / shared_knn.as_secs_f64().max(1e-9);
    let exact_speedup = naive_exact.as_secs_f64() / shared_exact.as_secs_f64().max(1e-9);
    print_table(
        &["Workload", "Naive", "Shared scan", "Speedup"],
        &[
            vec![
                format!("kNN Multi-Partitions k={k}, {} queries", queries.len()),
                secs(naive_knn),
                secs(shared_knn),
                format!("{knn_speedup:.2}x"),
            ],
            vec![
                format!("exact match (Bloom), {} queries", queries.len()),
                secs(naive_exact),
                secs(shared_exact),
                format!("{exact_speedup:.2}x"),
            ],
        ],
    );
    println!(
        "kNN sharing: {} logical loads served by {} physical ({} avoided)",
        profile.logical_loads(),
        profile.partitions_loaded,
        profile.partitions_shared,
    );

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let json = format!(
        "{{\n  \"bench\": \"queries\",\n  \"dataset\": \"Noaa\",\n  \"n_records\": {},\n  \"n_queries\": {},\n  \"k\": {},\n  \"knn\": {{\n    \"strategy\": \"MultiPartition\",\n    \"naive_ms\": {:.3},\n    \"shared_ms\": {:.3},\n    \"speedup\": {:.3},\n    \"logical_loads\": {},\n    \"physical_loads\": {},\n    \"shared_loads\": {}\n  }},\n  \"exact\": {{\n    \"bloom\": true,\n    \"naive_ms\": {:.3},\n    \"shared_ms\": {:.3},\n    \"speedup\": {:.3}\n  }}\n}}\n",
        scale.base,
        queries.len(),
        k,
        naive_knn.as_secs_f64() * 1e3,
        shared_knn.as_secs_f64() * 1e3,
        knn_speedup,
        profile.logical_loads(),
        profile.partitions_loaded,
        profile.partitions_shared,
        naive_exact.as_secs_f64() * 1e3,
        shared_exact.as_secs_f64() * 1e3,
        exact_speedup,
    );
    // Quick (CI smoke) runs must not clobber the checked-in full-scale
    // baseline numbers.
    if scale.base != FULL.base {
        println!("quick scale: not writing BENCH_queries.json");
        return;
    }
    match std::fs::write("BENCH_queries.json", &json) {
        Ok(()) => println!("wrote BENCH_queries.json"),
        Err(e) => eprintln!("could not write BENCH_queries.json: {e}"),
    }
}

/// Refine-kernel throughput: the scalar per-candidate baselines vs the
/// lane kernels and the full PAA-prefilter block cascade, over a
/// contiguous candidate arena at several series lengths. Prints a table
/// and writes `BENCH_kernels.json`.
fn kernels(scale: Scale) {
    banner("Kernels", "refine kernels: scalar vs lanes vs block cascade");
    use tardis_data::{RandomWalk, SeriesGen};
    use tardis_isax::{paa, segment_lengths};
    use tardis_ts::{
        euclidean_early_abandon, euclidean_early_abandon_block, paa_prefilter_block,
        squared_euclidean, squared_euclidean_lanes,
    };
    const PAA_WIDTH: usize = 8;
    let candidates = if scale.base >= FULL.base { 4096usize } else { 1024 };

    // Best-of-5 wall time for one full pass over the candidate set.
    let time = |f: &mut dyn FnMut()| {
        f();
        (0..5)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed()
            })
            .min()
            .unwrap()
    };

    let mut rows = Vec::new();
    let mut json_lens = Vec::new();
    for len in [64usize, 256, 1024] {
        let gen = RandomWalk::with_len(7, len);
        let query: Vec<f32> = gen.series(1_000_000).values().to_vec();
        let query_paa = paa(&query, PAA_WIDTH).expect("paa");
        let weights = segment_lengths(len, PAA_WIDTH).expect("weights");
        let mut arena = Vec::with_capacity(candidates * len);
        let mut paa_arena = Vec::with_capacity(candidates * PAA_WIDTH);
        for rid in 0..candidates as u64 {
            let s = gen.series(rid);
            paa_arena.extend(paa(s.values(), PAA_WIDTH).expect("paa"));
            arena.extend_from_slice(s.values());
        }
        let idxs: Vec<u32> = (0..candidates as u32).collect();
        // Mid-tight bound (10th-smallest true distance): the realistic
        // mid-query state where most candidates abandon or pre-prune.
        let mut dists: Vec<f64> = (0..candidates)
            .map(|i| squared_euclidean(&query, &arena[i * len..(i + 1) * len]))
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let bound_sq = dists[9];

        let scalar_full = time(&mut || {
            let mut acc = 0.0;
            for i in 0..candidates {
                acc += squared_euclidean(&query, &arena[i * len..(i + 1) * len]);
            }
            std::hint::black_box(acc);
        });
        let lanes_full = time(&mut || {
            let mut acc = 0.0;
            for i in 0..candidates {
                acc += squared_euclidean_lanes(&query, &arena[i * len..(i + 1) * len]);
            }
            std::hint::black_box(acc);
        });
        let scalar_ea = time(&mut || {
            let mut hits = 0usize;
            for i in 0..candidates {
                if euclidean_early_abandon(&query, &arena[i * len..(i + 1) * len], bound_sq)
                    .is_some()
                {
                    hits += 1;
                }
            }
            std::hint::black_box(hits);
        });
        let mut paa_pruned = 0usize;
        let mut survivors: Vec<u32> = Vec::with_capacity(candidates);
        let cascade = time(&mut || {
            survivors.clear();
            paa_pruned = paa_prefilter_block(
                &query_paa, &weights, &paa_arena, PAA_WIDTH, &idxs, bound_sq, &mut survivors,
            );
            let mut hits = 0usize;
            euclidean_early_abandon_block(&query, &arena, len, &survivors, bound_sq, |_, d| {
                if d.is_some() {
                    hits += 1;
                }
            });
            std::hint::black_box(hits);
        });

        let full_speedup = scalar_full.as_secs_f64() / lanes_full.as_secs_f64().max(1e-12);
        let refine_speedup = scalar_ea.as_secs_f64() / cascade.as_secs_f64().max(1e-12);
        rows.push(vec![
            len.to_string(),
            format!("{:.3}", scalar_full.as_secs_f64() * 1e3),
            format!("{:.3}", lanes_full.as_secs_f64() * 1e3),
            format!("{full_speedup:.2}x"),
            format!("{:.3}", scalar_ea.as_secs_f64() * 1e3),
            format!("{:.3}", cascade.as_secs_f64() * 1e3),
            format!("{refine_speedup:.2}x"),
            paa_pruned.to_string(),
        ]);
        json_lens.push(format!(
            "    {{\n      \"series_len\": {len},\n      \"scalar_full_ms\": {:.4},\n      \"lanes_full_ms\": {:.4},\n      \"full_speedup\": {:.3},\n      \"scalar_early_abandon_ms\": {:.4},\n      \"block_cascade_ms\": {:.4},\n      \"refine_speedup\": {:.3},\n      \"paa_pruned\": {paa_pruned}\n    }}",
            scalar_full.as_secs_f64() * 1e3,
            lanes_full.as_secs_f64() * 1e3,
            full_speedup,
            scalar_ea.as_secs_f64() * 1e3,
            cascade.as_secs_f64() * 1e3,
            refine_speedup,
        ));
    }
    print_table(
        &[
            "Len", "ScalarFull", "LanesFull", "Speedup", "ScalarEA", "Cascade", "Speedup",
            "PAA-pruned",
        ],
        &rows,
    );
    println!("(times are ms per pass over {candidates} candidates; bound = 10th-NN)");

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"n_candidates\": {candidates},\n  \"paa_width\": {PAA_WIDTH},\n  \"bound\": \"10th_smallest_distance\",\n  \"lens\": [\n{}\n  ]\n}}\n",
        json_lens.join(",\n"),
    );
    match std::fs::write("BENCH_kernels.json", &json) {
        Ok(()) => println!("wrote BENCH_kernels.json"),
        Err(e) => eprintln!("could not write BENCH_kernels.json: {e}"),
    }
}

/// Resident daemon vs cold CLI-style execution: the same query mix runs
/// (a) through a long-lived `tardis-server` daemon over TCP — index,
/// leaf arenas, and block cache resident across requests — and (b) with
/// a fresh cluster handle plus a full `TardisIndex::open` per query,
/// the floor every stateless `tardis query` invocation pays before it
/// can even route. Prints a table and writes `BENCH_server.json`.
fn server(scale: Scale) {
    banner("Server", "resident daemon vs cold per-query index opens");
    use std::sync::Arc;
    use tardis_cluster::{Cluster, ClusterConfig, DfsConfig};
    use tardis_server::{Client, Op, QueryServer, Request, ServerConfig};

    const K: usize = 10;
    const N_CLIENTS: usize = 4;
    const DEADLINE_MS: u64 = 2_000;

    let gen = Family::RandomWalk.generator();
    let n = scale.base;
    let dir = std::env::temp_dir().join(format!("tardis-bench-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    // Identical cluster config on both sides; the daemon's edge is
    // purely that it keeps this state alive between requests. Block
    // reads carry the same simulated HDFS latency as fig14 — the cost
    // the resident cache absorbs and a cold process pays every time.
    let config = || ClusterConfig {
        dfs: DfsConfig {
            cache_bytes: 256 << 20,
            read_latency: Duration::from_millis(2),
            ..DfsConfig::default()
        },
        ..ClusterConfig::default()
    };
    {
        let cluster = Cluster::at_dir(&dir, config()).expect("cluster");
        tardis_data::write_dataset(&cluster, "ds", gen.as_ref(), n, tardis_bench::BLOCK_RECORDS)
            .expect("write dataset");
        let cfg = TardisConfig {
            g_max_size: tardis_bench::PARTITION_CAPACITY,
            l_max_size: tardis_bench::LOCAL_THRESHOLD,
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&cluster, "ds", &cfg).expect("build");
        index.save(&cluster, "idx").expect("save");
    }

    // The query mix: alternating exact match and multi-partition kNN,
    // with a 2-query shared-scan batch every fifth request. Every
    // request carries the same fixed deadline.
    let requests: Vec<Request> = (0..scale.queries as u64)
        .map(|i| {
            let rid = (i * 389) % n;
            let mut r = if i % 5 == 4 {
                let mut r = Request::new(i + 1, Op::Batch);
                r.queries = vec![
                    gen.series(rid).values().to_vec(),
                    gen.series((rid + 7_919) % n).values().to_vec(),
                ];
                r.k = K;
                r
            } else if i % 2 == 0 {
                let mut r = Request::new(i + 1, Op::Exact);
                r.query = gen.series(rid).values().to_vec();
                r
            } else {
                let mut r = Request::new(i + 1, Op::Knn);
                r.query = gen.series(rid).values().to_vec();
                r.k = K;
                r
            };
            r.deadline_ms = Some(DEADLINE_MS);
            r
        })
        .collect();

    // (a) Cold: fresh cluster handle + index open per query.
    let t0 = std::time::Instant::now();
    for req in &requests {
        let cluster = Cluster::at_dir(&dir, config()).expect("cluster");
        let index = TardisIndex::open(&cluster, "idx").expect("open");
        match req.op {
            Op::Exact => {
                exact_match(&index, &cluster, &req.series(), true).expect("exact");
            }
            Op::Knn => {
                tardis_core::knn_approximate(&index, &cluster, &req.series(), req.k, req.strategy)
                    .expect("knn");
            }
            Op::Batch => {
                tardis_core::knn_batch(&index, &cluster, &req.batch_series(), req.k, req.strategy)
                    .expect("batch");
            }
            Op::ExactKnn | Op::Range | Op::Ingest | Op::Compact => {
                unreachable!("mix only issues exact/knn/batch")
            }
        }
    }
    let cold = t0.elapsed();
    let cold_qps = requests.len() as f64 / cold.as_secs_f64().max(1e-9);

    // (b) Resident: one daemon, N_CLIENTS concurrent TCP clients
    // splitting the same mix.
    let cluster = Arc::new(Cluster::at_dir(&dir, config()).expect("cluster"));
    let index = Arc::new(TardisIndex::open(&cluster, "idx").expect("open"));
    let handle = QueryServer::start(
        Arc::clone(&cluster),
        Arc::clone(&index),
        ServerConfig {
            max_in_flight: N_CLIENTS * 2,
            queue_capacity: requests.len().max(16),
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = handle.addr().to_string();

    // Warm-up pass: loads every partition the mix touches into the
    // resident cache — the steady state a long-lived daemon serves from.
    {
        let mut client = Client::connect(&addr).expect("connect");
        for req in &requests {
            client.send(req).expect("warm-up");
        }
    }

    let mut chunks: Vec<Vec<Request>> = vec![Vec::new(); N_CLIENTS];
    for (i, req) in requests.iter().enumerate() {
        chunks[i % N_CLIENTS].push(req.clone());
    }
    let t0 = std::time::Instant::now();
    let workers: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut lats = Vec::with_capacity(chunk.len());
                let mut shed = 0u64;
                for req in &chunk {
                    let t = std::time::Instant::now();
                    let response = client.send(req).expect("send");
                    lats.push(t.elapsed());
                    if !response.contains("\"ok\":true") {
                        shed += 1;
                    }
                }
                (lats, shed)
            })
        })
        .collect();
    let mut lats = Vec::with_capacity(requests.len());
    let mut shed = 0u64;
    for w in workers {
        let (l, s) = w.join().expect("client thread");
        lats.extend(l);
        shed += s;
    }
    let daemon = t0.elapsed();
    let stolen = cluster.metrics().snapshot().tasks_stolen;
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let served = requests.len() as u64 - shed;
    let daemon_qps = requests.len() as f64 / daemon.as_secs_f64().max(1e-9);
    lats.sort();
    let p99 = lats[lats.len().saturating_sub(1) * 99 / 100];
    let speedup = daemon_qps / cold_qps.max(1e-9);
    print_table(
        &["Mode", "Total", "QPS", "p99", "Shed"],
        &[
            vec![
                "cold per-query open".into(),
                secs(cold),
                format!("{cold_qps:.1}"),
                "-".into(),
                "-".into(),
            ],
            vec![
                format!("resident daemon ({N_CLIENTS} clients)"),
                secs(daemon),
                format!("{daemon_qps:.1}"),
                format!("{:.1} ms", p99.as_secs_f64() * 1e3),
                shed.to_string(),
            ],
        ],
    );
    println!(
        "resident speedup: {speedup:.2}x at a {DEADLINE_MS} ms per-request deadline \
         ({stolen} stolen task(s) during the timed pass)"
    );

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let json = format!(
        "{{\n  \"bench\": \"server\",\n  \"dataset\": \"RandomWalk\",\n  \"n_records\": {n},\n  \"n_queries\": {},\n  \"mix\": \"exact/knn alternating, shared-scan batch every 5th\",\n  \"k\": {K},\n  \"clients\": {N_CLIENTS},\n  \"deadline_ms\": {DEADLINE_MS},\n  \"cold\": {{\n    \"total_ms\": {:.3},\n    \"qps\": {:.3}\n  }},\n  \"daemon\": {{\n    \"total_ms\": {:.3},\n    \"qps\": {:.3},\n    \"p99_ms\": {:.3},\n    \"served\": {served},\n    \"shed\": {shed}\n  }},\n  \"speedup\": {:.3}\n}}\n",
        requests.len(),
        cold.as_secs_f64() * 1e3,
        cold_qps,
        daemon.as_secs_f64() * 1e3,
        daemon_qps,
        p99.as_secs_f64() * 1e3,
        speedup,
    );
    // Quick (CI smoke) runs must not clobber the checked-in full-scale
    // baseline numbers.
    if scale.base != FULL.base {
        println!("quick scale: not writing BENCH_server.json");
        return;
    }
    match std::fs::write("BENCH_server.json", &json) {
        Ok(()) => println!("wrote BENCH_server.json"),
        Err(e) => eprintln!("could not write BENCH_server.json: {e}"),
    }
}

/// Replica-aware load balancing under a Zipfian mix: the same skewed
/// workload is served by daemons over three stores — replication 1
/// (every hot block has one serveable copy: its node is the ceiling),
/// replication 2 (routing alternates the two copies: double the hot-set
/// service capacity), and replication 1 with adaptive hot-partition
/// re-replication (the server detects the hot set and raises just those
/// partitions to 2 copies in the background). Sequential passes verify
/// the answers are byte-identical across all three stores; concurrent
/// passes measure throughput and tail latency. Writes
/// `BENCH_balance.json`.
fn balance(scale: Scale) {
    banner("Balance", "replica-aware routing under a Zipfian mix (R1 vs R2 vs adaptive)");
    use std::sync::Arc;
    use tardis_cluster::{Cluster, ClusterConfig, DfsConfig};
    use tardis_server::{Client, HotSetConfig, Op, QueryServer, Request, ServerConfig};

    const K: usize = 10;
    const N_CLIENTS: usize = 8;
    const ZIPF_RANKS: u64 = 16;
    const ZIPF_S: f64 = 2.0;

    // Small partitions: with capacity 2000 < the 2048-record DFS block
    // size, every partition is exactly one block — the hot set is a
    // handful of blocks, the unit replication actually multiplies. The
    // store geometry is pinned across scales (scale varies the request
    // volume only) so the Zipfian mix always concentrates on a block
    // whose node would otherwise serialise the run.
    let n: u64 = 2_000;
    let n_requests = scale.queries * 12;
    let gen = Family::RandomWalk.generator();
    let index_cfg = TardisConfig {
        g_max_size: 2_000,
        l_max_size: 500,
        ..TardisConfig::default()
    };
    // Serving pays the fig14-style simulated HDFS read latency, with the
    // cache disabled so every logical read exercises replica routing.
    let dfs_cfg = |replication: u32| DfsConfig {
        read_latency: Duration::from_millis(2),
        cache_bytes: 0,
        replication,
        datanodes: 3,
        ..DfsConfig::default()
    };

    // Zipfian over ZIPF_RANKS distinct stored series, s = 2: the top
    // rank draws ~60% of the mix. Deterministic LCG per request index.
    let weights: Vec<f64> = (0..ZIPF_RANKS)
        .map(|r| 1.0 / ((r + 1) as f64).powf(ZIPF_S))
        .collect();
    let total_w: f64 = weights.iter().sum();
    let rank_of = |i: u64| -> u64 {
        let mut x = i.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xD1B5);
        x ^= x >> 33;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64 * total_w;
        let mut acc = 0.0;
        for (rank, w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                return rank as u64;
            }
        }
        ZIPF_RANKS - 1
    };
    let requests: Vec<Request> = (0..n_requests as u64)
        .map(|i| {
            let rid = (rank_of(i) * 613) % n;
            let mut r = if i % 3 == 2 {
                let mut r = Request::new(i + 1, Op::Exact);
                r.query = gen.series(rid).values().to_vec();
                r
            } else {
                let mut r = Request::new(i + 1, Op::Knn);
                r.query = gen.series(rid).values().to_vec();
                r.k = K;
                r.strategy = KnnStrategy::OnePartition;
                r
            };
            r.deadline_ms = None;
            r
        })
        .collect();

    let build_store = |dir: &std::path::Path, replication: u32| {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir).expect("create store dir");
        // Build without the read latency — only serving is timed.
        let cluster = Cluster::at_dir(
            dir,
            ClusterConfig {
                dfs: DfsConfig {
                    replication,
                    datanodes: 3,
                    ..DfsConfig::default()
                },
                ..ClusterConfig::default()
            },
        )
        .expect("cluster");
        tardis_data::write_dataset(&cluster, "ds", gen.as_ref(), n, tardis_bench::BLOCK_RECORDS)
            .expect("write dataset");
        let (index, _) = TardisIndex::build(&cluster, "ds", &index_cfg).expect("build");
        index.save(&cluster, "idx").expect("save");
    };
    let serve = |dir: &std::path::Path,
                 replication: u32,
                 hot: Option<HotSetConfig>|
     -> (Arc<Cluster>, tardis_server::ServerHandle, String) {
        let cluster = Arc::new(
            Cluster::at_dir(
                dir,
                ClusterConfig {
                    dfs: dfs_cfg(replication),
                    ..ClusterConfig::default()
                },
            )
            .expect("cluster"),
        );
        let index = Arc::new(TardisIndex::open(&cluster, "idx").expect("open"));
        let handle = QueryServer::start(
            Arc::clone(&cluster),
            index,
            ServerConfig {
                max_in_flight: N_CLIENTS * 2,
                queue_capacity: n_requests.max(64),
                hot_set: hot,
                ..ServerConfig::default()
            },
        )
        .expect("server start");
        let addr = handle.addr().to_string();
        (cluster, handle, addr)
    };
    let sequential_pass = |addr: &str| -> Vec<String> {
        let mut client = Client::connect(addr).expect("connect");
        requests
            .iter()
            .map(|req| client.send(req).expect("send"))
            .collect()
    };
    let timed_pass = |addr: &str| -> (Duration, Duration, u64) {
        let mut chunks: Vec<Vec<Request>> = vec![Vec::new(); N_CLIENTS];
        for (i, req) in requests.iter().enumerate() {
            chunks[i % N_CLIENTS].push(req.clone());
        }
        let t0 = std::time::Instant::now();
        let workers: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let addr = addr.to_string();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let mut lats = Vec::with_capacity(chunk.len());
                    let mut shed = 0u64;
                    for req in &chunk {
                        let t = std::time::Instant::now();
                        let response = client.send(req).expect("send");
                        lats.push(t.elapsed());
                        if !response.contains("\"ok\":true") {
                            shed += 1;
                        }
                    }
                    (lats, shed)
                })
            })
            .collect();
        let mut lats = Vec::with_capacity(requests.len());
        let mut shed = 0u64;
        for w in workers {
            let (l, s) = w.join().expect("client thread");
            lats.extend(l);
            shed += s;
        }
        let total = t0.elapsed();
        lats.sort();
        let p99 = lats[lats.len().saturating_sub(1) * 99 / 100];
        (total, p99, shed)
    };

    let root = std::env::temp_dir().join(format!("tardis-bench-balance-{}", std::process::id()));
    let dir_r1 = root.join("r1");
    let dir_r2 = root.join("r2");
    let dir_ad = root.join("adaptive");
    build_store(&dir_r1, 1);
    build_store(&dir_r2, 2);
    build_store(&dir_ad, 1);

    // --- R1: the hotspot baseline. The sequential pass doubles as the
    // answer oracle for the other two stores.
    let (c1, h1, addr1) = serve(&dir_r1, 1, None);
    let oracle = sequential_pass(&addr1);
    let (r1_total, r1_p99, r1_shed) = timed_pass(&addr1);
    let m1 = c1.metrics().snapshot();
    h1.shutdown();

    // --- R2: two routable copies of every block.
    let (c2, h2, addr2) = serve(&dir_r2, 2, None);
    assert_eq!(sequential_pass(&addr2), oracle, "R2 answers diverged from R1");
    let (r2_total, r2_p99, r2_shed) = timed_pass(&addr2);
    let m2 = c2.metrics().snapshot();
    h2.shutdown();

    // --- Adaptive: R1 store, hot set re-replicated to 2 in background.
    let (ca, ha, addra) = serve(
        &dir_ad,
        1,
        Some(HotSetConfig {
            interval: Duration::from_millis(100),
            top_k: 4,
            min_accesses: 2.0,
            target_replication: 2,
            ..HotSetConfig::default()
        }),
    );
    // The warm pass is also the oracle check; it feeds the access
    // counters the hot-set detector diffs.
    assert_eq!(sequential_pass(&addra), oracle, "adaptive answers diverged from R1");
    // Wait for the background pass to actually widen the hot partitions.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while ca.metrics().snapshot().rereplications == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(sequential_pass(&addra), oracle, "post-re-replication answers diverged");
    let (ad_total, ad_p99, ad_shed) = timed_pass(&addra);
    let ma = ca.metrics().snapshot();
    ha.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    let qps = |total: Duration| n_requests as f64 / total.as_secs_f64().max(1e-9);
    let (r1_qps, r2_qps, ad_qps) = (qps(r1_total), qps(r2_total), qps(ad_total));
    let speedup = r2_qps / r1_qps.max(1e-9);
    let ad_speedup = ad_qps / r1_qps.max(1e-9);
    let spread = |m: &tardis_cluster::MetricsSnapshot| -> String {
        let reads: Vec<u64> = m.node_reads.iter().take(3).copied().collect();
        format!("{reads:?}")
    };
    print_table(
        &["Store", "Total", "QPS", "p99", "Shed", "NodeReads"],
        &[
            vec![
                "replication 1".into(),
                secs(r1_total),
                format!("{r1_qps:.1}"),
                format!("{:.1} ms", r1_p99.as_secs_f64() * 1e3),
                r1_shed.to_string(),
                spread(&m1),
            ],
            vec![
                "replication 2".into(),
                secs(r2_total),
                format!("{r2_qps:.1}"),
                format!("{:.1} ms", r2_p99.as_secs_f64() * 1e3),
                r2_shed.to_string(),
                spread(&m2),
            ],
            vec![
                "adaptive (R1 + hot set)".into(),
                secs(ad_total),
                format!("{ad_qps:.1}"),
                format!("{:.1} ms", ad_p99.as_secs_f64() * 1e3),
                ad_shed.to_string(),
                spread(&ma),
            ],
        ],
    );
    println!(
        "R1->R2 speedup: {speedup:.2}x; adaptive: {ad_speedup:.2}x with {} \
         re-replication(s) adding {} replica(s); answers byte-identical across stores",
        ma.rereplications, ma.replicas_added
    );

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let json = format!(
        "{{\n  \"bench\": \"balance\",\n  \"dataset\": \"RandomWalk\",\n  \"n_records\": {n},\n  \"n_requests\": {n_requests},\n  \"zipf_ranks\": {ZIPF_RANKS},\n  \"zipf_s\": {ZIPF_S},\n  \"clients\": {N_CLIENTS},\n  \"read_latency_ms\": 2,\n  \"answers_identical\": true,\n  \"r1\": {{\n    \"qps\": {:.3},\n    \"p99_ms\": {:.3},\n    \"shed\": {r1_shed},\n    \"node_reads\": {:?}\n  }},\n  \"r2\": {{\n    \"qps\": {:.3},\n    \"p99_ms\": {:.3},\n    \"shed\": {r2_shed},\n    \"node_reads\": {:?}\n  }},\n  \"adaptive\": {{\n    \"qps\": {:.3},\n    \"p99_ms\": {:.3},\n    \"shed\": {ad_shed},\n    \"rereplications\": {},\n    \"replicas_added\": {},\n    \"node_reads\": {:?}\n  }},\n  \"speedup_r1_to_r2\": {:.3},\n  \"speedup_r1_to_adaptive\": {:.3}\n}}\n",
        r1_qps,
        r1_p99.as_secs_f64() * 1e3,
        &m1.node_reads[..3],
        r2_qps,
        r2_p99.as_secs_f64() * 1e3,
        &m2.node_reads[..3],
        ad_qps,
        ad_p99.as_secs_f64() * 1e3,
        ma.rereplications,
        ma.replicas_added,
        &ma.node_reads[..3],
        speedup,
        ad_speedup,
    );
    // Quick (CI smoke) runs must not clobber the checked-in full-scale
    // baseline numbers.
    if scale.base != FULL.base {
        println!("quick scale: not writing BENCH_balance.json");
        return;
    }
    match std::fs::write("BENCH_balance.json", &json) {
        Ok(()) => println!("wrote BENCH_balance.json"),
        Err(e) => eprintln!("could not write BENCH_balance.json: {e}"),
    }
}

/// Continuous ingest through the resident daemon: an ingest client
/// seals batches into delta partitions while query clients hammer the
/// same daemon and the background compactor folds deltas into the base.
/// Measures sustained ingest throughput (records/s), query p99 *during*
/// ingest+compaction (queries never block on writers — they read an
/// immutable index snapshot), and the compaction counters. Ends with a
/// correctness probe: an ingested record must be exact-matchable after
/// everything is folded. Writes `BENCH_ingest.json`.
fn ingest(scale: Scale) {
    banner(
        "Ingest",
        "continuous ingest: sealed deltas + background compaction under queries",
    );
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use tardis_cluster::{Cluster, ClusterConfig, DfsConfig};
    use tardis_server::{Client, CompactorConfig, Op, QueryServer, Request, ServerConfig};

    const K: usize = 10;
    const N_QUERY_CLIENTS: usize = 3;
    const BATCH: u64 = 200;

    let gen = Family::RandomWalk.generator();
    let n = scale.base;
    let n_batches = (scale.queries as u64 / 4).max(8);
    let dir = std::env::temp_dir().join(format!("tardis-bench-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let config = || ClusterConfig {
        dfs: DfsConfig {
            cache_bytes: 256 << 20,
            read_latency: Duration::from_millis(2),
            ..DfsConfig::default()
        },
        ..ClusterConfig::default()
    };
    {
        let cluster = Cluster::at_dir(&dir, config()).expect("cluster");
        tardis_data::write_dataset(&cluster, "ds", gen.as_ref(), n, tardis_bench::BLOCK_RECORDS)
            .expect("write dataset");
        let cfg = TardisConfig {
            g_max_size: tardis_bench::PARTITION_CAPACITY,
            l_max_size: tardis_bench::LOCAL_THRESHOLD,
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&cluster, "ds", &cfg).expect("build");
        index.save(&cluster, "idx").expect("save");
    }

    let cluster = Arc::new(Cluster::at_dir(&dir, config()).expect("cluster"));
    let index = Arc::new(TardisIndex::open(&cluster, "idx").expect("open"));
    let handle = QueryServer::start(
        Arc::clone(&cluster),
        Arc::clone(&index),
        ServerConfig {
            max_in_flight: N_QUERY_CLIENTS * 2 + 2,
            queue_capacity: 256,
            manifest: Some("idx".to_string()),
            compaction: Some(CompactorConfig {
                interval: Duration::from_millis(50),
                min_deltas: 2,
            }),
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = handle.addr().to_string();

    // Query clients loop over stored base records until ingest finishes;
    // every latency is sampled *while* deltas are being sealed and folded.
    let done = Arc::new(AtomicBool::new(false));
    let query_workers: Vec<_> = (0..N_QUERY_CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            let done = Arc::clone(&done);
            let gen = Family::RandomWalk.generator();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut lats = Vec::new();
                let mut i = c as u64;
                while !done.load(Ordering::SeqCst) {
                    let rid = (i * 389) % n;
                    let mut r = if i % 2 == 0 {
                        let mut r = Request::new(i + 1, Op::Exact);
                        r.query = gen.series(rid).values().to_vec();
                        r
                    } else {
                        let mut r = Request::new(i + 1, Op::Knn);
                        r.query = gen.series(rid).values().to_vec();
                        r.k = K;
                        r
                    };
                    r.deadline_ms = Some(5_000);
                    let t = std::time::Instant::now();
                    let response = client.send(&r).expect("send");
                    lats.push(t.elapsed());
                    assert!(
                        response.contains("\"ok\":true"),
                        "query failed during ingest: {response}"
                    );
                    i += 1;
                }
                lats
            })
        })
        .collect();

    // The ingest client: sequential sealed batches of fresh records.
    let t0 = std::time::Instant::now();
    let mut ingest_client = Client::connect(&addr).expect("connect");
    for b in 0..n_batches {
        let start = n + b * BATCH;
        let mut r = Request::new(b + 1, Op::Ingest);
        r.records = (start..start + BATCH)
            .map(|rid| (rid, gen.series(rid).values().to_vec()))
            .collect();
        let response = ingest_client.send(&r).expect("ingest");
        assert!(
            response.contains("\"ok\":true"),
            "ingest failed: {response}"
        );
    }
    let ingest_time = t0.elapsed();
    done.store(true, Ordering::SeqCst);
    let mut lats = Vec::new();
    for w in query_workers {
        lats.extend(w.join().expect("query thread"));
    }

    // Fold whatever the background compactor has not reached yet, then
    // probe an ingested record end-to-end.
    let compact_resp = ingest_client
        .send(&Request::new(9_999, Op::Compact))
        .expect("compact");
    assert!(
        compact_resp.contains("\"ok\":true"),
        "compact failed: {compact_resp}"
    );
    let probe_rid = n + (n_batches / 2) * BATCH + 3;
    let mut probe = Request::new(10_000, Op::Exact);
    probe.query = gen.series(probe_rid).values().to_vec();
    let probe_resp = ingest_client.send(&probe).expect("probe");
    assert!(
        probe_resp.contains("\"ok\":true") && probe_resp.contains(&probe_rid.to_string()),
        "ingested record not found after compaction: {probe_resp}"
    );

    let snap = cluster.metrics().snapshot();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let total_records = n_batches * BATCH;
    let ingest_rps = total_records as f64 / ingest_time.as_secs_f64().max(1e-9);
    lats.sort();
    let p99 = if lats.is_empty() {
        Duration::ZERO
    } else {
        lats[lats.len().saturating_sub(1) * 99 / 100]
    };
    print_table(
        &["Metric", "Value"],
        &[
            vec!["base records".into(), n.to_string()],
            vec![
                "ingested".into(),
                format!("{total_records} ({n_batches} x {BATCH})"),
            ],
            vec!["ingest throughput".into(), format!("{ingest_rps:.0} records/s")],
            vec![
                "queries during ingest".into(),
                format!("{} (p99 {:.1} ms)", lats.len(), p99.as_secs_f64() * 1e3),
            ],
            vec!["deltas sealed".into(), snap.deltas_sealed.to_string()],
            vec!["compactions".into(), snap.compactions.to_string()],
            vec![
                "records folded".into(),
                snap.compaction_records_folded.to_string(),
            ],
        ],
    );
    println!("(queries read an immutable snapshot: writers never block them;");
    println!(" probe rid {probe_rid} exact-matched after the final fold)");

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"dataset\": \"RandomWalk\",\n  \"base_records\": {n},\n  \"batches\": {n_batches},\n  \"batch_records\": {BATCH},\n  \"query_clients\": {N_QUERY_CLIENTS},\n  \"ingest\": {{\n    \"total_ms\": {:.3},\n    \"records_per_s\": {:.3}\n  }},\n  \"queries_during_ingest\": {{\n    \"count\": {},\n    \"p99_ms\": {:.3}\n  }},\n  \"compaction\": {{\n    \"deltas_sealed\": {},\n    \"compactions\": {},\n    \"records_folded\": {}\n  }}\n}}\n",
        ingest_time.as_secs_f64() * 1e3,
        ingest_rps,
        lats.len(),
        p99.as_secs_f64() * 1e3,
        snap.deltas_sealed,
        snap.compactions,
        snap.compaction_records_folded,
    );
    // Quick (CI smoke) runs must not clobber the checked-in full-scale
    // baseline numbers.
    if scale.base != FULL.base {
        println!("quick scale: not writing BENCH_ingest.json");
        return;
    }
    match std::fs::write("BENCH_ingest.json", &json) {
        Ok(()) => println!("wrote BENCH_ingest.json"),
        Err(e) => eprintln!("could not write BENCH_ingest.json: {e}"),
    }
}

/// Normalized histogram of actual partition sizes (15-bucket analogue of
/// the paper's 15 MB-interval histogram).
fn size_histogram(index: &TardisIndex) -> Vec<f64> {
    const BUCKETS: usize = 15;
    let sizes: Vec<u64> = index.partitions().iter().map(|p| p.n_records).collect();
    let max = tardis_bench::PARTITION_CAPACITY as f64 * 1.5;
    let mut counts = vec![0f64; BUCKETS];
    for &s in &sizes {
        let idx = ((s as f64 / max) * BUCKETS as f64) as usize;
        counts[idx.min(BUCKETS - 1)] += 1.0;
    }
    let total: f64 = counts.iter().sum();
    if total > 0.0 {
        for c in &mut counts {
            *c /= total;
        }
    }
    counts
}

/// External-sort bounded-memory construction vs the in-memory build:
/// wall time and peak heap at base scale for both paths, then the
/// sorted build alone at 10x — the scale the in-memory path is no
/// longer comfortable at. The clusters are disk-backed (spilled runs
/// must hit real storage) and each phase runs in a fresh process-wide
/// peak-heap window. Writes `BENCH_build.json`.
fn build(scale: Scale) {
    banner("Build", "in-memory vs external-sort (bounded memory) construction");
    use tardis_cluster::obs::peak;
    use tardis_cluster::{Cluster, ClusterConfig};
    use tardis_core::SortedBuildOptions;

    let family = Family::Noaa;
    let config = TardisConfig {
        g_max_size: tardis_bench::PARTITION_CAPACITY,
        l_max_size: tardis_bench::LOCAL_THRESHOLD,
        ..TardisConfig::default()
    };
    // Small enough that the sorted build spills many runs at both
    // scales: peak memory should track this budget, not the dataset.
    let opts = SortedBuildOptions {
        run_budget_bytes: 4 << 20,
    };
    let root = std::env::temp_dir().join(format!("tardis-bench-build-{}", std::process::id()));

    // One phase: dataset written, allocator peak reset, one build run.
    let phase = |label: &str, n: u64, sorted: bool| -> (std::time::Duration, u64, usize) {
        let dir = root.join(label);
        std::fs::create_dir_all(&dir).expect("bench dir");
        let cluster = Cluster::at_dir(&dir, ClusterConfig::default()).expect("cluster");
        let gen = family.generator();
        tardis_data::write_dataset(&cluster, "data", gen.as_ref(), n, tardis_bench::BLOCK_RECORDS)
            .expect("write dataset");
        peak::reset_peak();
        let t = std::time::Instant::now();
        let (index, report) = if sorted {
            TardisIndex::build_sorted(&cluster, "data", &config, &opts).expect("sorted build")
        } else {
            TardisIndex::build(&cluster, "data", &config).expect("build")
        };
        let wall = t.elapsed();
        let peak_bytes = peak::peak_bytes();
        assert_eq!(report.n_records, n);
        let n_partitions = index.n_partitions();
        drop(index);
        drop(cluster);
        std::fs::remove_dir_all(&dir).ok();
        (wall, peak_bytes, n_partitions)
    };

    let base = scale.base;
    let big = base * 10;
    let (mem_wall, mem_peak, mem_parts) = phase("mem-1x", base, false);
    let (sorted_wall, sorted_peak, sorted_parts) = phase("sorted-1x", base, true);
    assert_eq!(mem_parts, sorted_parts, "builds disagree on partitioning");
    let (big_wall, big_peak, big_parts) = phase("sorted-10x", big, true);
    std::fs::remove_dir_all(&root).ok();

    print_table(
        &["Build", "Records", "Wall", "Peak heap", "Partitions"],
        &[
            vec![
                "in-memory".into(),
                base.to_string(),
                secs(mem_wall),
                human_bytes(mem_peak as usize),
                mem_parts.to_string(),
            ],
            vec![
                "sorted (4 MiB budget)".into(),
                base.to_string(),
                secs(sorted_wall),
                human_bytes(sorted_peak as usize),
                sorted_parts.to_string(),
            ],
            vec![
                "sorted (4 MiB budget)".into(),
                big.to_string(),
                secs(big_wall),
                human_bytes(big_peak as usize),
                big_parts.to_string(),
            ],
        ],
    );
    let growth = big_peak as f64 / sorted_peak.max(1) as f64;
    println!(
        "peak-heap growth for 10x more data on the sorted path: {growth:.2}x \
         (flat-memory contract: stays near 1x while the dataset grows 10x)"
    );

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let json = format!(
        "{{\n  \"bench\": \"build\",\n  \"dataset\": \"{}\",\n  \"run_budget_bytes\": {},\n  \"in_memory\": {{\n    \"n_records\": {},\n    \"wall_ms\": {:.3},\n    \"peak_heap_bytes\": {}\n  }},\n  \"sorted_1x\": {{\n    \"n_records\": {},\n    \"wall_ms\": {:.3},\n    \"peak_heap_bytes\": {}\n  }},\n  \"sorted_10x\": {{\n    \"n_records\": {},\n    \"wall_ms\": {:.3},\n    \"peak_heap_bytes\": {}\n  }},\n  \"sorted_peak_growth_10x\": {:.3}\n}}\n",
        family.name(),
        opts.run_budget_bytes,
        base,
        mem_wall.as_secs_f64() * 1e3,
        mem_peak,
        base,
        sorted_wall.as_secs_f64() * 1e3,
        sorted_peak,
        big,
        big_wall.as_secs_f64() * 1e3,
        big_peak,
        growth,
    );
    // Quick (CI smoke) runs must not clobber the checked-in full-scale
    // baseline numbers.
    if scale.base != FULL.base {
        println!("quick scale: not writing BENCH_build.json");
        return;
    }
    match std::fs::write("BENCH_build.json", &json) {
        Ok(()) => println!("wrote BENCH_build.json"),
        Err(e) => eprintln!("could not write BENCH_build.json: {e}"),
    }
}
