//! Lower-bound distance kernels: the pruning primitives behind every
//! query strategy.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tardis_data::{RandomWalk, SeriesGen};
use tardis_isax::{
    mindist_paa_isax, mindist_paa_sax, mindist_paa_sigt, mindist_sax, paa, ISaxWord, SaxWord,
    SigT,
};

fn bench_mindist(c: &mut Criterion) {
    let gen = RandomWalk::with_len(3, 256);
    let queries: Vec<Vec<f64>> = (0..64u64)
        .map(|rid| paa(gen.series(rid).values(), 8).unwrap())
        .collect();
    let words: Vec<SaxWord> = (100..164u64)
        .map(|rid| SaxWord::from_series(gen.series(rid).values(), 8, 6).unwrap())
        .collect();
    let sigs: Vec<SigT> = words.iter().map(SigT::from_sax).collect();
    let isax_words: Vec<ISaxWord> = words
        .iter()
        .map(|w| ISaxWord::from_sax(w, 4).unwrap())
        .collect();

    let mut group = c.benchmark_group("mindist");
    group.bench_function("sax_sax", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (a, t) in words.iter().zip(words.iter().rev()) {
                acc += mindist_sax(a, t, 256).unwrap();
            }
            black_box(acc)
        })
    });
    group.bench_function("paa_sax", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (q, t) in queries.iter().zip(&words) {
                acc += mindist_paa_sax(q, t, 256).unwrap();
            }
            black_box(acc)
        })
    });
    group.bench_function("paa_sigt", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (q, t) in queries.iter().zip(&sigs) {
                acc += mindist_paa_sigt(q, t, 256).unwrap();
            }
            black_box(acc)
        })
    });
    group.bench_function("paa_isax_baseline", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (q, t) in queries.iter().zip(&isax_words) {
                acc += mindist_paa_isax(q, t, 256).unwrap();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_euclidean(c: &mut Criterion) {
    let gen = RandomWalk::with_len(4, 256);
    let series: Vec<_> = (0..64u64).map(|rid| gen.series(rid)).collect();
    let q = gen.series(1000);
    let mut group = c.benchmark_group("euclidean");
    group.bench_function("full_256", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in &series {
                acc += tardis_ts::squared_euclidean(q.values(), s.values());
            }
            black_box(acc)
        })
    });
    group.bench_function("early_abandon_256", |b| {
        // Tight threshold → most computations abandon early.
        b.iter(|| {
            let mut hits = 0usize;
            for s in &series {
                if tardis_ts::euclidean_early_abandon(q.values(), s.values(), 10.0).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mindist, bench_euclidean);
criterion_main!(benches);
