//! Ablation: the iSAX-T claim (§III-A).
//!
//! Cardinality reduction as a signature drop-right vs recomputing the
//! reduced word character by character, and vs the baseline's
//! per-character masked matching. This quantifies why word-level
//! cardinality makes the shuffle's routing step cheap.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tardis_data::{RandomWalk, SeriesGen};
use tardis_isax::{isaxt::reduce_naive, ISaxWord, SaxWord, SigT};

fn conversion_inputs(n: usize) -> Vec<SaxWord> {
    let gen = RandomWalk::with_len(5, 256);
    (0..n as u64)
        .map(|rid| SaxWord::from_series(gen.series(rid).values(), 8, 9).unwrap())
        .collect()
}

fn bench_conversion(c: &mut Criterion) {
    let words = conversion_inputs(256);
    let sigs: Vec<SigT> = words.iter().map(SigT::from_sax).collect();

    let mut group = c.benchmark_group("isaxt_conversion");
    group.bench_function("drop_right_9_to_3", |b| {
        b.iter(|| {
            for sig in &sigs {
                black_box(sig.drop_right(3).unwrap());
            }
        })
    });
    group.bench_function("naive_recompute_9_to_3", |b| {
        b.iter(|| {
            for word in &words {
                black_box(reduce_naive(word, 3).unwrap());
            }
        })
    });
    group.bench_function("from_series_card64", |b| {
        let gen = RandomWalk::with_len(5, 256);
        let series: Vec<_> = (0..64u64).map(|rid| gen.series(rid)).collect();
        b.iter(|| {
            for s in &series {
                black_box(SigT::from_sax(
                    &SaxWord::from_series(s.values(), 8, 6).unwrap(),
                ));
            }
        })
    });
    group.bench_function("from_series_card512_baseline", |b| {
        let gen = RandomWalk::with_len(5, 256);
        let series: Vec<_> = (0..64u64).map(|rid| gen.series(rid)).collect();
        b.iter(|| {
            for s in &series {
                black_box(SaxWord::from_series(s.values(), 8, 9).unwrap());
            }
        })
    });
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    // Signature prefix check (TARDIS routing primitive) vs per-character
    // masked covers (baseline table matching).
    let words = conversion_inputs(256);
    let sigs: Vec<SigT> = words.iter().map(SigT::from_sax).collect();
    let node_sigs: Vec<SigT> = sigs.iter().map(|s| s.drop_right(3).unwrap()).collect();
    let node_words: Vec<ISaxWord> = words
        .iter()
        .map(|w| ISaxWord::from_sax(w, 3).unwrap())
        .collect();

    let mut group = c.benchmark_group("signature_matching");
    group.bench_function("sigt_prefix_check", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (node, sig) in node_sigs.iter().zip(&sigs) {
                hits += node.is_prefix_of(sig) as usize;
            }
            black_box(hits)
        })
    });
    group.bench_function("isax_character_covers", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (node, word) in node_words.iter().zip(&words) {
                hits += node.covers(word).unwrap() as usize;
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_conversion, bench_matching);
criterion_main!(benches);
