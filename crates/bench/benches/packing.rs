//! FFD partition packing (§IV-B, Definition 5) — cost and bin quality at
//! global-index scales.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tardis_core::packing::{bin_lower_bound, ffd_pack};

fn workload(n: u64) -> Vec<(u64, u64)> {
    // Leaf sizes skewed like sampled sigTree leaves: many small, few big.
    (0..n)
        .map(|i| {
            let x = i.wrapping_mul(2654435761) % 1000;
            let size = if x < 700 { x % 80 + 1 } else { x % 900 + 100 };
            (i, size)
        })
        .collect()
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffd_pack");
    for n in [100u64, 1_000, 10_000] {
        let items = workload(n);
        group.bench_function(format!("pack_{n}_leaves"), |b| {
            b.iter(|| black_box(ffd_pack(items.clone(), 1_000).len()))
        });
    }
    group.finish();

    // Report packing quality once.
    let items = workload(10_000);
    let total: u64 = items.iter().map(|(_, s)| s).sum();
    let bins = ffd_pack(items, 1_000).len() as u64;
    let lb = bin_lower_bound(total, 1_000);
    eprintln!("[packing] 10k leaves: {bins} bins vs lower bound {lb} ({:.3}x)", bins as f64 / lb as f64);
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
