//! Query latency kernels (Figures 14–15's engines): exact match with and
//! without Bloom filters vs the baseline, and the three kNN strategies.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tardis_baseline::{baseline_exact_match, baseline_knn};
use tardis_bench::{Env, Family};
use tardis_core::{
    exact_match, exact_match_batch, exact_match_batch_naive, knn_approximate, knn_batch,
    knn_batch_naive, KnnStrategy,
};
use tardis_data::QueryWorkload;

fn bench_exact(c: &mut Criterion) {
    let env = Env::prepare(Family::Noaa, 6_000, Duration::ZERO);
    let (index, _) = env.build_tardis();
    let (baseline, _) = env.build_baseline();
    let workload = QueryWorkload::mixed(env.gen.as_ref(), env.n, 20, 11);

    let mut group = c.benchmark_group("exact_match");
    group.sample_size(20);
    group.bench_function("tardis_bf", |b| {
        b.iter(|| {
            for (q, _) in &workload.queries {
                black_box(exact_match(&index, &env.cluster, q, true).unwrap().matches.len());
            }
        })
    });
    group.bench_function("tardis_nobf", |b| {
        b.iter(|| {
            for (q, _) in &workload.queries {
                black_box(exact_match(&index, &env.cluster, q, false).unwrap().matches.len());
            }
        })
    });
    group.bench_function("baseline", |b| {
        b.iter(|| {
            for (q, _) in &workload.queries {
                black_box(
                    baseline_exact_match(&baseline, &env.cluster, q)
                        .unwrap()
                        .matches
                        .len(),
                );
            }
        })
    });
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let env = Env::prepare(Family::Noaa, 6_000, Duration::ZERO);
    let (index, _) = env.build_tardis();
    let (baseline, _) = env.build_baseline();
    let queries: Vec<_> = (0..5u64).map(|i| env.gen.series(i * 97)).collect();
    let k = 50;

    let mut group = c.benchmark_group("knn_k50");
    group.sample_size(10);
    for strategy in KnnStrategy::ALL {
        group.bench_function(strategy.name().replace(' ', "_").to_lowercase(), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(
                        knn_approximate(&index, &env.cluster, q, k, strategy)
                            .unwrap()
                            .neighbors
                            .len(),
                    );
                }
            })
        });
    }
    group.bench_function("baseline_target_node", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(baseline_knn(&baseline, &env.cluster, q, k).unwrap().neighbors.len());
            }
        })
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let env = Env::prepare(Family::Noaa, 6_000, Duration::ZERO);
    let (index, _) = env.build_tardis();
    // 100 queries over 25 distinct stored series: heavy partition
    // overlap, the workload shape the shared-scan engine is built for.
    let queries: Vec<_> = (0..100u64).map(|i| env.gen.series((i % 25) * 97)).collect();
    let k = 10;

    let mut group = c.benchmark_group("batch_knn_100q");
    group.sample_size(10);
    group.bench_function("naive_per_query", |b| {
        b.iter(|| {
            black_box(
                knn_batch_naive(&index, &env.cluster, &queries, k, KnnStrategy::MultiPartition)
                    .unwrap()
                    .len(),
            );
        })
    });
    group.bench_function("shared_scan", |b| {
        b.iter(|| {
            black_box(
                knn_batch(&index, &env.cluster, &queries, k, KnnStrategy::MultiPartition)
                    .unwrap()
                    .len(),
            );
        })
    });
    group.finish();

    let mut group = c.benchmark_group("batch_exact_100q");
    group.sample_size(10);
    group.bench_function("naive_per_query", |b| {
        b.iter(|| {
            black_box(
                exact_match_batch_naive(&index, &env.cluster, &queries, true)
                    .unwrap()
                    .len(),
            );
        })
    });
    group.bench_function("shared_scan", |b| {
        b.iter(|| {
            black_box(
                exact_match_batch(&index, &env.cluster, &queries, true)
                    .unwrap()
                    .len(),
            );
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exact, bench_knn, bench_batch);
criterion_main!(benches);
