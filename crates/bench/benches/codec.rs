//! Record codec: the data-path serialization every block read/write and
//! shuffle pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tardis_cluster::{decode_records, encode_records};
use tardis_data::{RandomWalk, SeriesGen};
use tardis_ts::Record;

fn bench_codec(c: &mut Criterion) {
    let gen = RandomWalk::with_len(7, 256);
    let records: Vec<Record> = (0..1_000u64).map(|rid| gen.record(rid)).collect();
    let block = encode_records(&records);

    let mut group = c.benchmark_group("codec");
    group.throughput(criterion::Throughput::Bytes(block.len() as u64));
    group.bench_function("encode_1k_records", |b| {
        b.iter(|| black_box(encode_records(&records).len()))
    });
    group.bench_function("decode_1k_records", |b| {
        b.iter(|| black_box(decode_records::<Record>(&block).unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
