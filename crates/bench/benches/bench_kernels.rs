//! Refine kernels: scalar baselines vs the lane kernels vs the full
//! block cascade (PAA pre-filter + contiguous-arena early abandoning).
//!
//! Each group fixes a candidate set of 256 series at lengths 64 / 256 /
//! 1024 and measures the cost of refining the whole set against one
//! query — the unit of work `refine_cascade` performs per partition.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tardis_data::{RandomWalk, SeriesGen};
use tardis_isax::{paa, segment_lengths};
use tardis_ts::{
    euclidean_early_abandon, euclidean_early_abandon_block, paa_prefilter_block,
    squared_euclidean, squared_euclidean_lanes,
};

const CANDIDATES: usize = 256;
const PAA_WIDTH: usize = 8;

struct Fixture {
    len: usize,
    query: Vec<f32>,
    query_paa: Vec<f64>,
    weights: Vec<f64>,
    /// Contiguous arena: candidate `i` at `[i*len, (i+1)*len)`.
    arena: Vec<f32>,
    /// PAA sidecar: candidate `i` at `[i*PAA_WIDTH, (i+1)*PAA_WIDTH)`.
    paa_arena: Vec<f64>,
    idxs: Vec<u32>,
    /// A mid-tight bound (the 10th-smallest true distance), so the
    /// early-abandon and pre-filter paths see a realistic mix.
    bound_sq: f64,
}

fn fixture(len: usize) -> Fixture {
    let gen = RandomWalk::with_len(7, len);
    let query: Vec<f32> = gen.series(100_000).values().to_vec();
    let query_paa = paa(&query, PAA_WIDTH).unwrap();
    let weights = segment_lengths(len, PAA_WIDTH).unwrap();
    let mut arena = Vec::with_capacity(CANDIDATES * len);
    let mut paa_arena = Vec::with_capacity(CANDIDATES * PAA_WIDTH);
    for rid in 0..CANDIDATES as u64 {
        let s = gen.series(rid);
        paa_arena.extend(paa(s.values(), PAA_WIDTH).unwrap());
        arena.extend_from_slice(s.values());
    }
    let mut dists: Vec<f64> = (0..CANDIDATES)
        .map(|i| squared_euclidean(&query, &arena[i * len..(i + 1) * len]))
        .collect();
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Fixture {
        len,
        query,
        query_paa,
        weights,
        arena,
        paa_arena,
        idxs: (0..CANDIDATES as u32).collect(),
        bound_sq: dists[9],
    }
}

fn bench_kernels(c: &mut Criterion) {
    for len in [64usize, 256, 1024] {
        let f = fixture(len);
        let mut group = c.benchmark_group(format!("kernels_{len}"));

        group.bench_function("scalar_full", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..CANDIDATES {
                    acc += squared_euclidean(&f.query, &f.arena[i * f.len..(i + 1) * f.len]);
                }
                black_box(acc)
            })
        });
        group.bench_function("lanes_full", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..CANDIDATES {
                    acc += squared_euclidean_lanes(&f.query, &f.arena[i * f.len..(i + 1) * f.len]);
                }
                black_box(acc)
            })
        });
        group.bench_function("scalar_early_abandon", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for i in 0..CANDIDATES {
                    if euclidean_early_abandon(
                        &f.query,
                        &f.arena[i * f.len..(i + 1) * f.len],
                        f.bound_sq,
                    )
                    .is_some()
                    {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        group.bench_function("block_early_abandon", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                euclidean_early_abandon_block(
                    &f.query,
                    &f.arena,
                    f.len,
                    &f.idxs,
                    f.bound_sq,
                    |_, d| {
                        if d.is_some() {
                            hits += 1;
                        }
                    },
                );
                black_box(hits)
            })
        });
        group.bench_function("block_cascade", |b| {
            let mut survivors = Vec::with_capacity(CANDIDATES);
            b.iter(|| {
                survivors.clear();
                let pruned = paa_prefilter_block(
                    &f.query_paa,
                    &f.weights,
                    &f.paa_arena,
                    PAA_WIDTH,
                    &f.idxs,
                    f.bound_sq,
                    &mut survivors,
                );
                let mut hits = 0usize;
                euclidean_early_abandon_block(
                    &f.query,
                    &f.arena,
                    f.len,
                    &survivors,
                    f.bound_sq,
                    |_, d| {
                        if d.is_some() {
                            hits += 1;
                        }
                    },
                );
                black_box((pruned, hits))
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
