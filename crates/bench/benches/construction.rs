//! End-to-end index construction at small scale (Figure 10's kernel):
//! TARDIS vs the DPiSAX baseline on the same stored dataset.
//!
//! The `experiments` binary runs the full Figure 10 sweep; this bench
//! keeps a fixed small size so `cargo bench` stays fast while still
//! exposing the construction-cost gap.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tardis_bench::{Env, Family};

fn bench_construction(c: &mut Criterion) {
    let env = Env::prepare(Family::RandomWalk, 4_000, Duration::ZERO);

    let mut group = c.benchmark_group("construction_4k");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));
    group.bench_function("tardis_full_build", |b| {
        b.iter(|| {
            let (index, report) = env.build_tardis();
            black_box((index.n_partitions(), report.n_records))
        })
    });
    group.bench_function("baseline_full_build", |b| {
        b.iter(|| {
            let (index, report) = env.build_baseline();
            black_box((index.n_partitions(), report.n_records))
        })
    });
    group.bench_function("tardis_global_only", |b| {
        let cfg = env.tardis_config();
        b.iter(|| {
            let g = tardis_core::TardisG::build(&env.cluster, &env.file, &cfg).unwrap();
            black_box(g.n_partitions())
        })
    });
    group.bench_function("baseline_global_only", |b| {
        let cfg = env.baseline_config();
        b.iter(|| {
            let g = tardis_baseline::DpisaxGlobal::build(&env.cluster, &env.file, &cfg).unwrap();
            black_box(g.n_partitions())
        })
    });
    group.finish();
}

/// The per-record routing cost the shuffle pays: TARDIS's signature
/// drop-right + tree descent vs the baseline's partition-table matching —
/// the paper's "high matching overhead" claim, isolated.
fn bench_routing(c: &mut Criterion) {
    let env = Env::prepare(Family::RandomWalk, 8_000, Duration::ZERO);
    let (tardis, _) = env.build_tardis();
    let (baseline, _) = env.build_baseline();
    let series: Vec<_> = (0..512u64).map(|rid| {
        env.gen.series(rid)
    }).collect();

    let mut group = c.benchmark_group("partition_routing");
    group.bench_function("tardis_global_route", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for ts in &series {
                acc += tardis.global().partition_of_series(ts).unwrap() as u64;
            }
            black_box(acc)
        })
    });
    group.bench_function("baseline_table_route", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for ts in &series {
                acc += baseline.global().partition_of_series(ts).unwrap() as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
    eprintln!(
        "[routing] tardis {} partitions, baseline {} table keys",
        tardis.n_partitions(),
        baseline.global().n_partitions()
    );
}

criterion_group!(benches, bench_construction, bench_routing);
criterion_main!(benches);
