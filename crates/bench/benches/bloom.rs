//! Bloom filter kernels: insert, positive probe, negative probe, and
//! serialization — the exact-match fast path of §V-A.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tardis_bloom::BloomFilter;
use tardis_data::{RandomWalk, SeriesGen};
use tardis_isax::{SaxWord, SigT};

fn signatures(n: u64, seed: u64) -> Vec<Vec<u8>> {
    let gen = RandomWalk::with_len(seed, 64);
    (0..n)
        .map(|rid| {
            SigT::from_sax(&SaxWord::from_series(gen.series(rid).values(), 8, 6).unwrap())
                .nibbles()
                .to_vec()
        })
        .collect()
}

fn bench_bloom(c: &mut Criterion) {
    let keys = signatures(10_000, 1);
    let absent = signatures(2_000, 2);

    let mut group = c.benchmark_group("bloom");
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut f = BloomFilter::with_capacity(10_000, 0.005);
            for k in &keys {
                f.insert(k);
            }
            black_box(f.items())
        })
    });

    let mut filter = BloomFilter::with_capacity(10_000, 0.005);
    for k in &keys {
        filter.insert(k);
    }
    group.bench_function("probe_present", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in keys.iter().take(2_000) {
                hits += filter.contains(k) as usize;
            }
            black_box(hits)
        })
    });
    group.bench_function("probe_absent", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in &absent {
                hits += filter.contains(k) as usize;
            }
            black_box(hits)
        })
    });
    group.bench_function("serialize_roundtrip", |b| {
        b.iter(|| {
            let bytes = filter.to_bytes();
            black_box(BloomFilter::from_bytes(&bytes).unwrap().items())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bloom);
criterion_main!(benches);
