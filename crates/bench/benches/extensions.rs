//! Benchmarks for the extension features: exact kNN, ε-range queries,
//! batch execution, and the DFS block cache.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tardis_bench::{Env, Family};
use tardis_core::query::exact_knn::exact_knn;
use tardis_core::{knn_approximate, knn_batch, range_query, KnnStrategy};

fn bench_extension_queries(c: &mut Criterion) {
    let env = Env::prepare(Family::Noaa, 6_000, Duration::ZERO);
    let (index, _) = env.build_tardis();
    let queries: Vec<_> = (0..4u64).map(|i| env.gen.series(i * 113)).collect();

    let mut group = c.benchmark_group("extension_queries");
    group.sample_size(10);
    group.bench_function("exact_knn_k20", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(exact_knn(&index, &env.cluster, q, 20).unwrap().neighbors.len());
            }
        })
    });
    group.bench_function("approx_knn_k20_multi", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(
                    knn_approximate(&index, &env.cluster, q, 20, KnnStrategy::MultiPartition)
                        .unwrap()
                        .neighbors
                        .len(),
                );
            }
        })
    });
    group.bench_function("range_eps5", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(range_query(&index, &env.cluster, q, 5.0).unwrap().matches.len());
            }
        })
    });
    group.bench_function("knn_batch_8_queries", |b| {
        let batch: Vec<_> = (0..8u64).map(|i| env.gen.series(i * 71)).collect();
        b.iter(|| {
            black_box(
                knn_batch(&index, &env.cluster, &batch, 20, KnnStrategy::OnePartition)
                    .unwrap()
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    use tardis_cluster::{Cluster, ClusterConfig, DfsConfig};
    let mk = |cache_bytes: usize| {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 2,
            dfs: DfsConfig {
                cache_bytes,
                ..DfsConfig::default()
            },
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..16).map(|i| vec![i as u8; 64 * 1024]).collect();
        let ids = cluster.dfs().write_blocks("data", blocks).unwrap();
        (cluster, ids)
    };

    let mut group = c.benchmark_group("block_cache");
    let (cold, cold_ids) = mk(0);
    group.bench_function("read_16_blocks_uncached", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for id in &cold_ids {
                total += cold.dfs().read_block(id).unwrap().len();
            }
            black_box(total)
        })
    });
    let (warm, warm_ids) = mk(16 << 20);
    // Prime the cache once.
    for id in &warm_ids {
        warm.dfs().read_block(id).unwrap();
    }
    group.bench_function("read_16_blocks_cached", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for id in &warm_ids {
                total += warm.dfs().read_block(id).unwrap().len();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extension_queries, bench_cache);
criterion_main!(benches);
