//! Ablation: the sigTree claim (§III-B).
//!
//! Insert throughput and routing (descend) cost of the K-ary sigTree vs
//! the binary iBT over the same data — the "compact structure, shorter
//! traversal" argument.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tardis_baseline::{BEntry, Ibt, IbtConfig, SplitPolicy};
use tardis_data::{RandomWalk, SeriesGen};
use tardis_isax::{SaxWord, SigT};
use tardis_sigtree::{SigTree, SigTreeConfig};
use tardis_ts::Record;

const N: u64 = 4_000;

fn sig_entries() -> Vec<SigT> {
    let gen = RandomWalk::with_len(9, 128);
    (0..N)
        .map(|rid| SigT::from_sax(&SaxWord::from_series(gen.series(rid).values(), 8, 6).unwrap()))
        .collect()
}

fn ibt_entries() -> Vec<BEntry> {
    let gen = RandomWalk::with_len(9, 128);
    (0..N)
        .map(|rid| {
            let ts = gen.series(rid);
            let word = SaxWord::from_series(ts.values(), 8, 9).unwrap();
            BEntry::new(word, Record::new(rid, ts))
        })
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let sigs = sig_entries();
    let bentries = ibt_entries();
    let mut group = c.benchmark_group("tree_insert");
    group.sample_size(10);
    group.bench_function("sigtree_insert_4k", |b| {
        b.iter(|| {
            let mut tree: SigTree<SigT> = SigTree::new(SigTreeConfig::storing(8, 6, 100));
            for s in &sigs {
                tree.insert(s.clone());
            }
            black_box(tree.n_nodes())
        })
    });
    group.bench_function("ibt_insert_4k", |b| {
        b.iter(|| {
            let mut tree = Ibt::new(IbtConfig {
                w: 8,
                max_bits: 9,
                threshold: 100,
                policy: SplitPolicy::Statistics,
            });
            for e in &bentries {
                tree.insert(e.clone());
            }
            black_box(tree.n_nodes())
        })
    });
    group.finish();
}

fn bench_descend(c: &mut Criterion) {
    let sigs = sig_entries();
    let bentries = ibt_entries();
    let mut sigtree: SigTree<SigT> = SigTree::new(SigTreeConfig::storing(8, 6, 100));
    for s in &sigs {
        sigtree.insert(s.clone());
    }
    let mut ibt = Ibt::new(IbtConfig {
        w: 8,
        max_bits: 9,
        threshold: 100,
        policy: SplitPolicy::Statistics,
    });
    for e in &bentries {
        ibt.insert(e.clone());
    }

    let mut group = c.benchmark_group("tree_descend");
    group.bench_function("sigtree_descend", |b| {
        b.iter(|| {
            for s in sigs.iter().take(512) {
                black_box(sigtree.descend(s));
            }
        })
    });
    group.bench_function("ibt_descend", |b| {
        b.iter(|| {
            for e in bentries.iter().take(512) {
                black_box(ibt.descend(&e.word));
            }
        })
    });
    group.finish();

    // Print the structural comparison once (shape evidence for the claim).
    let s = sigtree.stats();
    let i = ibt.stats();
    eprintln!(
        "[structure] sigTree: {} nodes, avg leaf depth {:.2}, max {} | iBT: {} nodes, avg leaf depth {:.2}, max {}",
        s.n_nodes, s.avg_leaf_depth, s.max_leaf_depth, i.n_nodes, i.avg_leaf_depth, i.max_leaf_depth
    );
}

criterion_group!(benches, bench_insert, bench_descend);
criterion_main!(benches);
