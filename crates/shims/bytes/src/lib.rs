//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the narrow subset of the `bytes` API its data path actually uses:
//! [`BytesMut`] as a growable write buffer, [`BufMut`] for little-endian
//! appends, and [`Buf`] for little-endian consumption from `&[u8]`.
//! Semantics match the real crate for this subset (panics on under-read,
//! just like `bytes` does).

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Little-endian append operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Little-endian consumption operations (subset of `bytes::Buf`).
///
/// Like the real crate, the `get_*` methods **panic** when fewer bytes
/// remain than requested; callers bounds-check first (see `need()` in the
/// cluster codec).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        buf.put_slice(b"xyz");
        assert_eq!(buf.len(), 1 + 2 + 4 + 8 + 4 + 8 + 3);

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.chunk(), b"xyz");
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn deref_and_to_vec() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[1, 2, 3]);
        let slice: &[u8] = &buf;
        assert_eq!(slice, &[1, 2, 3]);
        assert_eq!(buf.to_vec(), vec![1, 2, 3]);
    }
}
