//! Offline stand-in for the `criterion` crate.
//!
//! Provides the tiny API surface the workspace's benches use: a
//! [`Criterion`] handle, named benchmark groups, `bench_function` with a
//! [`Bencher`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a simple
//! median-of-batches timer — adequate for relative comparisons in this
//! repo, with none of the real crate's statistics, plotting, or history.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("\n== group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_millis(300),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
            if budget_start.elapsed() > self.measurement_time.saturating_mul(4) {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let extra = match self.throughput {
            Some(Throughput::Bytes(b)) if median > 0.0 => {
                format!("  ({:.1} MiB/s)", b as f64 / median / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / median)
            }
            _ => String::new(),
        };
        eprintln!(
            "{}/{id}: median {:.3} µs over {} samples{extra}",
            self.name,
            median * 1e6,
            samples.len()
        );
        self
    }

    /// Ends the group (printing is incremental; this is a no-op hook).
    pub fn finish(&mut self) {}
}

/// Per-benchmark iteration timer.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated runs of `f` (a small fixed batch per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const BATCH: u64 = 8;
        let t0 = Instant::now();
        for _ in 0..BATCH {
            black_box(f());
        }
        self.elapsed += t0.elapsed();
        self.iters += BATCH;
    }
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
