//! Offline stand-in for the `rand` crate.
//!
//! Provides [`rngs::SmallRng`] (an xoshiro256++ generator seeded through
//! splitmix64, the same construction the real `small_rng` feature uses),
//! the [`Rng`] extension trait with `gen` / `gen_bool` / `gen_range`, and
//! [`SeedableRng::seed_from_u64`]. Streams are deterministic per seed but
//! are **not** bit-identical to the real crate; everything in this
//! workspace derives expectations from the generated data itself, so only
//! internal consistency matters.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an rng ("standard"
/// distribution: full range for integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty, matching `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Debiased uniform draw in `[0, bound)`; `bound == 0` means the full
/// 64-bit range.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of a "standard"-distribution type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // Expand the seed with splitmix64, as rand_core does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(2);
        assert_ne!(SmallRng::seed_from_u64(1).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0u64..=5);
            assert!(y <= 5);
            let z = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&z));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(5).gen_range(5u32..5);
    }
}
