//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free API:
//! `lock()` / `read()` / `write()` return guards directly, recovering the
//! inner data from a poisoned lock instead of returning a `Result`
//! (matching `parking_lot`'s no-poisoning behaviour closely enough for
//! this workspace).

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning: a poisoned lock yields its inner guard.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
