//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests rely on:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`,
//!   with an optional `#![proptest_config(...)]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies, tuple strategies, [`strategy::Just`],
//!   [`arbitrary::any`], `prop::collection::{vec, hash_set}`,
//!   [`strategy::Strategy::prop_map`], and [`prop_oneof!`].
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (fully deterministic across runs — there is no
//! persistence file), and failing cases are reported but **not shrunk**.
//! The failure message includes the test name and case number, which is
//! enough to replay a failure under a debugger since the stream is a pure
//! function of those two values.

#![warn(missing_docs)]

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    /// Per-run configuration (subset of `proptest`'s).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Result type property bodies evaluate to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic generator handed to strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Rng for one case of one named property: a pure function of
        /// `(name, case)`, so reruns regenerate identical inputs.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no shrinking tree: `generate` draws a
    /// value directly.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// An empty union; populate with [`Union::or`].
        pub fn empty() -> Union<T> {
            Union {
                options: Vec::new(),
            }
        }

        /// Adds one alternative.
        pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Union<T> {
            self.options.push(Box::new(s));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! needs options");
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3)
    );
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `hash_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.lo >= self.hi {
                return self.lo;
            }
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vector of values from `elem`, sized by `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            // Duplicates are re-drawn a bounded number of times; a narrow
            // element domain may yield a smaller set, as in real proptest.
            let mut budget = target.saturating_mul(10) + 16;
            while out.len() < target && budget > 0 {
                out.insert(self.elem.generate(rng));
                budget -= 1;
            }
            out
        }
    }

    /// Hash set of values from `elem`, sized by `size` (best effort when
    /// the element domain is narrow).
    pub fn hash_set<S>(elem: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines seeded property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expands each `fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$attr:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let __rng = &mut $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $crate::__proptest_bind!(__rng; $($args)*);
                let __outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

/// Internal: binds `pattern in strategy` arguments for one case.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $var:ident in $strat:expr) => {
        let mut $var = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; mut $var:ident in $strat:expr, $($rest:tt)*) => {
        let mut $var = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $var:ident in $strat:expr) => {
        let $var = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Asserts a condition inside a property body; failure fails the case
/// with the formatted message (or the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values compare equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
///
/// The real crate rejects and redraws; here the case simply passes,
/// which preserves the contract tests rely on (the body after the
/// assumption never runs with a violating input).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let union = $crate::strategy::Union::empty();
        $(let union = union.or($strat);)+
        union
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(
            items in prop::collection::vec(0u32..100, 0..20),
            mut k in 1usize..5,
            f in -2.0f32..2.0,
            x in 1u8..=4,
        ) {
            k += 1;
            prop_assert!(items.len() < 20);
            prop_assert!(items.iter().all(|&v| v < 100));
            prop_assert!((2..=5).contains(&k));
            prop_assert!((-2.0..2.0).contains(&f), "f={}", f);
            prop_assert!((1..=4).contains(&x));
        }

        #[test]
        fn tuples_map_oneof_and_sets(
            pairs in prop::collection::vec((0u32..10, 0u64..5), 1..10),
            mapped in (0u32..50).prop_map(|v| v * 2),
            pick in prop_oneof![Just(1u8), Just(2u8)],
            set in prop::collection::hash_set(0u64..1000, 1..10),
            raw in any::<u64>(),
        ) {
            prop_assert!(!pairs.is_empty());
            prop_assert_eq!(mapped % 2, 0);
            prop_assert!(pick == 1 || pick == 2);
            prop_assert!(!set.is_empty());
            let _ = raw;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u32..1000, 5..10);
        let a = s.generate(&mut TestRng::for_case("t", 3));
        let b = s.generate(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut TestRng::for_case("t", 4));
        assert!(a != c || a.len() == c.len());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 0")]
    fn failure_reports_case() {
        // No #[test] attribute here: the fn is invoked directly below.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
