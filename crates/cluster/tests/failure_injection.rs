//! Failure-injection tests: the substrate must fail loudly and cleanly
//! when blocks are corrupted, truncated, or deleted out from under a
//! pipeline — never return wrong data.

use std::fs;
use std::sync::Arc;
use tardis_cluster::{
    decode_records, encode_records, BlockId, Cluster, ClusterConfig, ClusterError, Dfs,
    DfsConfig, Metrics,
};
use tardis_ts::{Record, TimeSeries};

fn record(rid: u64) -> Record {
    Record::new(rid, TimeSeries::new(vec![rid as f32; 8]))
}

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 2,
        ..ClusterConfig::default()
    })
    .unwrap()
}

/// On-disk paths of every stored replica of `id`, via the public
/// datanode-directory accessor.
fn replica_paths(dfs: &Dfs, id: &BlockId) -> Vec<std::path::PathBuf> {
    (0..dfs.datanodes())
        .map(|n| {
            dfs.datanode_dir(n)
                .join(&id.file)
                .join(format!("block-{:06}.bin", id.index))
        })
        .filter(|p| p.exists())
        .collect()
}

#[test]
fn corrupted_replica_is_masked_by_checksum_failover() {
    let c = cluster();
    let block = encode_records(&[record(1), record(2)]);
    let id = c.dfs().append_block("data", &block).unwrap();
    // Corrupt one stored replica in place (stomp the frame header).
    let paths = replica_paths(c.dfs(), &id);
    assert_eq!(paths.len(), 2, "default replication is 2");
    let mut bytes = fs::read(&paths[0]).unwrap();
    bytes[0] = 0xFF;
    bytes[1] = 0xFF;
    fs::write(&paths[0], &bytes).unwrap();

    // The checksum catches the damage and the healthy replica serves.
    let loaded = c.dfs().read_block(&id).unwrap();
    let records = decode_records::<Record>(&loaded).unwrap();
    assert_eq!(records.len(), 2);
    assert!(c.metrics().snapshot().checksum_failures >= 1);
}

#[test]
fn fully_corrupted_block_fails_loudly_not_garbage() {
    let c = cluster();
    let block = encode_records(&[record(1), record(2)]);
    let id = c.dfs().append_block("data", &block).unwrap();
    for path in replica_paths(c.dfs(), &id) {
        let mut bytes = fs::read(&path).unwrap();
        for b in bytes.iter_mut() {
            *b = 0xFF;
        }
        fs::write(&path, &bytes).unwrap();
    }
    assert!(matches!(
        c.dfs().read_block(&id),
        Err(ClusterError::AllReplicasFailed { .. })
    ));
}

#[test]
fn truncated_block_fails_decode() {
    let c = cluster();
    let block = encode_records(&[record(1), record(2), record(3)]);
    let id = c.dfs().append_block("data", &block).unwrap();
    // Truncate every replica: no healthy copy can mask the damage, and
    // the checksum frame must reject the short reads loudly.
    for path in replica_paths(c.dfs(), &id) {
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    }
    assert!(matches!(
        c.dfs().read_block(&id),
        Err(ClusterError::AllReplicasFailed { .. })
    ));
}

#[test]
fn deleted_file_mid_pipeline_errors() {
    let c = cluster();
    c.dfs()
        .write_blocks("data", vec![encode_records(&[record(1)])])
        .unwrap();
    let ids = c.dfs().list_blocks("data").unwrap();
    c.dfs().delete_file("data").unwrap();
    assert!(matches!(
        c.dfs().read_block(&ids[0]),
        Err(ClusterError::MissingBlock { .. })
    ));
    assert!(matches!(
        c.dfs().list_blocks("data"),
        Err(ClusterError::MissingFile { .. })
    ));
}

#[test]
fn block_id_to_wrong_file_is_missing() {
    let c = cluster();
    c.dfs()
        .write_blocks("a", vec![encode_records(&[record(1)])])
        .unwrap();
    let foreign = BlockId::new("b", 0);
    assert!(matches!(
        c.dfs().read_block(&foreign),
        Err(ClusterError::MissingBlock { .. })
    ));
}

#[test]
fn concurrent_appends_produce_distinct_blocks() {
    let c = Arc::new(cluster());
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            for i in 0..20u64 {
                c.dfs()
                    .append_block("shared", &encode_records(&[record(t * 100 + i)]))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let ids = c.dfs().list_blocks("shared").unwrap();
    assert_eq!(ids.len(), 160);
    // Every block decodes and every record appears exactly once.
    let mut seen = std::collections::HashSet::new();
    for id in ids {
        let bytes = c.dfs().read_block(&id).unwrap();
        for r in decode_records::<Record>(&bytes).unwrap() {
            assert!(seen.insert(r.rid));
        }
    }
    assert_eq!(seen.len(), 160);
}

#[test]
fn dfs_survives_pre_existing_partial_state() {
    // A directory with stray non-block files must not confuse listing.
    let root = std::env::temp_dir().join(format!("tardis-stray-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("node-0").join("data")).unwrap();
    fs::write(
        root.join("node-0").join("data").join("README.txt"),
        b"not a block",
    )
    .unwrap();
    let dfs = Dfs::at_dir(&root, DfsConfig::default(), Arc::new(Metrics::new())).unwrap();
    assert_eq!(dfs.list_blocks("data").unwrap().len(), 0);
    let id = dfs.append_block("data", &[1, 2, 3]).unwrap();
    assert_eq!(id.index, 0);
    assert_eq!(dfs.list_blocks("data").unwrap().len(), 1);
    fs::remove_dir_all(&root).unwrap();
}
