//! Failure-injection tests: the substrate must fail loudly and cleanly
//! when blocks are corrupted, truncated, or deleted out from under a
//! pipeline — never return wrong data.

use std::fs;
use std::sync::Arc;
use tardis_cluster::{
    decode_records, encode_records, BlockId, Cluster, ClusterConfig, ClusterError, Dfs,
    DfsConfig, Metrics,
};
use tardis_ts::{Record, TimeSeries};

fn record(rid: u64) -> Record {
    Record::new(rid, TimeSeries::new(vec![rid as f32; 8]))
}

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 2,
        ..ClusterConfig::default()
    })
    .unwrap()
}

#[test]
fn corrupted_block_fails_decode_not_garbage() {
    let c = cluster();
    let block = encode_records(&[record(1), record(2)]);
    let id = c.dfs().append_block("data", &block).unwrap();
    // Corrupt the stored file in place (flip the record count header).
    let path = c
        .dfs()
        .root()
        .join("data")
        .join(format!("block-{:06}.bin", id.index));
    let mut bytes = fs::read(&path).unwrap();
    bytes[0] = 0xFF;
    bytes[1] = 0xFF;
    fs::write(&path, &bytes).unwrap();

    let loaded = c.dfs().read_block(&id).unwrap();
    assert!(decode_records::<Record>(&loaded).is_err());
}

#[test]
fn truncated_block_fails_decode() {
    let c = cluster();
    let block = encode_records(&[record(1), record(2), record(3)]);
    let id = c.dfs().append_block("data", &block).unwrap();
    let path = c
        .dfs()
        .root()
        .join("data")
        .join(format!("block-{:06}.bin", id.index));
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let loaded = c.dfs().read_block(&id).unwrap();
    assert!(decode_records::<Record>(&loaded).is_err());
}

#[test]
fn deleted_file_mid_pipeline_errors() {
    let c = cluster();
    c.dfs()
        .write_blocks("data", vec![encode_records(&[record(1)])])
        .unwrap();
    let ids = c.dfs().list_blocks("data").unwrap();
    c.dfs().delete_file("data").unwrap();
    assert!(matches!(
        c.dfs().read_block(&ids[0]),
        Err(ClusterError::MissingBlock { .. })
    ));
    assert!(matches!(
        c.dfs().list_blocks("data"),
        Err(ClusterError::MissingFile { .. })
    ));
}

#[test]
fn block_id_to_wrong_file_is_missing() {
    let c = cluster();
    c.dfs()
        .write_blocks("a", vec![encode_records(&[record(1)])])
        .unwrap();
    let foreign = BlockId::new("b", 0);
    assert!(matches!(
        c.dfs().read_block(&foreign),
        Err(ClusterError::MissingBlock { .. })
    ));
}

#[test]
fn concurrent_appends_produce_distinct_blocks() {
    let c = Arc::new(cluster());
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            for i in 0..20u64 {
                c.dfs()
                    .append_block("shared", &encode_records(&[record(t * 100 + i)]))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let ids = c.dfs().list_blocks("shared").unwrap();
    assert_eq!(ids.len(), 160);
    // Every block decodes and every record appears exactly once.
    let mut seen = std::collections::HashSet::new();
    for id in ids {
        let bytes = c.dfs().read_block(&id).unwrap();
        for r in decode_records::<Record>(&bytes).unwrap() {
            assert!(seen.insert(r.rid));
        }
    }
    assert_eq!(seen.len(), 160);
}

#[test]
fn dfs_survives_pre_existing_partial_state() {
    // A directory with stray non-block files must not confuse listing.
    let root = std::env::temp_dir().join(format!("tardis-stray-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("data")).unwrap();
    fs::write(root.join("data").join("README.txt"), b"not a block").unwrap();
    let dfs = Dfs::at_dir(&root, DfsConfig::default(), Arc::new(Metrics::new())).unwrap();
    assert_eq!(dfs.list_blocks("data").unwrap().len(), 0);
    let id = dfs.append_block("data", &[1, 2, 3]).unwrap();
    assert_eq!(id.index, 0);
    assert_eq!(dfs.list_blocks("data").unwrap().len(), 1);
    fs::remove_dir_all(&root).unwrap();
}
