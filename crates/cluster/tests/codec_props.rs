//! Property tests for the hand-rolled binary codec: every encodable
//! shape round-trips exactly, any strict truncation of a block is a
//! decode *error* (never a panic), and corrupted or random bytes are
//! handled without panicking or reading past the buffer.

use proptest::prelude::*;
use tardis_cluster::{decode_records, encode_records, Decode, Encode};
use tardis_ts::{Record, TimeSeries};

fn records(rids: &[u64], lens: &[u8]) -> Vec<Record> {
    rids.iter()
        .zip(lens.iter().cycle())
        .map(|(&rid, &len)| {
            Record::new(
                rid,
                TimeSeries::new(
                    (0..len as usize)
                        .map(|i| (rid as f32).sin() + i as f32 * 0.25)
                        .collect(),
                ),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Records of arbitrary rid and length round-trip exactly through a
    /// block, and the encoded-length hint is exact for every shape.
    #[test]
    fn record_blocks_roundtrip(
        rids in prop::collection::vec(0u64..u64::MAX, 0..40),
        lens in prop::collection::vec(0u8..32, 1..8),
    ) {
        let items = records(&rids, &lens);
        let block = encode_records(&items);
        let hint: usize = 4 + items.iter().map(|r| r.encoded_len_hint()).sum::<usize>();
        prop_assert_eq!(block.len(), hint);
        let decoded: Vec<Record> = decode_records(&block).unwrap();
        prop_assert_eq!(decoded, items);
    }

    /// Every tuple shape the shuffle uses round-trips: bare keys, byte
    /// payloads, pairs, and nested pairs.
    #[test]
    fn tuple_shapes_roundtrip(
        keys in prop::collection::vec(0u64..u64::MAX, 0..50),
        payload in prop::collection::vec(prop::collection::vec(0u8..=255, 0..30), 0..20),
    ) {
        let block = encode_records(&keys);
        let back: Vec<u64> = decode_records(&block).unwrap();
        prop_assert_eq!(&back, &keys);

        let bytes: Vec<Vec<u8>> = payload.clone();
        let block = encode_records(&bytes);
        let back: Vec<Vec<u8>> = decode_records(&block).unwrap();
        prop_assert_eq!(&back, &bytes);

        let pairs: Vec<(u64, Vec<u8>)> = keys
            .iter()
            .zip(payload.iter().cycle().chain(std::iter::repeat(&vec![])))
            .map(|(&k, v)| (k, v.clone()))
            .collect();
        let block = encode_records(&pairs);
        let back: Vec<(u64, Vec<u8>)> = decode_records(&block).unwrap();
        prop_assert_eq!(&back, &pairs);

        let nested: Vec<((u64, u64), Vec<u8>)> = pairs
            .iter()
            .map(|(k, v)| ((*k, k.wrapping_mul(31)), v.clone()))
            .collect();
        let block = encode_records(&nested);
        let back: Vec<((u64, u64), Vec<u8>)> = decode_records(&block).unwrap();
        prop_assert_eq!(back, nested);
    }

    /// Chopping a non-empty block anywhere strictly before its end must
    /// produce a typed decode error — never a panic, never an `Ok`.
    #[test]
    fn any_truncation_is_an_error(
        rids in prop::collection::vec(0u64..10_000, 1..20),
        lens in prop::collection::vec(1u8..16, 1..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let items = records(&rids, &lens);
        let block = encode_records(&items);
        let cut = ((block.len() as f64) * cut_frac) as usize; // < block.len()
        let res = decode_records::<Record>(&block[..cut]);
        prop_assert!(res.is_err(), "truncation at {cut}/{} decoded", block.len());
    }

    /// Flipping one byte anywhere in a block never panics or over-reads;
    /// the decoder either rejects it or returns *some* well-formed value.
    #[test]
    fn single_byte_corruption_never_panics(
        rids in prop::collection::vec(0u64..10_000, 1..20),
        lens in prop::collection::vec(1u8..16, 1..4),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let items = records(&rids, &lens);
        let mut block = encode_records(&items);
        let pos = ((block.len() as f64) * pos_frac) as usize;
        block[pos] ^= flip;
        // The property is simply "no panic, no out-of-bounds": both
        // outcomes of decode are acceptable for corrupted input.
        let _ = decode_records::<Record>(&block);
    }

    /// Feeding completely arbitrary bytes to the decoder never panics,
    /// for every decodable shape.
    #[test]
    fn random_bytes_never_panic(
        junk in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let _ = decode_records::<Record>(&junk);
        let _ = decode_records::<u64>(&junk);
        let _ = decode_records::<Vec<u8>>(&junk);
        let _ = decode_records::<(u64, Vec<u8>)>(&junk);
    }

    /// A decoder consumes *exactly* the bytes its encoder produced: with
    /// arbitrary trailing bytes appended, single-item decode leaves the
    /// suffix untouched (proof there is no over-read).
    #[test]
    fn decode_consumes_exactly_what_encode_wrote(
        rid in 0u64..u64::MAX,
        len in 0u8..32,
        suffix in prop::collection::vec(0u8..=255, 0..50),
    ) {
        let item = records(&[rid], &[len]).pop().unwrap();
        let mut buf = bytes::BytesMut::new();
        item.encode(&mut buf);
        let mut wire = buf.to_vec();
        wire.extend_from_slice(&suffix);

        let mut slice: &[u8] = &wire;
        let decoded = Record::decode(&mut slice).unwrap();
        prop_assert_eq!(decoded, item);
        prop_assert_eq!(slice, &suffix[..], "decoder read past its encoding");
    }
}
