//! Integration tests for the DFS LRU block cache: correctness under
//! delete/rewrite, metering, latency savings, and interaction with the
//! fault-injection retry path.

use std::time::Duration;
use tardis_cluster::{Cluster, ClusterConfig, DfsConfig, FaultPlan, RetryPolicy};

fn cached_cluster(cache_bytes: usize, latency_ms: u64) -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 2,
        dfs: DfsConfig {
            read_latency: Duration::from_millis(latency_ms),
            write_latency: Duration::ZERO,
            cache_bytes,
            ..DfsConfig::default()
        },
        ..ClusterConfig::default()
    })
    .unwrap()
}

#[test]
fn repeated_reads_hit_cache() {
    let c = cached_cluster(1 << 20, 0);
    let id = c.dfs().append_block("f", &[1, 2, 3]).unwrap();
    assert_eq!(c.dfs().read_block(&id).unwrap(), vec![1, 2, 3]);
    assert_eq!(c.dfs().read_block(&id).unwrap(), vec![1, 2, 3]);
    assert_eq!(c.dfs().read_block(&id).unwrap(), vec![1, 2, 3]);
    let m = c.metrics().snapshot();
    assert_eq!(m.cache_misses, 1);
    assert_eq!(m.cache_hits, 2);
    assert_eq!(m.blocks_read, 1, "disk touched once");
    assert!(c.dfs().cache_used_bytes() >= 3);
}

#[test]
fn cache_disabled_by_default() {
    let c = Cluster::new(ClusterConfig {
        n_workers: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let id = c.dfs().append_block("f", &[9]).unwrap();
    c.dfs().read_block(&id).unwrap();
    c.dfs().read_block(&id).unwrap();
    let m = c.metrics().snapshot();
    assert_eq!(m.cache_hits, 0);
    assert_eq!(m.cache_misses, 0);
    assert_eq!(m.blocks_read, 2);
}

#[test]
fn delete_and_rewrite_never_serves_stale_bytes() {
    let c = cached_cluster(1 << 20, 0);
    let id = c.dfs().append_block("f", &[1]).unwrap();
    assert_eq!(c.dfs().read_block(&id).unwrap(), vec![1]);
    c.dfs().delete_file("f").unwrap();
    let id2 = c.dfs().append_block("f", &[2]).unwrap();
    assert_eq!(id2.index, 0, "re-created file restarts numbering");
    assert_eq!(c.dfs().read_block(&id2).unwrap(), vec![2], "no stale cache");
}

#[test]
fn cached_reads_skip_simulated_latency() {
    let c = cached_cluster(1 << 20, 15);
    let id = c.dfs().append_block("f", &[0; 64]).unwrap();
    let t0 = std::time::Instant::now();
    c.dfs().read_block(&id).unwrap();
    let cold = t0.elapsed();
    let t1 = std::time::Instant::now();
    for _ in 0..10 {
        c.dfs().read_block(&id).unwrap();
    }
    let hot = t1.elapsed();
    assert!(cold >= Duration::from_millis(15));
    assert!(hot < cold, "10 hot reads {hot:?} vs one cold {cold:?}");
}

#[test]
fn tiny_cache_evicts_but_stays_correct() {
    // Cache fits only one of the two blocks; answers stay right.
    let c = cached_cluster(100, 0);
    let a = c.dfs().append_block("f", &[1u8; 80]).unwrap();
    let b = c.dfs().append_block("f", &[2u8; 80]).unwrap();
    for _ in 0..5 {
        assert_eq!(c.dfs().read_block(&a).unwrap(), vec![1u8; 80]);
        assert_eq!(c.dfs().read_block(&b).unwrap(), vec![2u8; 80]);
    }
    assert!(c.dfs().cache_used_bytes() <= 100);
}

#[test]
fn hit_miss_accounting_matches_read_pattern() {
    let c = cached_cluster(1 << 20, 0);
    let ids: Vec<_> = (0..4)
        .map(|i| c.dfs().append_block("f", &[i as u8; 16]).unwrap())
        .collect();

    // First pass: 4 cold reads. Second and third pass: 8 hot reads.
    for _ in 0..3 {
        for id in &ids {
            c.dfs().read_block(id).unwrap();
        }
    }
    let m = c.metrics().snapshot();
    assert_eq!(m.cache_misses, 4);
    assert_eq!(m.cache_hits, 8);
    assert_eq!(m.blocks_read, 4, "disk touched once per block");
    assert_eq!(
        m.cache_hits + m.cache_misses,
        12,
        "every read is accounted exactly once"
    );
}

/// A read that fails with an injected fault, then succeeds on retry,
/// must still populate the cache: the *next* read of the same block is
/// a pure cache hit with no further disk I/O.
#[test]
fn retried_read_after_fault_repopulates_cache() {
    // p = 0.9 with a deep zero-backoff budget: the first uncached read
    // almost surely eats several injected faults before succeeding.
    let c = Cluster::new(ClusterConfig {
        n_workers: 2,
        dfs: DfsConfig {
            read_latency: Duration::ZERO,
            write_latency: Duration::ZERO,
            cache_bytes: 1 << 20,
            ..DfsConfig::default()
        },
        faults: Some(FaultPlan {
            seed: 0xCAC4E,
            block_read_fail_p: 0.9,
            ..FaultPlan::default()
        }),
        retry: RetryPolicy {
            max_attempts: 64,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            ..RetryPolicy::default()
        },
    })
    .unwrap();

    let id = c.dfs().append_block("f", &[7u8; 32]).unwrap();
    assert_eq!(c.dfs().read_block(&id).unwrap(), vec![7u8; 32]);

    let after_first = c.metrics().snapshot();
    assert!(
        after_first.faults_injected > 0 && after_first.block_read_retries > 0,
        "first read should have been faulted and retried: {after_first:?}"
    );
    assert_eq!(after_first.cache_misses, 1);
    assert_eq!(after_first.blocks_read, 1, "retries settle into one read");

    // Second read: pure cache hit — no disk, no new retries, and the
    // injector never even gets consulted on the fast path.
    assert_eq!(c.dfs().read_block(&id).unwrap(), vec![7u8; 32]);
    let after_second = c.metrics().snapshot();
    assert_eq!(after_second.cache_hits, 1);
    assert_eq!(after_second.blocks_read, after_first.blocks_read);
    assert_eq!(
        after_second.block_read_retries, after_first.block_read_retries,
        "cache hits never re-enter the retry loop"
    );
}

// (The end-to-end "queries hit the cache" test lives in the root suite,
// tests/durability.rs, where the index crates are available.)
