//! Integration tests for the DFS LRU block cache: correctness under
//! delete/rewrite, metering, and latency savings.

use std::time::Duration;
use tardis_cluster::{Cluster, ClusterConfig, DfsConfig};

fn cached_cluster(cache_bytes: usize, latency_ms: u64) -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 2,
        dfs: DfsConfig {
            read_latency: Duration::from_millis(latency_ms),
            write_latency: Duration::ZERO,
            cache_bytes,
        },
    })
    .unwrap()
}

#[test]
fn repeated_reads_hit_cache() {
    let c = cached_cluster(1 << 20, 0);
    let id = c.dfs().append_block("f", &[1, 2, 3]).unwrap();
    assert_eq!(c.dfs().read_block(&id).unwrap(), vec![1, 2, 3]);
    assert_eq!(c.dfs().read_block(&id).unwrap(), vec![1, 2, 3]);
    assert_eq!(c.dfs().read_block(&id).unwrap(), vec![1, 2, 3]);
    let m = c.metrics().snapshot();
    assert_eq!(m.cache_misses, 1);
    assert_eq!(m.cache_hits, 2);
    assert_eq!(m.blocks_read, 1, "disk touched once");
    assert!(c.dfs().cache_used_bytes() >= 3);
}

#[test]
fn cache_disabled_by_default() {
    let c = Cluster::new(ClusterConfig {
        n_workers: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let id = c.dfs().append_block("f", &[9]).unwrap();
    c.dfs().read_block(&id).unwrap();
    c.dfs().read_block(&id).unwrap();
    let m = c.metrics().snapshot();
    assert_eq!(m.cache_hits, 0);
    assert_eq!(m.cache_misses, 0);
    assert_eq!(m.blocks_read, 2);
}

#[test]
fn delete_and_rewrite_never_serves_stale_bytes() {
    let c = cached_cluster(1 << 20, 0);
    let id = c.dfs().append_block("f", &[1]).unwrap();
    assert_eq!(c.dfs().read_block(&id).unwrap(), vec![1]);
    c.dfs().delete_file("f").unwrap();
    let id2 = c.dfs().append_block("f", &[2]).unwrap();
    assert_eq!(id2.index, 0, "re-created file restarts numbering");
    assert_eq!(c.dfs().read_block(&id2).unwrap(), vec![2], "no stale cache");
}

#[test]
fn cached_reads_skip_simulated_latency() {
    let c = cached_cluster(1 << 20, 15);
    let id = c.dfs().append_block("f", &[0; 64]).unwrap();
    let t0 = std::time::Instant::now();
    c.dfs().read_block(&id).unwrap();
    let cold = t0.elapsed();
    let t1 = std::time::Instant::now();
    for _ in 0..10 {
        c.dfs().read_block(&id).unwrap();
    }
    let hot = t1.elapsed();
    assert!(cold >= Duration::from_millis(15));
    assert!(hot < cold, "10 hot reads {hot:?} vs one cold {cold:?}");
}

#[test]
fn tiny_cache_evicts_but_stays_correct() {
    // Cache fits only one of the two blocks; answers stay right.
    let c = cached_cluster(100, 0);
    let a = c.dfs().append_block("f", &[1u8; 80]).unwrap();
    let b = c.dfs().append_block("f", &[2u8; 80]).unwrap();
    for _ in 0..5 {
        assert_eq!(c.dfs().read_block(&a).unwrap(), vec![1u8; 80]);
        assert_eq!(c.dfs().read_block(&b).unwrap(), vec![2u8; 80]);
    }
    assert!(c.dfs().cache_used_bytes() <= 100);
}

// (The end-to-end "queries hit the cache" test lives in the root suite,
// tests/durability.rs, where the index crates are available.)
