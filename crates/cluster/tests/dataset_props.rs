//! Property tests: parallel Dataset operators must be semantically
//! identical to their sequential reference implementations, regardless of
//! partitioning and worker count.

use proptest::prelude::*;
use std::collections::HashMap;
use tardis_cluster::{Dataset, Metrics, WorkerPool};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_matches_sequential(
        items in prop::collection::vec(0u32..10_000, 0..500),
        n_parts in 1usize..8,
        workers in 1usize..6,
    ) {
        let pool = WorkerPool::new(workers);
        let expected: Vec<u64> = items.iter().map(|&x| x as u64 * 3 + 1).collect();
        let got = Dataset::from_items(items, n_parts)
            .map(&pool, |x| x as u64 * 3 + 1)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn filter_flat_map_compose(
        items in prop::collection::vec(0u32..1000, 0..300),
        n_parts in 1usize..6,
    ) {
        let pool = WorkerPool::new(4);
        let expected: Vec<u32> = items
            .iter()
            .filter(|&&x| x % 3 == 0)
            .flat_map(|&x| vec![x, x + 1])
            .collect();
        let got = Dataset::from_items(items, n_parts)
            .filter(&pool, |x| x % 3 == 0)
            .flat_map(&pool, |x| vec![x, x + 1])
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn shuffle_is_a_permutation_respecting_partitioner(
        items in prop::collection::vec(0u32..10_000, 0..400),
        n_parts in 1usize..6,
        n_out in 1usize..7,
    ) {
        let pool = WorkerPool::new(4);
        let metrics = Metrics::new();
        let shuffled = Dataset::from_items(items.clone(), n_parts).shuffle(
            &pool,
            &metrics,
            n_out,
            |x| (*x as usize) % n_out,
        );
        prop_assert_eq!(shuffled.n_partitions(), n_out);
        // Routing respected.
        for (p, part) in shuffled.partitions().iter().enumerate() {
            for x in part {
                prop_assert_eq!((*x as usize) % n_out, p);
            }
        }
        // Multiset preserved.
        let mut a = items;
        let mut b = shuffled.collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn reduce_by_key_matches_hashmap(
        pairs in prop::collection::vec((0u32..50, 1u64..10), 0..400),
        n_parts in 1usize..6,
        n_out in 1usize..5,
    ) {
        let pool = WorkerPool::new(4);
        let metrics = Metrics::new();
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for &(k, v) in &pairs {
            *expected.entry(k).or_default() += v;
        }
        let mut got: Vec<(u32, u64)> = Dataset::from_items(pairs, n_parts)
            .reduce_by_key(&pool, &metrics, n_out, |a, b| *a += b)
            .collect();
        got.sort_unstable();
        let mut want: Vec<(u32, u64)> = expected.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn worker_count_never_changes_results(
        items in prop::collection::vec(0u32..1000, 1..300),
    ) {
        let metrics = Metrics::new();
        let run = |workers: usize| {
            let pool = WorkerPool::new(workers);
            Dataset::from_items(items.clone(), 5)
                .map(&pool, |x| x * 2)
                .shuffle(&pool, &metrics, 3, |x| (*x as usize) % 3)
                .map_partitions(&pool, |idx, p| vec![(idx, p.len(), p.iter().sum::<u32>())])
                .collect()
        };
        prop_assert_eq!(run(1), run(4));
        prop_assert_eq!(run(2), run(8));
    }
}
