//! Compact binary codec for the data path.
//!
//! Records flow through the DFS and shuffle as raw bytes; this module
//! defines a small length-prefixed binary format (little-endian) with no
//! schema overhead. It is deliberately hand-rolled: the data path of an
//! index build is hot, and the format doubles as the on-disk layout of
//! partitions.

use crate::error::ClusterError;
use bytes::{Buf, BufMut, BytesMut};
use tardis_ts::{Record, TimeSeries};

/// Types that can serialize themselves into a byte buffer.
pub trait Encode {
    /// Appends the encoded form to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Size hint in bytes (used for buffer pre-allocation; 0 is allowed).
    fn encoded_len_hint(&self) -> usize {
        0
    }
}

/// Types that can deserialize themselves from a byte buffer.
pub trait Decode: Sized {
    /// Consumes bytes from the front of `buf` and reconstructs a value.
    fn decode(buf: &mut &[u8]) -> Result<Self, ClusterError>;
}

#[inline]
fn need(buf: &&[u8], n: usize, context: &'static str) -> Result<(), ClusterError> {
    if buf.len() < n {
        Err(ClusterError::Codec { context })
    } else {
        Ok(())
    }
}

impl Encode for Record {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.rid);
        buf.put_u32_le(self.ts.len() as u32);
        for &v in self.ts.values() {
            buf.put_f32_le(v);
        }
    }

    fn encoded_len_hint(&self) -> usize {
        8 + 4 + self.ts.len() * 4
    }
}

impl Decode for Record {
    fn decode(buf: &mut &[u8]) -> Result<Self, ClusterError> {
        need(buf, 12, "record header")?;
        let rid = buf.get_u64_le();
        let len = buf.get_u32_le() as usize;
        need(buf, len * 4, "record values")?;
        let mut values = Vec::with_capacity(len);
        extend_f32_le(&mut values, buf, len);
        Ok(Record::new(rid, TimeSeries::new(values)))
    }
}

/// Appends `len` little-endian `f32`s from the front of `buf` to `out` in
/// one bulk pass (single capacity check, no per-element cursor updates).
/// The caller must have verified `buf` holds at least `len * 4` bytes.
#[inline]
fn extend_f32_le(out: &mut Vec<f32>, buf: &mut &[u8], len: usize) {
    let bytes = &buf[..len * 4];
    out.extend(
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
    );
    buf.advance(len * 4);
}

/// Decodes one [`Record`] from the wire format directly into a caller-owned
/// arena: the series values are appended to `arena` with no intermediate
/// per-record `Vec`, which is how partition loads build their contiguous
/// `SeriesBlock` straight from DFS block bytes.
///
/// Returns `(rid, appended_len)`. On error nothing is appended.
pub fn decode_record_into(
    buf: &mut &[u8],
    arena: &mut Vec<f32>,
) -> Result<(u64, usize), ClusterError> {
    need(buf, 12, "record header")?;
    let rid = buf.get_u64_le();
    let len = buf.get_u32_le() as usize;
    need(buf, len * 4, "record values")?;
    extend_f32_le(arena, buf, len);
    Ok((rid, len))
}

impl Encode for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }

    fn encoded_len_hint(&self) -> usize {
        8
    }
}

impl Decode for u64 {
    fn decode(buf: &mut &[u8]) -> Result<Self, ClusterError> {
        need(buf, 8, "u64")?;
        Ok(buf.get_u64_le())
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self);
    }

    fn encoded_len_hint(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for Vec<u8> {
    fn decode(buf: &mut &[u8]) -> Result<Self, ClusterError> {
        need(buf, 4, "bytes header")?;
        let len = buf.get_u32_le() as usize;
        need(buf, len, "bytes body")?;
        let out = buf[..len].to_vec();
        buf.advance(len);
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn encoded_len_hint(&self) -> usize {
        self.0.encoded_len_hint() + self.1.encoded_len_hint()
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut &[u8]) -> Result<Self, ClusterError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

/// Encodes a slice of values into one block buffer: a `u32` count followed
/// by the concatenated encodings.
pub fn encode_records<T: Encode>(items: &[T]) -> Vec<u8> {
    let hint: usize = 4 + items.iter().map(|i| i.encoded_len_hint()).sum::<usize>();
    let mut buf = BytesMut::with_capacity(hint);
    buf.put_u32_le(items.len() as u32);
    for item in items {
        item.encode(&mut buf);
    }
    buf.to_vec()
}

/// Decodes a block produced by [`encode_records`].
pub fn decode_records<T: Decode>(mut bytes: &[u8]) -> Result<Vec<T>, ClusterError> {
    let buf = &mut bytes;
    need(buf, 4, "block header")?;
    let count = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        out.push(T::decode(buf)?);
    }
    if !buf.is_empty() {
        return Err(ClusterError::Codec {
            context: "trailing bytes after block",
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(rid: u64, n: usize) -> Record {
        Record::new(
            rid,
            TimeSeries::new((0..n).map(|i| (i as f32) * 0.5 - rid as f32).collect()),
        )
    }

    #[test]
    fn record_roundtrip() {
        let r = record(42, 16);
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), r.encoded_len_hint());
        let mut slice: &[u8] = &buf;
        let decoded = Record::decode(&mut slice).unwrap();
        assert_eq!(decoded, r);
        assert!(slice.is_empty());
    }

    #[test]
    fn empty_series_roundtrip() {
        let r = Record::new(1, TimeSeries::new(vec![]));
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        let mut slice: &[u8] = &buf;
        assert_eq!(Record::decode(&mut slice).unwrap(), r);
    }

    #[test]
    fn decode_record_into_appends_to_arena() {
        let a = record(7, 5);
        let b = record(8, 3);
        let mut buf = BytesMut::new();
        a.encode(&mut buf);
        b.encode(&mut buf);
        let mut slice: &[u8] = &buf;
        let mut arena = vec![9.0f32]; // pre-existing content must survive
        let (rid_a, len_a) = decode_record_into(&mut slice, &mut arena).unwrap();
        let (rid_b, len_b) = decode_record_into(&mut slice, &mut arena).unwrap();
        assert!(slice.is_empty());
        assert_eq!((rid_a, len_a), (7, 5));
        assert_eq!((rid_b, len_b), (8, 3));
        assert_eq!(&arena[1..6], a.ts.values());
        assert_eq!(&arena[6..9], b.ts.values());
    }

    #[test]
    fn decode_record_into_rejects_truncation_without_appending() {
        let r = record(3, 4);
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        let mut slice: &[u8] = &buf[..buf.len() - 1];
        let mut arena = Vec::new();
        assert!(decode_record_into(&mut slice, &mut arena).is_err());
        assert!(arena.is_empty());
    }

    #[test]
    fn block_roundtrip() {
        let records: Vec<Record> = (0..100).map(|i| record(i, 8)).collect();
        let block = encode_records(&records);
        let decoded: Vec<Record> = decode_records(&block).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn empty_block_roundtrip() {
        let block = encode_records::<Record>(&[]);
        let decoded: Vec<Record> = decode_records(&block).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn truncated_record_rejected() {
        let r = record(7, 8);
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        let mut slice: &[u8] = &buf[..buf.len() - 1];
        assert!(Record::decode(&mut slice).is_err());
    }

    #[test]
    fn truncated_block_rejected() {
        let block = encode_records(&[record(1, 4), record(2, 4)]);
        assert!(decode_records::<Record>(&block[..block.len() - 2]).is_err());
        assert!(decode_records::<Record>(&block[..3]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut block = encode_records(&[record(1, 4)]);
        block.push(0xFF);
        assert!(decode_records::<Record>(&block).is_err());
    }

    #[test]
    fn tuple_and_bytes_roundtrip() {
        let pair: (u64, Vec<u8>) = (9, vec![1, 2, 3]);
        let block = encode_records(std::slice::from_ref(&pair));
        let decoded: Vec<(u64, Vec<u8>)> = decode_records(&block).unwrap();
        assert_eq!(decoded, vec![pair]);
    }

    #[test]
    fn values_survive_bitexactly() {
        let r = Record::new(
            0,
            TimeSeries::new(vec![f32::MIN_POSITIVE, -0.0, 1e30, -1e-30]),
        );
        let block = encode_records(std::slice::from_ref(&r));
        let decoded: Vec<Record> = decode_records(&block).unwrap();
        assert!(decoded[0].ts.exact_eq(&r.ts));
    }
}
