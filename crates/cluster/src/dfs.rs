//! A block-based distributed-file-system stand-in backed by local disk.
//!
//! HDFS stores files as large blocks (64/128 MB, Table II) spread over the
//! cluster; loading a block is a high-latency operation the paper's Bloom
//! filters exist to avoid (§V-A). `Dfs` reproduces that I/O model: every
//! named file is a directory of numbered block files, reads/writes go
//! through real file I/O, and a configurable artificial per-block latency
//! lets experiments model a remote store whose blocks are *not* hot in the
//! OS page cache.

use crate::error::{ClusterError, MaybeTransient};
use crate::fault::{FaultInjector, FaultSite, RetryPolicy};
use crate::metrics::Metrics;
use crate::rng::SplitMix64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a block: file name plus block index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// The DFS file this block belongs to.
    pub file: String,
    /// Zero-based block index within the file.
    pub index: u32,
}

impl BlockId {
    /// Creates a block id.
    pub fn new(file: impl Into<String>, index: u32) -> BlockId {
        BlockId {
            file: file.into(),
            index,
        }
    }
}

/// Storage-layer configuration.
#[derive(Debug, Clone, Default)]
pub struct DfsConfig {
    /// Artificial latency added to every block read (simulates remote /
    /// cold storage; 0 by default for tests).
    pub read_latency: Duration,
    /// Artificial latency added to every block write.
    pub write_latency: Duration,
    /// Byte budget of the in-memory LRU block cache (0 disables caching;
    /// cached reads skip disk and the read latency).
    pub cache_bytes: usize,
}

/// The block store. Cloneable-by-reference via the owning [`crate::Cluster`].
pub struct Dfs {
    root: PathBuf,
    config: DfsConfig,
    metrics: Arc<Metrics>,
    /// Next block index per file (appends are serialized per store).
    next_index: Mutex<HashMap<String, u32>>,
    /// Optional LRU block cache.
    cache: Mutex<crate::cache::BlockCache>,
    /// Whether `root` is a temp dir we own and must remove on drop.
    owns_root: bool,
    /// Seeded fault oracle (None = no injection).
    injector: Option<Arc<FaultInjector>>,
    /// Retry budget for transient block I/O failures.
    retry: RetryPolicy,
}

impl Dfs {
    /// Creates a store in a fresh temporary directory (removed on drop).
    pub fn temp(config: DfsConfig, metrics: Arc<Metrics>) -> Result<Dfs, ClusterError> {
        let root = std::env::temp_dir().join(format!(
            "tardis-dfs-{}-{:x}",
            std::process::id(),
            SplitMix64::new(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0)
            )
            .next_u64()
        ));
        fs::create_dir_all(&root)?;
        let cache = Mutex::new(crate::cache::BlockCache::new(config.cache_bytes));
        Ok(Dfs {
            root,
            config,
            metrics,
            next_index: Mutex::new(HashMap::new()),
            cache,
            owns_root: true,
            injector: None,
            retry: RetryPolicy::default(),
        })
    }

    /// Creates a store rooted at an existing directory (not removed on
    /// drop). Existing block files under it are picked up lazily.
    pub fn at_dir(dir: &Path, config: DfsConfig, metrics: Arc<Metrics>) -> Result<Dfs, ClusterError> {
        fs::create_dir_all(dir)?;
        let cache = Mutex::new(crate::cache::BlockCache::new(config.cache_bytes));
        Ok(Dfs {
            root: dir.to_path_buf(),
            config,
            metrics,
            next_index: Mutex::new(HashMap::new()),
            cache,
            owns_root: false,
            injector: None,
            retry: RetryPolicy::default(),
        })
    }

    /// Arms fault injection: block reads/writes consult `injector` on
    /// every attempt and transient failures are retried per `retry`.
    pub fn set_fault_injection(&mut self, injector: Arc<FaultInjector>, retry: RetryPolicy) {
        self.injector = Some(injector);
        self.retry = retry;
    }

    /// The retry policy in force for block I/O.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn block_path(&self, id: &BlockId) -> PathBuf {
        self.file_dir(&id.file).join(format!("block-{:06}.bin", id.index))
    }

    /// Appends one block to `name` (creating the file on first append).
    /// Returns the new block's id.
    pub fn append_block(&self, name: &str, bytes: &[u8]) -> Result<BlockId, ClusterError> {
        let index = {
            let mut map = self.next_index.lock();
            let next = map.entry(name.to_string()).or_insert_with(|| {
                // Resume after existing blocks if the dir already has some.
                self.scan_block_count(name)
            });
            let idx = *next;
            *next += 1;
            idx
        };
        let id = BlockId::new(name, index);
        let dir = self.file_dir(name);
        fs::create_dir_all(&dir)?;
        let key = FaultInjector::block_key(name, index);
        let attempts = self.retry.attempts();
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.write_block_attempt(&id, &dir, bytes, key, attempt) {
                Ok(()) => {
                    self.metrics.record_block_write(bytes.len() as u64);
                    return Ok(id);
                }
                Err(e) if e.is_transient() && attempt < attempts => {
                    self.metrics.record_block_write_retry();
                    std::thread::sleep(self.retry.backoff(attempt));
                }
                Err(e) if e.is_transient() => {
                    return Err(ClusterError::RetriesExhausted {
                        op: "block write",
                        attempts: attempt,
                        source: Box::new(e),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One write attempt: injected fault check, latency, tmp-write, rename.
    fn write_block_attempt(
        &self,
        id: &BlockId,
        dir: &Path,
        bytes: &[u8],
        key: u64,
        attempt: u32,
    ) -> Result<(), ClusterError> {
        if let Some(inj) = &self.injector {
            if let Some(e) = inj.fault_for(FaultSite::BlockWrite, key, attempt) {
                return Err(e);
            }
        }
        if !self.config.write_latency.is_zero() {
            std::thread::sleep(self.config.write_latency);
        }
        // Write-then-rename keeps a faulted/interrupted attempt invisible:
        // readers only ever see fully written blocks, so retries are safe.
        let tmp = dir.join(format!("block-{:06}.tmp", id.index));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
        }
        fs::rename(&tmp, self.block_path(id))?;
        Ok(())
    }

    /// Writes a sequence of blocks to `name`, returning their ids.
    pub fn write_blocks(
        &self,
        name: &str,
        blocks: impl IntoIterator<Item = Vec<u8>>,
    ) -> Result<Vec<BlockId>, ClusterError> {
        blocks
            .into_iter()
            .map(|b| self.append_block(name, &b))
            .collect()
    }

    /// Reads one block fully into memory; served from the LRU cache when
    /// enabled and hot (a cached read pays neither disk I/O nor the
    /// simulated latency, and is metered as a cache hit, not a block
    /// read). Uncached reads model remote I/O: with fault injection armed
    /// they may fail transiently and are retried per the [`RetryPolicy`]
    /// before a typed [`ClusterError::RetriesExhausted`] surfaces.
    pub fn read_block(&self, id: &BlockId) -> Result<Vec<u8>, ClusterError> {
        // Cache fast path (local memory — no remote I/O, no faults).
        {
            let mut cache = self.cache.lock();
            if cache.enabled() {
                if let Some(bytes) = cache.get(id) {
                    self.metrics.record_cache_hit();
                    return Ok(bytes.as_ref().clone());
                }
                self.metrics.record_cache_miss();
            }
        }
        let key = FaultInjector::block_key(&id.file, id.index);
        let attempts = self.retry.attempts();
        let mut attempt = 0;
        let bytes = loop {
            attempt += 1;
            match self.read_block_attempt(id, key, attempt) {
                Ok(bytes) => break bytes,
                Err(e) if e.is_transient() && attempt < attempts => {
                    self.metrics.record_block_read_retry();
                    std::thread::sleep(self.retry.backoff(attempt));
                }
                Err(e) if e.is_transient() => {
                    return Err(ClusterError::RetriesExhausted {
                        op: "block read",
                        attempts: attempt,
                        source: Box::new(e),
                    });
                }
                // Permanent (e.g. MissingBlock): no retry can help.
                Err(e) => return Err(e),
            }
        };
        {
            let mut cache = self.cache.lock();
            if cache.enabled() {
                cache.put(id.clone(), Arc::new(bytes.clone()));
            }
        }
        Ok(bytes)
    }

    /// One read attempt: stall/fault checks, latency, disk read.
    fn read_block_attempt(
        &self,
        id: &BlockId,
        key: u64,
        attempt: u32,
    ) -> Result<Vec<u8>, ClusterError> {
        if let Some(inj) = &self.injector {
            inj.maybe_stall_read(key, attempt);
            if let Some(e) = inj.fault_for(FaultSite::BlockRead, key, attempt) {
                return Err(e);
            }
        }
        let path = self.block_path(id);
        if !path.exists() {
            return Err(ClusterError::MissingBlock {
                file: id.file.clone(),
                index: id.index,
            });
        }
        if !self.config.read_latency.is_zero() {
            std::thread::sleep(self.config.read_latency);
        }
        let mut bytes = Vec::new();
        fs::File::open(&path)?.read_to_end(&mut bytes)?;
        self.metrics.record_block_read(bytes.len() as u64);
        Ok(bytes)
    }

    /// Current LRU cache occupancy in bytes (0 when disabled).
    pub fn cache_used_bytes(&self) -> usize {
        self.cache.lock().used_bytes()
    }

    /// Exempts every cached block of `name` from LRU eviction (see
    /// [`crate::cache::BlockCache::pin_file`]). The shared-scan batch
    /// engine pins a partition's file while its load is in flight so a
    /// concurrent partition's blocks cannot evict it mid-deserialize.
    pub fn pin_file(&self, name: &str) {
        self.cache.lock().pin_file(name);
    }

    /// Lifts a [`Self::pin_file`] pin and re-applies the cache budget.
    pub fn unpin_file(&self, name: &str) {
        self.cache.lock().unpin_file(name);
    }

    /// Number of blocks currently stored under `name` (0 if absent).
    fn scan_block_count(&self, name: &str) -> u32 {
        let dir = self.file_dir(name);
        match fs::read_dir(&dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .map(|n| n.starts_with("block-") && n.ends_with(".bin"))
                        .unwrap_or(false)
                })
                .count() as u32,
            Err(_) => 0,
        }
    }

    /// Lists the blocks of a file in index order.
    ///
    /// # Errors
    /// [`ClusterError::MissingFile`] when the file does not exist.
    pub fn list_blocks(&self, name: &str) -> Result<Vec<BlockId>, ClusterError> {
        if !self.file_dir(name).exists() {
            return Err(ClusterError::MissingFile {
                name: name.to_string(),
            });
        }
        let count = self.scan_block_count(name);
        Ok((0..count).map(|i| BlockId::new(name, i)).collect())
    }

    /// Whether a file exists.
    pub fn file_exists(&self, name: &str) -> bool {
        self.file_dir(name).exists()
    }

    /// Deletes a file and all its blocks (no-op if absent), dropping any
    /// cached copies so a re-created file never serves stale bytes.
    pub fn delete_file(&self, name: &str) -> Result<(), ClusterError> {
        self.cache.lock().invalidate_file(name);
        let dir = self.file_dir(name);
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        self.next_index.lock().remove(name);
        Ok(())
    }

    /// Total stored size of a file in bytes.
    pub fn file_size(&self, name: &str) -> Result<u64, ClusterError> {
        let mut total = 0;
        for id in self.list_blocks(name)? {
            total += fs::metadata(self.block_path(&id))?.len();
        }
        Ok(total)
    }

    /// Block-level sampling (§IV-B "Data Preprocessing"): selects
    /// `ceil(fraction · n_blocks)` distinct blocks uniformly at random with
    /// the given seed. `fraction >= 1.0` returns every block (in order).
    ///
    /// # Panics
    /// Panics if `fraction <= 0`.
    pub fn sample_block_ids(
        &self,
        name: &str,
        fraction: f64,
        seed: u64,
    ) -> Result<Vec<BlockId>, ClusterError> {
        assert!(fraction > 0.0, "sampling fraction must be positive");
        let mut ids = self.list_blocks(name)?;
        if fraction >= 1.0 || ids.is_empty() {
            return Ok(ids);
        }
        let take = ((fraction * ids.len() as f64).ceil() as usize).clamp(1, ids.len());
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut ids);
        ids.truncate(take);
        ids.sort();
        Ok(ids)
    }
}

impl Drop for Dfs {
    fn drop(&mut self) {
        if self.owns_root {
            let _ = fs::remove_dir_all(&self.root);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dfs() -> Dfs {
        Dfs::temp(DfsConfig::default(), Arc::new(Metrics::new())).unwrap()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let dfs = temp_dfs();
        let id = dfs.append_block("data", &[1, 2, 3, 4]).unwrap();
        assert_eq!(id, BlockId::new("data", 0));
        assert_eq!(dfs.read_block(&id).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn append_increments_indices() {
        let dfs = temp_dfs();
        let a = dfs.append_block("f", &[1]).unwrap();
        let b = dfs.append_block("f", &[2]).unwrap();
        assert_eq!((a.index, b.index), (0, 1));
        assert_eq!(dfs.list_blocks("f").unwrap().len(), 2);
    }

    #[test]
    fn missing_block_and_file_errors() {
        let dfs = temp_dfs();
        assert!(matches!(
            dfs.read_block(&BlockId::new("nope", 0)),
            Err(ClusterError::MissingBlock { .. })
        ));
        assert!(matches!(
            dfs.list_blocks("nope"),
            Err(ClusterError::MissingFile { .. })
        ));
    }

    #[test]
    fn write_blocks_bulk() {
        let dfs = temp_dfs();
        let ids = dfs
            .write_blocks("bulk", (0..5).map(|i| vec![i as u8; 3]))
            .unwrap();
        assert_eq!(ids.len(), 5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 3]);
        }
    }

    #[test]
    fn delete_file_removes_blocks() {
        let dfs = temp_dfs();
        dfs.append_block("gone", &[9]).unwrap();
        assert!(dfs.file_exists("gone"));
        dfs.delete_file("gone").unwrap();
        assert!(!dfs.file_exists("gone"));
        // Re-created file restarts numbering at 0.
        let id = dfs.append_block("gone", &[8]).unwrap();
        assert_eq!(id.index, 0);
    }

    #[test]
    fn file_size_sums_blocks() {
        let dfs = temp_dfs();
        dfs.append_block("s", &[0; 10]).unwrap();
        dfs.append_block("s", &[0; 32]).unwrap();
        assert_eq!(dfs.file_size("s").unwrap(), 42);
    }

    #[test]
    fn metrics_track_io() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(DfsConfig::default(), Arc::clone(&metrics)).unwrap();
        let id = dfs.append_block("m", &[0; 7]).unwrap();
        dfs.read_block(&id).unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.blocks_written, 1);
        assert_eq!(s.bytes_written, 7);
        assert_eq!(s.blocks_read, 1);
        assert_eq!(s.bytes_read, 7);
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let dfs = temp_dfs();
        dfs.write_blocks("d", (0..20).map(|_| vec![0u8])).unwrap();
        let a = dfs.sample_block_ids("d", 0.25, 7).unwrap();
        let b = dfs.sample_block_ids("d", 0.25, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let c = dfs.sample_block_ids("d", 0.25, 8).unwrap();
        assert!(c != a || c.len() == a.len(), "different seed may differ");
    }

    #[test]
    fn sampling_full_fraction_returns_all() {
        let dfs = temp_dfs();
        dfs.write_blocks("d", (0..4).map(|_| vec![0u8])).unwrap();
        assert_eq!(dfs.sample_block_ids("d", 1.0, 1).unwrap().len(), 4);
        assert_eq!(dfs.sample_block_ids("d", 5.0, 1).unwrap().len(), 4);
    }

    #[test]
    fn sampling_tiny_fraction_returns_at_least_one() {
        let dfs = temp_dfs();
        dfs.write_blocks("d", (0..10).map(|_| vec![0u8])).unwrap();
        assert_eq!(dfs.sample_block_ids("d", 0.001, 1).unwrap().len(), 1);
    }

    #[test]
    fn read_latency_is_applied() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(
            DfsConfig {
                read_latency: Duration::from_millis(20),
                ..DfsConfig::default()
            },
            metrics,
        )
        .unwrap();
        let id = dfs.append_block("slow", &[1]).unwrap();
        let t0 = std::time::Instant::now();
        dfs.read_block(&id).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    fn faulty_dfs(plan: crate::fault::FaultPlan, retry: RetryPolicy) -> (Dfs, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::new());
        let mut dfs = Dfs::temp(DfsConfig::default(), Arc::clone(&metrics)).unwrap();
        let inj = Arc::new(FaultInjector::new(plan, Arc::clone(&metrics)));
        dfs.set_fault_injection(inj, retry);
        (dfs, metrics)
    }

    /// A generous zero-backoff budget so tests exercising *masking* are
    /// deterministic-in-outcome regardless of seed (p=0.3 over 8
    /// attempts leaves ~7e-5 exhaustion odds per block).
    fn deep_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    #[test]
    fn retries_mask_transient_read_faults() {
        let (dfs, metrics) = faulty_dfs(
            crate::fault::FaultPlan {
                seed: 3,
                block_read_fail_p: 0.3,
                ..crate::fault::FaultPlan::none()
            },
            deep_retry(),
        );
        let ids = dfs
            .write_blocks("r", (0..40).map(|i| vec![i as u8; 8]))
            .unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 8]);
        }
        let s = metrics.snapshot();
        assert!(s.faults_injected > 0, "plan injected nothing");
        assert!(s.block_read_retries > 0, "no retries recorded");
    }

    #[test]
    fn retries_mask_transient_write_faults() {
        let (dfs, metrics) = faulty_dfs(
            crate::fault::FaultPlan {
                seed: 5,
                block_write_fail_p: 0.3,
                ..crate::fault::FaultPlan::none()
            },
            deep_retry(),
        );
        let ids = dfs
            .write_blocks("w", (0..40).map(|i| vec![i as u8; 4]))
            .unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 4]);
        }
        assert!(metrics.snapshot().block_write_retries > 0);
    }

    #[test]
    fn certain_faults_exhaust_into_typed_error() {
        let (dfs, metrics) = faulty_dfs(
            crate::fault::FaultPlan {
                block_read_fail_p: 1.0,
                ..crate::fault::FaultPlan::none()
            },
            RetryPolicy {
                max_attempts: 3,
                backoff_base: Duration::ZERO,
                backoff_cap: Duration::ZERO,
            },
        );
        let id = dfs.append_block("x", &[1, 2, 3]).unwrap();
        match dfs.read_block(&id) {
            Err(ClusterError::RetriesExhausted { op, attempts, .. }) => {
                assert_eq!(op, "block read");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(metrics.snapshot().block_read_retries, 2);
    }

    #[test]
    fn missing_block_is_not_retried() {
        let (dfs, metrics) = faulty_dfs(
            crate::fault::FaultPlan::none(),
            RetryPolicy::default(),
        );
        assert!(matches!(
            dfs.read_block(&BlockId::new("absent", 0)),
            Err(ClusterError::MissingBlock { .. })
        ));
        assert_eq!(metrics.snapshot().block_read_retries, 0);
    }

    #[test]
    fn faulted_runs_read_identical_bytes() {
        // The determinism contract: same data read through a faulty DFS
        // and a clean one must be byte-identical.
        let clean = temp_dfs();
        let (faulty, _) = faulty_dfs(
            crate::fault::FaultPlan {
                seed: 11,
                block_read_fail_p: 0.25,
                block_write_fail_p: 0.25,
                ..crate::fault::FaultPlan::none()
            },
            deep_retry(),
        );
        let payloads: Vec<Vec<u8>> = (0..30).map(|i| vec![(i * 7) as u8; 16]).collect();
        let a = clean.write_blocks("d", payloads.clone()).unwrap();
        let b = faulty.write_blocks("d", payloads).unwrap();
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(clean.read_block(ca).unwrap(), faulty.read_block(cb).unwrap());
        }
    }

    #[test]
    fn at_dir_resumes_block_numbering() {
        let root = std::env::temp_dir().join(format!("tardis-dfs-resume-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        {
            let dfs = Dfs::at_dir(&root, DfsConfig::default(), Arc::new(Metrics::new())).unwrap();
            dfs.append_block("f", &[1]).unwrap();
            dfs.append_block("f", &[2]).unwrap();
        }
        {
            let dfs = Dfs::at_dir(&root, DfsConfig::default(), Arc::new(Metrics::new())).unwrap();
            let id = dfs.append_block("f", &[3]).unwrap();
            assert_eq!(id.index, 2);
            assert_eq!(dfs.list_blocks("f").unwrap().len(), 3);
        }
        fs::remove_dir_all(&root).unwrap();
    }
}
