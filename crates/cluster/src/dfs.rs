//! A block-based distributed-file-system stand-in backed by local disk.
//!
//! HDFS stores files as large blocks (64/128 MB, Table II) spread over the
//! cluster; loading a block is a high-latency operation the paper's Bloom
//! filters exist to avoid (§V-A). `Dfs` reproduces that I/O model: every
//! named file is a set of numbered block files, reads/writes go through
//! real file I/O, and a configurable artificial per-block latency lets
//! experiments model a remote store whose blocks are *not* hot in the OS
//! page cache.
//!
//! # Replication
//!
//! HDFS also replicates: every block lives on R datanodes, reads fail
//! over between replicas, and a background scrubber re-replicates blocks
//! whose copy count dropped. `Dfs` reproduces that durability model with
//! simulated datanode directories `root/node-<d>/`:
//!
//! - [`DfsConfig::replication`] replicas of every block are written
//!   across [`DfsConfig::datanodes`] directories, placed by a
//!   deterministic hash of the block id (replica `r` lands on node
//!   `(start + r) % datanodes`), so any process reading the same store
//!   computes the same placement.
//! - Every on-disk block is framed with a 12-byte header — `u32` magic
//!   `"TBLK"` plus the `u64` FNV-1a checksum of the payload, both little
//!   endian — and [`Dfs::read_block`] verifies the frame, failing over
//!   replica-by-replica on a dead datanode, a missing copy, or a
//!   checksum mismatch. Only when *every* replica is gone does the
//!   permanent [`ClusterError::AllReplicasFailed`] surface.
//! - [`Dfs::scrub`] walks every block, verifies every replica directly
//!   on disk (no fault injection — it models a local maintenance
//!   daemon), and rewrites missing or corrupt replicas from a healthy
//!   sibling.
//!
//! # Replica-aware read routing
//!
//! Replication is a *throughput* resource, not just a durability one:
//! each read probes the block's replicas in least-loaded order — fewest
//! in-flight probes first, then fewest served reads, remaining ties
//! broken by node id (so a quiescent store reduces to a fixed,
//! deterministic order). Routing only ever changes *which copy* serves
//! the read, never the bytes: all healthy replicas are identical, and
//! every fault decision is keyed on the block, not the probe order, so
//! the chaos suites stay byte-identical. The simulated `read_latency`
//! (plus any injected slow-node delay) is charged per *probe* and slept
//! while holding the serving node's service slot, so concurrent reads
//! landing on one datanode queue behind each other — exactly the
//! contention replica routing exists to spread.
//!
//! Metrics stay *logical*: one `record_block_write` of payload length
//! per append and one `record_block_read` per successful read, exactly
//! as before replication — replica fan-out is a storage detail, like
//! HDFS's. The physical layer is visible separately through the
//! per-node probe counters (`node_reads`, `node_in_flight`,
//! `node_probe_{missing,corrupt,dead}`).

use crate::error::{ClusterError, MaybeTransient};
use crate::fault::{FaultInjector, FaultSite, RetryPolicy};
use crate::metrics::Metrics;
use crate::rng::SplitMix64;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Magic prefix of every on-disk block frame (`"TBLK"`, little endian).
const BLOCK_MAGIC: u32 = 0x4B4C_4254;
/// Frame header length: `u32` magic + `u64` FNV-1a payload checksum.
const HEADER_LEN: usize = 12;
/// Salt for the placement hash (which datanode hosts replica 0).
const PLACEMENT_SALT: u64 = 0x7AD1_5000_0000_0001;
/// Salt for the deterministic corrupt-byte position.
const CORRUPT_POS_SALT: u64 = 0x7AD1_5000_0000_0002;

fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps a payload in the checksummed block frame.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
    out.extend_from_slice(&fnv1a_64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verifies a frame, returning the payload on success.
fn decode_frame(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < HEADER_LEN {
        return None;
    }
    let magic = u32::from_le_bytes(frame[0..4].try_into().ok()?);
    if magic != BLOCK_MAGIC {
        return None;
    }
    let sum = u64::from_le_bytes(frame[4..12].try_into().ok()?);
    let payload = &frame[HEADER_LEN..];
    (fnv1a_64(payload) == sum).then_some(payload)
}

/// Flips one payload byte (or a checksum byte for empty payloads) at a
/// position derived deterministically from `(key, replica)`, so the same
/// seeded plan damages the same byte of the same replica every run.
fn corrupt_frame(frame: &mut [u8], key: u64, replica: u32) {
    let mix = SplitMix64::new(key ^ ((replica as u64) << 32) ^ CORRUPT_POS_SALT).next_u64();
    let payload_len = frame.len() - HEADER_LEN;
    let pos = if payload_len == 0 {
        4 + (mix as usize % 8)
    } else {
        HEADER_LEN + (mix as usize % payload_len)
    };
    frame[pos] ^= 0xA5;
}

/// Identifier of a block: file name plus block index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// The DFS file this block belongs to.
    pub file: String,
    /// Zero-based block index within the file.
    pub index: u32,
}

impl BlockId {
    /// Creates a block id.
    pub fn new(file: impl Into<String>, index: u32) -> BlockId {
        BlockId {
            file: file.into(),
            index,
        }
    }
}

/// Storage-layer configuration.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Artificial latency added to every block read (simulates remote /
    /// cold storage; 0 by default for tests).
    pub read_latency: Duration,
    /// Artificial latency added to every block write.
    pub write_latency: Duration,
    /// Byte budget of the in-memory LRU block cache (0 disables caching;
    /// cached reads skip disk and the read latency).
    pub cache_bytes: usize,
    /// Replicas written per block, clamped to `datanodes` (1 disables
    /// replication). HDFS defaults to 3; 2 keeps the simulation's disk
    /// fan-out modest while still surviving any single replica loss.
    pub replication: u32,
    /// Simulated datanode directories (`node-<d>/`) replicas spread over.
    pub datanodes: u32,
}

impl Default for DfsConfig {
    fn default() -> DfsConfig {
        DfsConfig {
            read_latency: Duration::ZERO,
            write_latency: Duration::ZERO,
            cache_bytes: 0,
            replication: 2,
            datanodes: 3,
        }
    }
}

/// Outcome of a [`Dfs::scrub`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Blocks examined (every block of every file).
    pub blocks_checked: u64,
    /// Replicas rewritten from a healthy sibling (missing or corrupt).
    pub replicas_repaired: u64,
    /// Replicas whose on-disk frame failed verification.
    pub corrupt_replicas: u64,
    /// Blocks with no healthy replica left — unrepairable data loss.
    pub blocks_lost: u64,
    /// Replicas created to top blocks up to a *raised* replication
    /// factor (capacity, not repair) — the primitive adaptive
    /// hot-partition re-replication drives.
    pub replicas_added: u64,
    /// Leftover staging files (`block-*.tmp` / `block-*.rN.tmp`) swept
    /// from datanode directories — debris of writes interrupted between
    /// staging and rename.
    pub tmp_swept: u64,
}

/// The block store. Cloneable-by-reference via the owning [`crate::Cluster`].
pub struct Dfs {
    root: PathBuf,
    config: DfsConfig,
    metrics: Arc<Metrics>,
    /// Next block index per file (appends are serialized per store).
    next_index: Mutex<HashMap<String, u32>>,
    /// Optional LRU block cache.
    cache: Mutex<crate::cache::BlockCache>,
    /// Whether `root` is a temp dir we own and must remove on drop.
    owns_root: bool,
    /// Seeded fault oracle (None = no injection).
    injector: Option<Arc<FaultInjector>>,
    /// Retry budget for transient block I/O failures.
    retry: RetryPolicy,
    /// Per-datanode service slots: a probe holds its node's slot for the
    /// simulated service time, so reads landing on one node serialize.
    node_slots: Vec<Mutex<()>>,
    /// Per-file replication overrides raised by [`Self::replicate_file`]
    /// (hot partitions re-replicated above the store default).
    file_replication: Mutex<HashMap<String, u32>>,
    /// Replication factor each file's blocks were last written or topped
    /// up at — scrub uses it to split lost-copy repairs from capacity
    /// top-ups after a factor raise.
    written_replication: Mutex<HashMap<String, u32>>,
}

impl Dfs {
    /// Creates a store in a fresh temporary directory (removed on drop).
    pub fn temp(config: DfsConfig, metrics: Arc<Metrics>) -> Result<Dfs, ClusterError> {
        let root = std::env::temp_dir().join(format!(
            "tardis-dfs-{}-{:x}",
            std::process::id(),
            SplitMix64::new(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0)
            )
            .next_u64()
        ));
        fs::create_dir_all(&root)?;
        let cache = Mutex::new(crate::cache::BlockCache::new(config.cache_bytes));
        let node_slots = (0..config.datanodes.max(1)).map(|_| Mutex::new(())).collect();
        Ok(Dfs {
            root,
            config,
            metrics,
            next_index: Mutex::new(HashMap::new()),
            cache,
            owns_root: true,
            injector: None,
            retry: RetryPolicy::default(),
            node_slots,
            file_replication: Mutex::new(HashMap::new()),
            written_replication: Mutex::new(HashMap::new()),
        })
    }

    /// Creates a store rooted at an existing directory (not removed on
    /// drop). Existing block files under it are picked up lazily.
    pub fn at_dir(dir: &Path, config: DfsConfig, metrics: Arc<Metrics>) -> Result<Dfs, ClusterError> {
        fs::create_dir_all(dir)?;
        let cache = Mutex::new(crate::cache::BlockCache::new(config.cache_bytes));
        let node_slots = (0..config.datanodes.max(1)).map(|_| Mutex::new(())).collect();
        Ok(Dfs {
            root: dir.to_path_buf(),
            config,
            metrics,
            next_index: Mutex::new(HashMap::new()),
            cache,
            owns_root: false,
            injector: None,
            retry: RetryPolicy::default(),
            node_slots,
            file_replication: Mutex::new(HashMap::new()),
            written_replication: Mutex::new(HashMap::new()),
        })
    }

    /// Arms fault injection: block reads/writes consult `injector` on
    /// every attempt and transient failures are retried per `retry`.
    pub fn set_fault_injection(&mut self, injector: Arc<FaultInjector>, retry: RetryPolicy) {
        self.injector = Some(injector);
        self.retry = retry;
    }

    /// Consults the armed crash plan at a named site (no-op without an
    /// injector). Callers propagate the error immediately — the
    /// simulated `kill -9` unwinds with whatever partial files the
    /// completed syscalls left.
    fn crash_point(&self, site: &'static str) -> Result<(), ClusterError> {
        match &self.injector {
            Some(inj) => inj.crash_point(site),
            None => Ok(()),
        }
    }

    /// The retry policy in force for block I/O.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Replicas actually written per block (`replication` clamped to the
    /// datanode count — a copy per node is the most durability the
    /// simulated cluster can hold).
    pub fn replication(&self) -> u32 {
        self.config.replication.clamp(1, self.datanodes())
    }

    /// Number of simulated datanode directories.
    pub fn datanodes(&self) -> u32 {
        self.config.datanodes.max(1)
    }

    /// Directory of simulated datanode `node` (`root/node-<node>`). Wipe
    /// it to simulate losing that datanode.
    pub fn datanode_dir(&self, node: u32) -> PathBuf {
        self.root.join(format!("node-{node}"))
    }

    /// Datanode hosting replica 0 of the block with placement hash `key`.
    fn placement_start(key: u64, datanodes: u32) -> u32 {
        (SplitMix64::new(key ^ PLACEMENT_SALT).next_u64() % datanodes as u64) as u32
    }

    /// Datanode hosting replica `replica` of the block with placement
    /// hash `key`.
    fn replica_node(&self, key: u64, replica: u32) -> u32 {
        let d = self.datanodes();
        (Self::placement_start(key, d) + replica) % d
    }

    /// Path of replica `replica` of `id` under its placement-assigned
    /// datanode directory.
    fn replica_path(&self, id: &BlockId, replica: u32) -> PathBuf {
        let key = FaultInjector::block_key(&id.file, id.index);
        self.datanode_dir(self.replica_node(key, replica))
            .join(&id.file)
            .join(format!("block-{:06}.bin", id.index))
    }

    /// The replication factor in force for `name`: the store default
    /// raised by any [`Self::replicate_file`] override, clamped to the
    /// datanode count.
    pub fn replication_of(&self, name: &str) -> u32 {
        let over = self.file_replication.lock().get(name).copied().unwrap_or(0);
        self.replication().max(over).clamp(1, self.datanodes())
    }

    /// The block's replicas in least-loaded-first probe order: fewest
    /// in-flight probes, then fewest served reads, remaining ties by
    /// node id. On a quiescent store every signal is zero and the order
    /// reduces to ascending node id — fixed and deterministic. Returns
    /// `(node, replica)` pairs.
    fn routed_replicas(&self, key: u64, replicas: u32) -> Vec<(u32, u32)> {
        let mut order: Vec<(u64, u64, u32, u32)> = (0..replicas)
            .map(|r| {
                let node = self.replica_node(key, r);
                let (in_flight, served) = self.metrics.node_load(node);
                (in_flight, served, node, r)
            })
            .collect();
        order.sort_unstable();
        order.into_iter().map(|(_, _, node, r)| (node, r)).collect()
    }

    /// The replica indices of `id` in the probe order a read issued right
    /// now would use, given live per-node load. Exposed for tests and
    /// diagnostics.
    pub fn probe_order(&self, id: &BlockId) -> Vec<u32> {
        let key = FaultInjector::block_key(&id.file, id.index);
        self.routed_replicas(key, self.replication_of(&id.file))
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    /// Appends one block to `name` (creating the file on first append).
    /// Returns the new block's id.
    pub fn append_block(&self, name: &str, bytes: &[u8]) -> Result<BlockId, ClusterError> {
        let index = {
            let mut map = self.next_index.lock();
            let next = map.entry(name.to_string()).or_insert_with(|| {
                // Resume after existing blocks if the store already has some.
                self.scan_block_count(name)
            });
            let idx = *next;
            *next += 1;
            idx
        };
        let id = BlockId::new(name, index);
        let key = FaultInjector::block_key(name, index);
        let attempts = self.retry.attempts();
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.write_block_attempt(&id, bytes, key, attempt) {
                Ok(()) => {
                    // Logical write: replica fan-out is a storage detail.
                    self.metrics.record_block_write(bytes.len() as u64);
                    // Remember the factor the copies went down at, so a
                    // later scrub can tell lost copies from capacity a
                    // raised factor still owes.
                    let factor = self.replication_of(name);
                    let mut written = self.written_replication.lock();
                    let slot = written.entry(name.to_string()).or_insert(0);
                    *slot = (*slot).max(factor);
                    return Ok(id);
                }
                Err(e) if e.is_transient() && attempt < attempts => {
                    self.metrics.record_block_write_retry();
                    self.retry.sleep_backoff(attempt);
                }
                Err(e) if e.is_transient() => {
                    return Err(ClusterError::RetriesExhausted {
                        op: "block write",
                        attempts: attempt,
                        source: Box::new(e),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One write attempt: injected fault check, latency, then every
    /// replica written tmp-then-rename. A seeded [`FaultSite::BlockCorrupt`]
    /// plan flips one byte of chosen replicas *after* the checksum is
    /// computed, so the damage is persistent on disk, detectable on read,
    /// and repairable by [`Self::scrub`].
    fn write_block_attempt(
        &self,
        id: &BlockId,
        payload: &[u8],
        key: u64,
        attempt: u32,
    ) -> Result<(), ClusterError> {
        if let Some(inj) = &self.injector {
            if let Some(e) = inj.fault_for(FaultSite::BlockWrite, key, attempt) {
                return Err(e);
            }
        }
        if !self.config.write_latency.is_zero() {
            std::thread::sleep(self.config.write_latency);
        }
        for replica in 0..self.replication_of(&id.file) {
            // A crash here leaves replicas 0..replica written and the
            // rest absent — a block at reduced (or zero) replication.
            self.crash_point("dfs.write_block.replica")?;
            let mut frame = encode_frame(payload);
            if let Some(inj) = &self.injector {
                if inj.corrupts_write(key, replica) {
                    corrupt_frame(&mut frame, key, replica);
                }
            }
            let path = self.replica_path(id, replica);
            let dir = path.parent().expect("replica path has a parent");
            fs::create_dir_all(dir)?;
            // Write-then-rename keeps a faulted/interrupted attempt
            // invisible: readers only ever see fully written replicas.
            let tmp = dir.join(format!("block-{:06}.tmp", id.index));
            {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(&frame)?;
            }
            fs::rename(&tmp, &path)?;
        }
        Ok(())
    }

    /// One replace attempt ([`Self::replace_file`]): like
    /// [`Self::write_block_attempt`] but two-phase — every replica's new
    /// frame is staged to its tmp file first, and only then are all
    /// replicas renamed into place. An I/O failure (or crash) during
    /// staging leaves every live replica on the *old* version; only a
    /// crash inside the rename loop can leave replicas at mixed
    /// versions, each still a valid frame.
    fn replace_block_attempt(
        &self,
        id: &BlockId,
        payload: &[u8],
        key: u64,
        attempt: u32,
    ) -> Result<(), ClusterError> {
        if let Some(inj) = &self.injector {
            if let Some(e) = inj.fault_for(FaultSite::BlockWrite, key, attempt) {
                return Err(e);
            }
        }
        if !self.config.write_latency.is_zero() {
            std::thread::sleep(self.config.write_latency);
        }
        let mut staged = Vec::new();
        for replica in 0..self.replication_of(&id.file) {
            // A crash while staging leaves every live replica on the
            // old version plus orphaned `*.rN.tmp` files for the scrub
            // sweep — the swap never started.
            self.crash_point("dfs.replace.stage")?;
            let mut frame = encode_frame(payload);
            if let Some(inj) = &self.injector {
                if inj.corrupts_write(key, replica) {
                    corrupt_frame(&mut frame, key, replica);
                }
            }
            let path = self.replica_path(id, replica);
            let dir = path.parent().expect("replica path has a parent");
            fs::create_dir_all(dir)?;
            // The replica index in the tmp name keeps stages distinct
            // even if two replicas ever share a datanode directory.
            let tmp = dir.join(format!("block-{:06}.r{replica}.tmp", id.index));
            {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(&frame)?;
            }
            staged.push((tmp, path));
        }
        for (tmp, path) in staged {
            // THE mixed-version window: a crash between renames leaves
            // some replicas on the new version and some on the old —
            // each a valid frame. Generation resolution at open/fsck
            // rolls the file forward to the newest valid payload.
            self.crash_point("dfs.replace.rename")?;
            fs::rename(&tmp, &path)?;
        }
        Ok(())
    }

    /// Writes a sequence of blocks to `name`, returning their ids.
    pub fn write_blocks(
        &self,
        name: &str,
        blocks: impl IntoIterator<Item = Vec<u8>>,
    ) -> Result<Vec<BlockId>, ClusterError> {
        blocks
            .into_iter()
            .map(|b| self.append_block(name, &b))
            .collect()
    }

    /// Reads one block fully into memory; served from the LRU cache when
    /// enabled and hot (a cached read pays neither disk I/O nor the
    /// simulated latency, and is metered as a cache hit, not a block
    /// read). Uncached reads model remote I/O: with fault injection armed
    /// they may fail transiently and are retried per the [`RetryPolicy`];
    /// *within* one attempt the read fails over replica-by-replica past
    /// dead datanodes, missing copies, and checksum mismatches. Only when
    /// every replica is unusable does the permanent
    /// [`ClusterError::AllReplicasFailed`] surface (no retry can help —
    /// only [`Self::scrub`] from a surviving copy could).
    pub fn read_block(&self, id: &BlockId) -> Result<Vec<u8>, ClusterError> {
        // Cache fast path (local memory — no remote I/O, no faults).
        {
            let mut cache = self.cache.lock();
            if cache.enabled() {
                if let Some(bytes) = cache.get(id) {
                    self.metrics.record_cache_hit();
                    return Ok(bytes.as_ref().clone());
                }
                self.metrics.record_cache_miss();
            }
        }
        let bytes = self.read_block_retrying(id)?;
        {
            let mut cache = self.cache.lock();
            if cache.enabled() {
                cache.put(id.clone(), Arc::new(bytes.clone()));
            }
        }
        Ok(bytes)
    }

    /// [`Self::read_block`] returning the cache's own `Arc` instead of a
    /// copied `Vec`. A cache hit is zero-copy *and* skips the frame walk
    /// entirely — the payload was checksum-verified when it entered the
    /// cache, and cached bytes are immutable, so re-verifying on every
    /// pinned re-acquisition would just re-read and re-hash data that
    /// cannot have changed (the resident server's cold-start double-read
    /// fix). On a miss the payload is verified, wrapped once, and the
    /// same `Arc` is cached and returned.
    pub fn read_block_shared(&self, id: &BlockId) -> Result<Arc<Vec<u8>>, ClusterError> {
        {
            let mut cache = self.cache.lock();
            if cache.enabled() {
                if let Some(bytes) = cache.get(id) {
                    self.metrics.record_cache_hit();
                    return Ok(bytes);
                }
                self.metrics.record_cache_miss();
            }
        }
        let bytes = Arc::new(self.read_block_retrying(id)?);
        {
            let mut cache = self.cache.lock();
            if cache.enabled() {
                cache.put(id.clone(), Arc::clone(&bytes));
            }
        }
        Ok(bytes)
    }

    /// The uncached read path: the retry loop over
    /// [`Self::read_block_attempt`], shared by [`Self::read_block`] and
    /// [`Self::read_block_shared`].
    fn read_block_retrying(&self, id: &BlockId) -> Result<Vec<u8>, ClusterError> {
        let key = FaultInjector::block_key(&id.file, id.index);
        let attempts = self.retry.attempts();
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.read_block_attempt(id, key, attempt) {
                Ok(bytes) => return Ok(bytes),
                Err(e) if e.is_transient() && attempt < attempts => {
                    self.metrics.record_block_read_retry();
                    self.retry.sleep_backoff(attempt);
                }
                Err(e) if e.is_transient() => {
                    return Err(ClusterError::RetriesExhausted {
                        op: "block read",
                        attempts: attempt,
                        source: Box::new(e),
                    });
                }
                // Permanent (e.g. MissingBlock, AllReplicasFailed).
                Err(e) => return Err(e),
            }
        }
    }

    /// One read attempt: stall/fault checks, then the replica failover
    /// loop in least-loaded routing order ([`Self::routed_replicas`]).
    /// Whole-attempt injected faults stay *transient* (they model a
    /// flaky network path, which a retry may route around); per-replica
    /// failures are handled by failover inside the attempt, each failed
    /// probe paying its own service time ([`Self::probe_replica`]) and
    /// feeding the per-node health counters.
    fn read_block_attempt(
        &self,
        id: &BlockId,
        key: u64,
        attempt: u32,
    ) -> Result<Vec<u8>, ClusterError> {
        if let Some(inj) = &self.injector {
            inj.maybe_stall_read(key, attempt);
            if let Some(e) = inj.fault_for(FaultSite::BlockRead, key, attempt) {
                return Err(e);
            }
        }
        let replicas = self.replication_of(&id.file);
        let killed = self
            .injector
            .as_ref()
            .and_then(|inj| inj.killed_replica(key, replicas));
        // True once any replica of the block is physically present: it
        // separates "the block was never written" (MissingBlock) from
        // "every copy is dead or corrupt" (AllReplicasFailed).
        let mut any_present = false;
        let mut skipped = 0u32;
        for (node, replica) in self.routed_replicas(key, replicas) {
            let path = self.replica_path(id, replica);
            if !path.exists() {
                self.metrics.record_node_probe_missing(node);
                skipped += 1;
                continue;
            }
            any_present = true;
            if killed == Some(replica) {
                // Simulated dead datanode: the bytes are there, but the
                // node hosting them is not answering this run.
                self.metrics.record_node_probe_dead(node);
                skipped += 1;
                continue;
            }
            let frame = self.probe_replica(node, &path)?;
            match decode_frame(&frame) {
                Some(payload) => {
                    if skipped > 0 {
                        self.metrics.record_replica_failover();
                    }
                    self.metrics.record_block_read(payload.len() as u64);
                    return Ok(payload.to_vec());
                }
                None => {
                    self.metrics.record_node_probe_corrupt(node);
                    self.metrics.record_checksum_failure();
                    skipped += 1;
                }
            }
        }
        if any_present {
            Err(ClusterError::AllReplicasFailed {
                file: id.file.clone(),
                index: id.index,
                replicas,
            })
        } else {
            Err(ClusterError::MissingBlock {
                file: id.file.clone(),
                index: id.index,
            })
        }
    }

    /// One physical replica probe: raises the node's in-flight gauge (so
    /// concurrent routers see the queued demand immediately), holds the
    /// node's service slot for the simulated service time — the store's
    /// `read_latency` plus any injected slow-node delay, charged per
    /// probe so degraded reads cost more — and then reads the frame
    /// bytes off disk. The slot is held only for the simulated sleep:
    /// with zero latency (the test default) probes never contend.
    fn probe_replica(&self, node: u32, path: &Path) -> Result<Vec<u8>, ClusterError> {
        self.metrics.node_read_begin(node);
        let result: Result<Vec<u8>, ClusterError> = (|| {
            let mut delay = self.config.read_latency;
            if let Some(inj) = &self.injector {
                if let Some(extra) = inj.node_delay(node) {
                    delay += extra;
                }
            }
            if !delay.is_zero() {
                let _slot = self.node_slots[node as usize].lock();
                std::thread::sleep(delay);
            }
            let mut frame = Vec::new();
            fs::File::open(path)?.read_to_end(&mut frame)?;
            Ok(frame)
        })();
        self.metrics.node_read_end(node, result.is_ok());
        result
    }

    /// Healthy replicas of a block currently on disk (frame verifies).
    /// Direct disk inspection — no fault injection, latency, or metrics.
    pub fn replica_count(&self, id: &BlockId) -> u32 {
        let mut n = 0;
        for replica in 0..self.replication_of(&id.file) {
            let Ok(mut f) = fs::File::open(self.replica_path(id, replica)) else {
                continue;
            };
            let mut frame = Vec::new();
            if f.read_to_end(&mut frame).is_ok() && decode_frame(&frame).is_some() {
                n += 1;
            }
        }
        n
    }

    /// Names of every stored file (union across datanodes), ascending.
    pub fn list_files(&self) -> Vec<String> {
        let mut names = BTreeSet::new();
        for node in 0..self.datanodes() {
            let Ok(entries) = fs::read_dir(self.datanode_dir(node)) else {
                continue;
            };
            for e in entries.filter_map(|e| e.ok()) {
                if e.path().is_dir() {
                    if let Some(s) = e.file_name().to_str() {
                        names.insert(s.to_string());
                    }
                }
            }
        }
        names.into_iter().collect()
    }

    /// Walks every block of every file, verifies each replica directly on
    /// disk, and rewrites missing or corrupt replicas from the first
    /// healthy sibling — the HDFS re-replication daemon in miniature.
    ///
    /// Scrubbing bypasses fault injection, simulated latency, and the
    /// I/O metrics: it models a maintenance process local to the storage
    /// layer, and its repair writes must stick even under a seeded
    /// corruption plan (which only damages *foreground* writes).
    pub fn scrub(&self) -> Result<ScrubReport, ClusterError> {
        let mut report = ScrubReport::default();
        for name in self.list_files() {
            self.scrub_file_into(&name, &mut report)?;
        }
        self.record_scrub_outcome(&report);
        Ok(report)
    }

    /// The storage-layer half of startup recovery (`tardis fsck`): one
    /// scrub pass — sweeps staging `*.tmp` debris and re-heals missing
    /// or corrupt replicas. Index-level recovery (`recover_store` in
    /// `tardis-core`) resolves manifest generations and collects
    /// orphaned generation files first, then finishes with this.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn fsck(&self) -> Result<ScrubReport, ClusterError> {
        self.scrub()
    }

    /// Every checksum-valid replica payload of `id` currently on disk,
    /// as `(replica, payload)` pairs. Direct disk inspection — no fault
    /// injection, latency, cache, or metrics — for callers that must
    /// see *all* versions a mixed-version crash left behind (manifest
    /// generation resolution), not whichever copy routing probes first.
    pub fn read_replica_payloads(&self, id: &BlockId) -> Vec<(u32, Vec<u8>)> {
        let mut out = Vec::new();
        for replica in 0..self.replication_of(&id.file) {
            let Ok(frame) = fs::read(self.replica_path(id, replica)) else {
                continue;
            };
            if let Some(payload) = decode_frame(&frame) {
                out.push((replica, payload.to_vec()));
            }
        }
        out
    }

    /// Rewrites every replica of `id` that does not already hold
    /// `payload` (tmp-then-rename, direct disk maintenance like scrub),
    /// returning how many replicas were rewritten. Cached copies of the
    /// file are purged so readers can't be served the losing version.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn heal_block(&self, id: &BlockId, payload: &[u8]) -> Result<u64, ClusterError> {
        let frame = encode_frame(payload);
        let mut healed = 0u64;
        for replica in 0..self.replication_of(&id.file) {
            let path = self.replica_path(id, replica);
            if fs::read(&path).map(|b| b == frame).unwrap_or(false) {
                continue;
            }
            let dir = path.parent().expect("replica path has a parent");
            fs::create_dir_all(dir)?;
            let tmp = dir.join(format!("block-{:06}.tmp", id.index));
            fs::write(&tmp, &frame)?;
            fs::rename(&tmp, &path)?;
            healed += 1;
        }
        if healed > 0 {
            self.cache.lock().purge_file(&id.file);
        }
        Ok(healed)
    }

    /// Deletes staging `block-*.tmp` / `block-*.rN.tmp` files under
    /// `name` on every datanode, returning how many were removed.
    fn sweep_tmp_files(&self, name: &str) -> Result<u64, ClusterError> {
        let mut swept = 0u64;
        for node in 0..self.datanodes() {
            let Ok(entries) = fs::read_dir(self.datanode_dir(node).join(name)) else {
                continue;
            };
            for e in entries.filter_map(|e| e.ok()) {
                let file_name = e.file_name();
                let Some(s) = file_name.to_str() else { continue };
                if s.starts_with("block-") && s.ends_with(".tmp") {
                    fs::remove_file(e.path())?;
                    swept += 1;
                }
            }
            // A directory that held only staged tmps (a crash before the
            // first rename of a brand-new file) is itself debris.
            let dir = self.datanode_dir(node).join(name);
            if fs::read_dir(&dir).is_ok_and(|mut d| d.next().is_none()) {
                fs::remove_dir(&dir)?;
            }
        }
        Ok(swept)
    }

    /// Raises `name`'s replication factor to `factor` (clamped to the
    /// datanode count; never lowered) and immediately tops every block up
    /// to it, reusing the scrub tmp+rename machinery — direct disk
    /// maintenance, no fault injection or simulated latency. The override
    /// lives on this store handle: subsequent reads route over the wider
    /// replica set and subsequent appends write `factor` copies. Returns
    /// the per-file scrub report; `replicas_added` counts the new copies.
    pub fn replicate_file(&self, name: &str, factor: u32) -> Result<ScrubReport, ClusterError> {
        let factor = factor.clamp(1, self.datanodes());
        {
            let mut over = self.file_replication.lock();
            let slot = over.entry(name.to_string()).or_insert(0);
            *slot = (*slot).max(factor);
        }
        let mut report = ScrubReport::default();
        self.scrub_file_into(name, &mut report)?;
        self.record_scrub_outcome(&report);
        Ok(report)
    }

    /// Meters a finished scrub/top-up pass.
    fn record_scrub_outcome(&self, report: &ScrubReport) {
        if report.replicas_repaired > 0 {
            self.metrics.record_scrub_repairs(report.replicas_repaired);
        }
        if report.replicas_added > 0 {
            self.metrics.record_replicas_added(report.replicas_added);
        }
        if report.tmp_swept > 0 {
            self.metrics.record_tmp_swept(report.tmp_swept);
        }
    }

    /// Scrubs one file into `report`: verifies every replica slot up to
    /// the file's *current* replication factor and rewrites broken slots
    /// from the first healthy sibling. Slots below the factor the blocks
    /// were written at count as `replicas_repaired` (a copy existed and
    /// was lost); slots at or above it count as `replicas_added` — the
    /// capacity a raised factor still owes.
    fn scrub_file_into(&self, name: &str, report: &mut ScrubReport) -> Result<(), ClusterError> {
        // Sweep staging debris first: `block-*.tmp` / `block-*.rN.tmp`
        // files a crashed write left between stage and rename. They are
        // invisible to readers (only `.bin` files are probed) but leak
        // disk forever if nobody collects them.
        report.tmp_swept += self.sweep_tmp_files(name)?;
        let target = self.replication_of(name);
        let count = self.scan_block_count(name);
        let written = self.written_factor(name, target, count);
        let mut lost = false;
        for index in 0..count {
            let id = BlockId::new(name, index);
            report.blocks_checked += 1;
            let mut healthy: Option<Vec<u8>> = None;
            let mut broken: Vec<u32> = Vec::new();
            for replica in 0..target {
                match fs::File::open(self.replica_path(&id, replica)) {
                    Ok(mut f) => {
                        let mut frame = Vec::new();
                        f.read_to_end(&mut frame)?;
                        if decode_frame(&frame).is_some() {
                            if healthy.is_none() {
                                healthy = Some(frame);
                            }
                        } else {
                            report.corrupt_replicas += 1;
                            broken.push(replica);
                        }
                    }
                    Err(_) => broken.push(replica),
                }
            }
            let Some(frame) = healthy else {
                report.blocks_lost += 1;
                lost = true;
                continue;
            };
            for replica in broken {
                let path = self.replica_path(&id, replica);
                let dir = path.parent().expect("replica path has a parent");
                fs::create_dir_all(dir)?;
                let tmp = dir.join(format!("block-{index:06}.tmp"));
                {
                    let mut f = fs::File::create(&tmp)?;
                    f.write_all(&frame)?;
                }
                // Scrub bypasses fault *probability* plans (it models a
                // local maintenance daemon) but still honours armed
                // crash points: a crash here strands the staged tmp,
                // which the next scrub's sweep collects.
                self.crash_point("dfs.scrub.repair")?;
                fs::rename(&tmp, &path)?;
                if replica < written {
                    report.replicas_repaired += 1;
                } else {
                    report.replicas_added += 1;
                }
            }
        }
        if count > 0 && !lost {
            // Every block now sits at the target factor: from here on,
            // a missing copy below it is a loss to repair.
            let mut map = self.written_replication.lock();
            let slot = map.entry(name.to_string()).or_insert(0);
            *slot = (*slot).max(target);
        }
        Ok(())
    }

    /// The factor `name`'s blocks were written at: recorded at append or
    /// scrub time when this handle did the writing, else inferred from
    /// disk — any slot that still holds a file (even a corrupt one)
    /// proves a copy was written there.
    fn written_factor(&self, name: &str, target: u32, count: u32) -> u32 {
        if let Some(&w) = self.written_replication.lock().get(name) {
            return w.clamp(1, target);
        }
        let mut w = 1u32;
        for index in 0..count {
            let id = BlockId::new(name, index);
            let present = (0..target)
                .filter(|&r| self.replica_path(&id, r).exists())
                .count() as u32;
            w = w.max(present);
        }
        w.clamp(1, target)
    }

    /// Current LRU cache occupancy in bytes (0 when disabled).
    pub fn cache_used_bytes(&self) -> usize {
        self.cache.lock().used_bytes()
    }

    /// Exempts every cached block of `name` from LRU eviction (see
    /// [`crate::cache::BlockCache::pin_file`]). The shared-scan batch
    /// engine pins a partition's file while its load is in flight so a
    /// concurrent partition's blocks cannot evict it mid-deserialize.
    pub fn pin_file(&self, name: &str) {
        self.cache.lock().pin_file(name);
    }

    /// Lifts a [`Self::pin_file`] pin and re-applies the cache budget.
    pub fn unpin_file(&self, name: &str) {
        self.cache.lock().unpin_file(name);
    }

    /// Outstanding pin count on `name` (0 = evictable).
    pub fn pin_count(&self, name: &str) -> usize {
        self.cache.lock().pin_count(name)
    }

    /// Sum of all outstanding cache pins — zero once every in-flight
    /// query has drained (the server's leak check).
    pub fn total_pins(&self) -> usize {
        self.cache.lock().total_pins()
    }

    /// Number of blocks stored under `name`: one past the highest block
    /// index present on any datanode (0 if absent).
    fn scan_block_count(&self, name: &str) -> u32 {
        let mut count = 0u32;
        for node in 0..self.datanodes() {
            let Ok(entries) = fs::read_dir(self.datanode_dir(node).join(name)) else {
                continue;
            };
            for e in entries.filter_map(|e| e.ok()) {
                if let Some(idx) = parse_block_index(&e.file_name()) {
                    count = count.max(idx + 1);
                }
            }
        }
        count
    }

    /// Lists the blocks of a file in index order.
    ///
    /// # Errors
    /// [`ClusterError::MissingFile`] when the file does not exist.
    pub fn list_blocks(&self, name: &str) -> Result<Vec<BlockId>, ClusterError> {
        if !self.file_exists(name) {
            return Err(ClusterError::MissingFile {
                name: name.to_string(),
            });
        }
        let count = self.scan_block_count(name);
        Ok((0..count).map(|i| BlockId::new(name, i)).collect())
    }

    /// Whether a file exists (on any datanode).
    pub fn file_exists(&self, name: &str) -> bool {
        (0..self.datanodes()).any(|node| self.datanode_dir(node).join(name).exists())
    }

    /// Deletes a file and all its replicas (no-op if absent), dropping
    /// cached copies *and* the file's cache pin so a re-created file can
    /// neither serve stale bytes nor inherit a stale eviction exemption.
    pub fn delete_file(&self, name: &str) -> Result<(), ClusterError> {
        self.cache.lock().purge_file(name);
        for node in 0..self.datanodes() {
            let dir = self.datanode_dir(node).join(name);
            if dir.exists() {
                fs::remove_dir_all(dir)?;
            }
        }
        self.next_index.lock().remove(name);
        Ok(())
    }

    /// Deletes every file whose name starts with `prefix`, returning how
    /// many were removed. Used by staged pipelines (the external-sort
    /// build spills `extsort-run-*` files) to clean their scratch space
    /// up in one sweep — both before a build (stale runs from an aborted
    /// predecessor) and after a successful merge.
    pub fn delete_files_with_prefix(&self, prefix: &str) -> Result<usize, ClusterError> {
        let mut deleted = 0;
        for name in self.list_files() {
            if name.starts_with(prefix) {
                self.delete_file(&name)?;
                deleted += 1;
            }
        }
        Ok(deleted)
    }

    /// Replaces `name` with a single block holding `payload`. Every
    /// replica's new frame is staged to a tmp file first, then all
    /// replicas are renamed *over* the existing copies (placement hashes
    /// the file name, so the paths are stable) — the versioned-manifest
    /// swap. Stale cached copies are purged and surplus blocks from a
    /// previous multi-block incarnation are removed afterwards.
    ///
    /// # Atomicity
    /// The swap is atomic **per replica**, not per file: each rename
    /// flips one whole checksummed frame, so a concurrent reader always
    /// observes a valid old *or* new frame, never a torn one. Staging
    /// every tmp before the first rename shrinks — but cannot close —
    /// the window in which a crash leaves replicas at different
    /// versions; after such a crash, reads of the file may
    /// nondeterministically serve either version depending on replica
    /// choice. Callers needing cross-replica agreement must version the
    /// payload itself (the index manifest embeds `manifest_version` and
    /// a checksum for exactly this reason).
    pub fn replace_file(&self, name: &str, payload: &[u8]) -> Result<BlockId, ClusterError> {
        let id = BlockId::new(name, 0);
        let key = FaultInjector::block_key(name, 0);
        let attempts = self.retry.attempts();
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.replace_block_attempt(&id, payload, key, attempt) {
                Ok(()) => break,
                Err(e) if e.is_transient() && attempt < attempts => {
                    self.metrics.record_block_write_retry();
                    self.retry.sleep_backoff(attempt);
                }
                Err(e) if e.is_transient() => {
                    return Err(ClusterError::RetriesExhausted {
                        op: "block write",
                        attempts: attempt,
                        source: Box::new(e),
                    });
                }
                Err(e) => return Err(e),
            }
        }
        self.metrics.record_block_write(payload.len() as u64);
        {
            let factor = self.replication_of(name);
            let mut written = self.written_replication.lock();
            let slot = written.entry(name.to_string()).or_insert(0);
            *slot = (*slot).max(factor);
        }
        // Remove surplus blocks a previous multi-block incarnation left
        // behind, then pin the next append index past the single block.
        let count = self.scan_block_count(name);
        for index in 1..count {
            for node in 0..self.datanodes() {
                let path = self
                    .datanode_dir(node)
                    .join(name)
                    .join(format!("block-{index:06}.bin"));
                if path.exists() {
                    fs::remove_file(path)?;
                }
            }
        }
        self.next_index.lock().insert(name.to_string(), 1);
        // Readers must not be served the pre-swap bytes from cache.
        self.cache.lock().purge_file(name);
        Ok(id)
    }

    /// Total logical size of a file in payload bytes (replica fan-out and
    /// frame headers excluded, like HDFS file sizes).
    pub fn file_size(&self, name: &str) -> Result<u64, ClusterError> {
        let mut total = 0;
        'blocks: for id in self.list_blocks(name)? {
            for replica in 0..self.replication_of(name) {
                if let Ok(meta) = fs::metadata(self.replica_path(&id, replica)) {
                    total += meta.len().saturating_sub(HEADER_LEN as u64);
                    continue 'blocks;
                }
            }
            return Err(ClusterError::MissingBlock {
                file: id.file,
                index: id.index,
            });
        }
        Ok(total)
    }

    /// Block-level sampling (§IV-B "Data Preprocessing"): selects
    /// `ceil(fraction · n_blocks)` distinct blocks uniformly at random with
    /// the given seed. `fraction >= 1.0` returns every block (in order).
    ///
    /// # Panics
    /// Panics if `fraction <= 0`.
    pub fn sample_block_ids(
        &self,
        name: &str,
        fraction: f64,
        seed: u64,
    ) -> Result<Vec<BlockId>, ClusterError> {
        assert!(fraction > 0.0, "sampling fraction must be positive");
        let mut ids = self.list_blocks(name)?;
        if fraction >= 1.0 || ids.is_empty() {
            return Ok(ids);
        }
        let take = ((fraction * ids.len() as f64).ceil() as usize).clamp(1, ids.len());
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut ids);
        ids.truncate(take);
        ids.sort();
        Ok(ids)
    }
}

/// Parses `block-NNNNNN.bin` into its index.
fn parse_block_index(name: &std::ffi::OsStr) -> Option<u32> {
    name.to_str()?
        .strip_prefix("block-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

impl Drop for Dfs {
    fn drop(&mut self) {
        if self.owns_root {
            let _ = fs::remove_dir_all(&self.root);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dfs() -> Dfs {
        Dfs::temp(DfsConfig::default(), Arc::new(Metrics::new())).unwrap()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let dfs = temp_dfs();
        let id = dfs.append_block("data", &[1, 2, 3, 4]).unwrap();
        assert_eq!(id, BlockId::new("data", 0));
        assert_eq!(dfs.read_block(&id).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn append_increments_indices() {
        let dfs = temp_dfs();
        let a = dfs.append_block("f", &[1]).unwrap();
        let b = dfs.append_block("f", &[2]).unwrap();
        assert_eq!((a.index, b.index), (0, 1));
        assert_eq!(dfs.list_blocks("f").unwrap().len(), 2);
    }

    #[test]
    fn missing_block_and_file_errors() {
        let dfs = temp_dfs();
        assert!(matches!(
            dfs.read_block(&BlockId::new("nope", 0)),
            Err(ClusterError::MissingBlock { .. })
        ));
        assert!(matches!(
            dfs.list_blocks("nope"),
            Err(ClusterError::MissingFile { .. })
        ));
    }

    #[test]
    fn write_blocks_bulk() {
        let dfs = temp_dfs();
        let ids = dfs
            .write_blocks("bulk", (0..5).map(|i| vec![i as u8; 3]))
            .unwrap();
        assert_eq!(ids.len(), 5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 3]);
        }
    }

    #[test]
    fn delete_file_removes_blocks() {
        let dfs = temp_dfs();
        dfs.append_block("gone", &[9]).unwrap();
        assert!(dfs.file_exists("gone"));
        dfs.delete_file("gone").unwrap();
        assert!(!dfs.file_exists("gone"));
        assert!(dfs.list_files().is_empty());
        // Re-created file restarts numbering at 0.
        let id = dfs.append_block("gone", &[8]).unwrap();
        assert_eq!(id.index, 0);
    }

    #[test]
    fn file_size_sums_blocks() {
        let dfs = temp_dfs();
        dfs.append_block("s", &[0; 10]).unwrap();
        dfs.append_block("s", &[0; 32]).unwrap();
        assert_eq!(dfs.file_size("s").unwrap(), 42);
    }

    #[test]
    fn metrics_track_io() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(DfsConfig::default(), Arc::clone(&metrics)).unwrap();
        let id = dfs.append_block("m", &[0; 7]).unwrap();
        dfs.read_block(&id).unwrap();
        let s = metrics.snapshot();
        // Logical I/O: replica fan-out and frame headers don't inflate it.
        assert_eq!(s.blocks_written, 1);
        assert_eq!(s.bytes_written, 7);
        assert_eq!(s.blocks_read, 1);
        assert_eq!(s.bytes_read, 7);
    }

    #[test]
    fn shared_read_cache_hit_skips_frame_verification() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(
            DfsConfig {
                cache_bytes: 1 << 20,
                ..DfsConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let id = dfs.append_block("p", &[5; 64]).unwrap();
        // Corrupt the first-probed replica on disk: the first (miss)
        // read must detect it, fail over, and cache the verified
        // payload.
        let path = dfs.replica_path(&id, dfs.probe_order(&id)[0]);
        let mut frame = fs::read(&path).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        fs::write(&path, &frame).unwrap();
        let first = dfs.read_block_shared(&id).unwrap();
        assert_eq!(first.as_slice(), &[5u8; 64]);
        let s1 = metrics.snapshot();
        assert_eq!(s1.checksum_failures, 1);
        assert_eq!(s1.cache_misses, 1);
        assert_eq!(s1.replica_failovers, 1);
        // Pinned re-acquisition: the hit must return the *same* Arc —
        // zero copies, no frame walk, so the bad replica on disk cannot
        // grow checksum_failures again (the cold-start double-read fix).
        dfs.pin_file("p");
        let second = dfs.read_block_shared(&id).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit must be zero-copy");
        let s2 = metrics.snapshot();
        assert_eq!(s2.checksum_failures, 1, "cache hit re-walked frames");
        assert_eq!(s2.cache_hits, 1);
        assert_eq!(s2.blocks_read, 1, "hit must not re-read the block");
        dfs.unpin_file("p");
        assert_eq!(dfs.total_pins(), 0);
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let dfs = temp_dfs();
        dfs.write_blocks("d", (0..20).map(|_| vec![0u8])).unwrap();
        let a = dfs.sample_block_ids("d", 0.25, 7).unwrap();
        let b = dfs.sample_block_ids("d", 0.25, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let c = dfs.sample_block_ids("d", 0.25, 8).unwrap();
        assert!(c != a || c.len() == a.len(), "different seed may differ");
    }

    #[test]
    fn sampling_full_fraction_returns_all() {
        let dfs = temp_dfs();
        dfs.write_blocks("d", (0..4).map(|_| vec![0u8])).unwrap();
        assert_eq!(dfs.sample_block_ids("d", 1.0, 1).unwrap().len(), 4);
        assert_eq!(dfs.sample_block_ids("d", 5.0, 1).unwrap().len(), 4);
    }

    #[test]
    fn sampling_tiny_fraction_returns_at_least_one() {
        let dfs = temp_dfs();
        dfs.write_blocks("d", (0..10).map(|_| vec![0u8])).unwrap();
        assert_eq!(dfs.sample_block_ids("d", 0.001, 1).unwrap().len(), 1);
    }

    #[test]
    fn read_latency_is_applied() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(
            DfsConfig {
                read_latency: Duration::from_millis(20),
                ..DfsConfig::default()
            },
            metrics,
        )
        .unwrap();
        let id = dfs.append_block("slow", &[1]).unwrap();
        let t0 = std::time::Instant::now();
        dfs.read_block(&id).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    // ---- replication, failover, scrubbing ----

    #[test]
    fn replicas_land_on_distinct_datanodes() {
        let dfs = temp_dfs();
        let ids = dfs
            .write_blocks("r", (0..10).map(|i| vec![i as u8; 4]))
            .unwrap();
        for id in &ids {
            assert_eq!(dfs.replica_count(id), 2);
            let (a, b) = (dfs.replica_path(id, 0), dfs.replica_path(id, 1));
            assert_ne!(a.parent(), b.parent(), "replicas share a datanode");
            assert!(a.exists() && b.exists());
        }
        // Placement is a pure function of the block id.
        assert_eq!(
            dfs.replica_path(&ids[0], 0),
            dfs.replica_path(&BlockId::new("r", 0), 0)
        );
    }

    #[test]
    fn replication_one_writes_single_copy() {
        let dfs = Dfs::temp(
            DfsConfig {
                replication: 1,
                ..DfsConfig::default()
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let id = dfs.append_block("solo", &[5; 9]).unwrap();
        assert_eq!(dfs.replica_count(&id), 1);
        assert_eq!(dfs.read_block(&id).unwrap(), vec![5; 9]);
    }

    #[test]
    fn replication_is_clamped_to_datanodes() {
        let dfs = Dfs::temp(
            DfsConfig {
                replication: 5,
                datanodes: 2,
                ..DfsConfig::default()
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        assert_eq!(dfs.replication(), 2);
        let id = dfs.append_block("c", &[1]).unwrap();
        assert_eq!(dfs.replica_count(&id), 2);
    }

    #[test]
    fn datanode_wipe_is_masked_by_failover() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(DfsConfig::default(), Arc::clone(&metrics)).unwrap();
        let ids = dfs
            .write_blocks("w", (0..12).map(|i| vec![i as u8; 8]))
            .unwrap();
        fs::remove_dir_all(dfs.datanode_dir(0)).unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 8]);
        }
        let s = metrics.snapshot();
        assert!(s.replica_failovers > 0, "no failover despite a dead node");
        assert_eq!(s.block_read_retries, 0, "failover must not burn retries");
        // Missing-copy probes are attributed to the wiped node, and only
        // to it — the surviving nodes' copies are all present.
        assert!(s.node_probe_missing[0] > 0, "wiped node probes unmetered");
        assert_eq!(s.node_probe_missing[1..].iter().sum::<u64>(), 0);
    }

    #[test]
    fn corrupt_replica_is_detected_and_failed_over() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(DfsConfig::default(), Arc::clone(&metrics)).unwrap();
        let id = dfs.append_block("x", &[7; 32]).unwrap();
        // Flip one payload byte of the first-probed replica on disk.
        let first = dfs.probe_order(&id)[0];
        let path = dfs.replica_path(&id, first);
        let mut frame = fs::read(&path).unwrap();
        frame[HEADER_LEN + 3] ^= 0xFF;
        fs::write(&path, &frame).unwrap();
        assert_eq!(dfs.read_block(&id).unwrap(), vec![7; 32]);
        let s = metrics.snapshot();
        assert_eq!(s.checksum_failures, 1);
        assert_eq!(s.replica_failovers, 1);
        // The rejection is attributed to the node that served the bytes.
        assert_eq!(s.node_probe_corrupt.iter().sum::<u64>(), 1);
    }

    #[test]
    fn all_replicas_corrupt_is_permanent() {
        let dfs = temp_dfs();
        let id = dfs.append_block("dead", &[3; 16]).unwrap();
        for r in 0..2 {
            let path = dfs.replica_path(&id, r);
            let mut frame = fs::read(&path).unwrap();
            frame[HEADER_LEN] ^= 0xFF;
            fs::write(&path, &frame).unwrap();
        }
        match dfs.read_block(&id) {
            Err(ClusterError::AllReplicasFailed { replicas, .. }) => assert_eq!(replicas, 2),
            other => panic!("expected AllReplicasFailed, got {other:?}"),
        }
    }

    #[test]
    fn scrub_restores_replicas_after_datanode_wipe() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(DfsConfig::default(), Arc::clone(&metrics)).unwrap();
        let ids = dfs
            .write_blocks("s", (0..12).map(|i| vec![i as u8; 8]))
            .unwrap();
        fs::remove_dir_all(dfs.datanode_dir(1)).unwrap();
        let degraded: u32 = ids.iter().map(|id| 2 - dfs.replica_count(id)).sum();
        assert!(degraded > 0, "wipe should cost some replicas");
        let report = dfs.scrub().unwrap();
        assert_eq!(report.blocks_checked, 12);
        assert_eq!(report.replicas_repaired, degraded as u64);
        assert_eq!(report.blocks_lost, 0);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.replica_count(id), 2, "block {i} not re-replicated");
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 8]);
        }
        assert_eq!(metrics.snapshot().scrub_repairs, degraded as u64);
        // A second scrub finds nothing to do.
        assert_eq!(dfs.scrub().unwrap().replicas_repaired, 0);
    }

    #[test]
    fn scrub_repairs_corrupt_replica_and_reports_loss() {
        let dfs = temp_dfs();
        let a = dfs.append_block("f", &[1; 8]).unwrap();
        let b = dfs.append_block("f", &[2; 8]).unwrap();
        // Corrupt one replica of `a` (repairable) and both of `b` (lost).
        for (id, replicas) in [(&a, 0..1u32), (&b, 0..2u32)] {
            for r in replicas {
                let path = dfs.replica_path(id, r);
                let mut frame = fs::read(&path).unwrap();
                frame[HEADER_LEN + 1] ^= 0xA5;
                fs::write(&path, &frame).unwrap();
            }
        }
        let report = dfs.scrub().unwrap();
        assert_eq!(report.blocks_checked, 2);
        assert_eq!(report.corrupt_replicas, 3);
        assert_eq!(report.replicas_repaired, 1);
        assert_eq!(report.blocks_lost, 1);
        assert_eq!(dfs.replica_count(&a), 2);
        assert_eq!(dfs.read_block(&a).unwrap(), vec![1; 8]);
        assert!(matches!(
            dfs.read_block(&b),
            Err(ClusterError::AllReplicasFailed { .. })
        ));
    }

    fn faulty_dfs(plan: crate::fault::FaultPlan, retry: RetryPolicy) -> (Dfs, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::new());
        let mut dfs = Dfs::temp(DfsConfig::default(), Arc::clone(&metrics)).unwrap();
        let inj = Arc::new(FaultInjector::new(plan, Arc::clone(&metrics)));
        dfs.set_fault_injection(inj, retry);
        (dfs, metrics)
    }

    /// A generous zero-backoff budget so tests exercising *masking* are
    /// deterministic-in-outcome regardless of seed (p=0.3 over 8
    /// attempts leaves ~7e-5 exhaustion odds per block).
    fn deep_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn retries_mask_transient_read_faults() {
        let (dfs, metrics) = faulty_dfs(
            crate::fault::FaultPlan {
                seed: 3,
                block_read_fail_p: 0.3,
                ..crate::fault::FaultPlan::none()
            },
            deep_retry(),
        );
        let ids = dfs
            .write_blocks("r", (0..40).map(|i| vec![i as u8; 8]))
            .unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 8]);
        }
        let s = metrics.snapshot();
        assert!(s.faults_injected > 0, "plan injected nothing");
        assert!(s.block_read_retries > 0, "no retries recorded");
    }

    #[test]
    fn retries_mask_transient_write_faults() {
        let (dfs, metrics) = faulty_dfs(
            crate::fault::FaultPlan {
                seed: 5,
                block_write_fail_p: 0.3,
                ..crate::fault::FaultPlan::none()
            },
            deep_retry(),
        );
        let ids = dfs
            .write_blocks("w", (0..40).map(|i| vec![i as u8; 4]))
            .unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 4]);
        }
        assert!(metrics.snapshot().block_write_retries > 0);
    }

    #[test]
    fn certain_faults_exhaust_into_typed_error() {
        let (dfs, metrics) = faulty_dfs(
            crate::fault::FaultPlan {
                block_read_fail_p: 1.0,
                ..crate::fault::FaultPlan::none()
            },
            RetryPolicy {
                max_attempts: 3,
                backoff_base: Duration::ZERO,
                backoff_cap: Duration::ZERO,
                ..RetryPolicy::default()
            },
        );
        let id = dfs.append_block("x", &[1, 2, 3]).unwrap();
        match dfs.read_block(&id) {
            Err(ClusterError::RetriesExhausted { op, attempts, .. }) => {
                assert_eq!(op, "block read");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(metrics.snapshot().block_read_retries, 2);
    }

    #[test]
    fn missing_block_is_not_retried() {
        let (dfs, metrics) = faulty_dfs(crate::fault::FaultPlan::none(), RetryPolicy::default());
        assert!(matches!(
            dfs.read_block(&BlockId::new("absent", 0)),
            Err(ClusterError::MissingBlock { .. })
        ));
        assert_eq!(metrics.snapshot().block_read_retries, 0);
    }

    #[test]
    fn killing_one_replica_of_every_block_is_fully_masked() {
        let (dfs, metrics) = faulty_dfs(
            crate::fault::FaultPlan {
                seed: 0xDEAD,
                kill_one_replica: true,
                ..crate::fault::FaultPlan::none()
            },
            RetryPolicy::default(),
        );
        let ids = dfs
            .write_blocks("k", (0..20).map(|i| vec![i as u8; 8]))
            .unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 8]);
        }
        let s = metrics.snapshot();
        // Worst single-replica loss: handled entirely by failover, not
        // by the retry budget.
        assert!(s.replica_failovers > 0, "some first-probed kill expected");
        assert_eq!(s.block_read_retries, 0);
        assert!(s.node_probe_dead.iter().sum::<u64>() > 0);
    }

    #[test]
    fn seeded_write_corruption_is_masked_then_scrubbed() {
        // Pick (deterministically) a seed whose corruption pattern
        // damages some replicas but never both replicas of one block, so
        // every read stays serveable and every damaged copy scrubbable.
        let keys: Vec<u64> = (0..30).map(|i| FaultInjector::block_key("c", i)).collect();
        let seed = (1..200u64)
            .find(|&s| {
                let inj = FaultInjector::new(
                    crate::fault::FaultPlan {
                        seed: s,
                        block_corrupt_p: 0.2,
                        ..crate::fault::FaultPlan::none()
                    },
                    Arc::new(Metrics::new()),
                );
                let hits: Vec<(bool, bool)> = keys
                    .iter()
                    .map(|&k| (inj.corrupts_write(k, 0), inj.corrupts_write(k, 1)))
                    .collect();
                hits.iter().any(|&(a, b)| a || b) && !hits.iter().any(|&(a, b)| a && b)
            })
            .expect("some seed under 200 must qualify");
        let (dfs, metrics) = faulty_dfs(
            crate::fault::FaultPlan {
                seed,
                block_corrupt_p: 0.2,
                ..crate::fault::FaultPlan::none()
            },
            RetryPolicy::default(),
        );
        let ids = dfs
            .write_blocks("c", (0..30).map(|i| vec![i as u8; 16]))
            .unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 16]);
        }
        assert!(metrics.snapshot().checksum_failures > 0, "no corruption hit");
        let report = dfs.scrub().unwrap();
        assert!(report.corrupt_replicas > 0);
        assert_eq!(report.replicas_repaired, report.corrupt_replicas);
        assert_eq!(report.blocks_lost, 0);
        for id in &ids {
            assert_eq!(dfs.replica_count(id), 2);
        }
        // Repairs stick: a fresh scrub is clean.
        assert_eq!(dfs.scrub().unwrap().corrupt_replicas, 0);
    }

    #[test]
    fn faulted_runs_read_identical_bytes() {
        // The determinism contract: same data read through a faulty DFS
        // and a clean one must be byte-identical.
        let clean = temp_dfs();
        let (faulty, _) = faulty_dfs(
            crate::fault::FaultPlan {
                seed: 11,
                block_read_fail_p: 0.25,
                block_write_fail_p: 0.25,
                ..crate::fault::FaultPlan::none()
            },
            deep_retry(),
        );
        let payloads: Vec<Vec<u8>> = (0..30).map(|i| vec![(i * 7) as u8; 16]).collect();
        let a = clean.write_blocks("d", payloads.clone()).unwrap();
        let b = faulty.write_blocks("d", payloads).unwrap();
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(clean.read_block(ca).unwrap(), faulty.read_block(cb).unwrap());
        }
    }

    // ---- replica-aware routing and adaptive re-replication ----

    /// Datanode index hosting replica `r` of `id`, parsed from its path.
    fn node_hosting(dfs: &Dfs, id: &BlockId, r: u32) -> u32 {
        let path = dfs.replica_path(id, r);
        let node_dir = path.parent().unwrap().parent().unwrap();
        node_dir
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .strip_prefix("node-")
            .unwrap()
            .parse()
            .unwrap()
    }

    #[test]
    fn repeated_reads_of_one_block_alternate_replicas() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(DfsConfig::default(), Arc::clone(&metrics)).unwrap();
        let id = dfs.append_block("b", &[9; 16]).unwrap();
        for _ in 0..6 {
            assert_eq!(dfs.read_block(&id).unwrap(), vec![9; 16]);
        }
        // Least-served routing must alternate between the two replicas:
        // exactly 3 reads per hosting node, no failovers involved.
        let s = metrics.snapshot();
        let serving: Vec<u64> = s.node_reads.iter().copied().filter(|&n| n > 0).collect();
        assert_eq!(serving, vec![3, 3], "reads did not alternate: {:?}", s.node_reads);
        assert_eq!(s.replica_failovers, 0);
    }

    #[test]
    fn probe_order_is_deterministic_when_quiescent() {
        let dfs = temp_dfs();
        let id = dfs.append_block("q", &[1; 8]).unwrap();
        let order = dfs.probe_order(&id);
        assert_eq!(order.len(), 2);
        assert_eq!(order, dfs.probe_order(&id), "quiescent order must be stable");
        // Zero load everywhere: ties break by ascending node id.
        let nodes: Vec<u32> = order.iter().map(|&r| node_hosting(&dfs, &id, r)).collect();
        assert!(nodes[0] < nodes[1]);
    }

    #[test]
    fn in_flight_probes_steer_reads_to_the_idle_replica() {
        let metrics = Arc::new(Metrics::new());
        let mut dfs = Dfs::temp(
            DfsConfig {
                read_latency: Duration::from_millis(1),
                ..DfsConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let id = dfs.append_block("z", &[1; 32]).unwrap();
        let order = dfs.probe_order(&id);
        let slow = node_hosting(&dfs, &id, order[0]);
        let fast = node_hosting(&dfs, &id, order[1]);
        // The first-probed node becomes a straggler: a long service time
        // for every probe it hosts.
        dfs.set_fault_injection(
            Arc::new(FaultInjector::new(
                crate::fault::FaultPlan {
                    slow_node: Some((slow, Duration::from_millis(250))),
                    ..crate::fault::FaultPlan::none()
                },
                Arc::clone(&metrics),
            )),
            RetryPolicy::default(),
        );
        let dfs = Arc::new(dfs);
        let bg = Arc::clone(&dfs);
        let bg_id = id.clone();
        let t = std::thread::spawn(move || bg.read_block(&bg_id).unwrap());
        // Once the slow probe is visibly in flight, a concurrent read
        // must steer to the idle replica instead of queueing behind it.
        while metrics.node_load(slow).0 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let t0 = std::time::Instant::now();
        assert_eq!(dfs.read_block(&id).unwrap(), vec![1; 32]);
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "read queued behind the slow node"
        );
        assert_eq!(metrics.snapshot().node_reads[fast as usize], 1);
        assert_eq!(t.join().unwrap(), vec![1; 32]);
        assert_eq!(metrics.snapshot().node_reads[slow as usize], 1);
    }

    #[test]
    fn read_latency_is_charged_per_probe_on_failover() {
        let dfs = Dfs::temp(
            DfsConfig {
                read_latency: Duration::from_millis(30),
                ..DfsConfig::default()
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let id = dfs.append_block("lat", &[4; 16]).unwrap();
        let first = dfs.probe_order(&id)[0];
        let path = dfs.replica_path(&id, first);
        let mut frame = fs::read(&path).unwrap();
        frame[HEADER_LEN + 2] ^= 0xFF;
        fs::write(&path, &frame).unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(dfs.read_block(&id).unwrap(), vec![4; 16]);
        // Two physical probes (corrupt, then healthy) — each pays the
        // simulated latency, so a degraded read costs at least double.
        assert!(
            t0.elapsed() >= Duration::from_millis(60),
            "failover read must pay latency per probe"
        );
    }

    #[test]
    fn replicate_file_tops_up_and_widens_routing() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(
            DfsConfig {
                replication: 1,
                datanodes: 3,
                ..DfsConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let ids = dfs
            .write_blocks("p", (0..4).map(|i| vec![i as u8; 8]))
            .unwrap();
        for id in &ids {
            assert_eq!(dfs.replica_count(id), 1);
        }
        assert_eq!(dfs.replication_of("p"), 1);
        let report = dfs.replicate_file("p", 3).unwrap();
        assert_eq!(report.blocks_checked, 4);
        assert_eq!(report.replicas_added, 8, "4 blocks × 2 new copies");
        assert_eq!(report.replicas_repaired, 0);
        assert_eq!(report.blocks_lost, 0);
        assert_eq!(dfs.replication_of("p"), 3);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.replica_count(id), 3);
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 8]);
        }
        assert_eq!(metrics.snapshot().replicas_added, 8);
        // The top-up is idempotent, and a full scrub now treats the
        // raised factor as the file's target.
        assert_eq!(dfs.replicate_file("p", 3).unwrap().replicas_added, 0);
        let again = dfs.scrub().unwrap();
        assert_eq!((again.replicas_added, again.replicas_repaired), (0, 0));
        // Losing a topped-up copy is a repair now, not an addition.
        fs::remove_file(dfs.replica_path(&ids[0], 2)).unwrap();
        let fixed = dfs.scrub().unwrap();
        assert_eq!((fixed.replicas_repaired, fixed.replicas_added), (1, 0));
        // New appends to the raised file write the raised factor.
        let extra = dfs.append_block("p", &[9; 8]).unwrap();
        assert_eq!(dfs.replica_count(&extra), 3);
    }

    #[test]
    fn scrub_tops_up_preexisting_store_after_factor_raise() {
        let root = std::env::temp_dir().join(format!("tardis-dfs-topup-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        {
            let dfs = Dfs::at_dir(
                &root,
                DfsConfig {
                    replication: 1,
                    datanodes: 3,
                    ..DfsConfig::default()
                },
                Arc::new(Metrics::new()),
            )
            .unwrap();
            dfs.write_blocks("f", (0..5).map(|i| vec![i as u8; 4])).unwrap();
        }
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::at_dir(
            &root,
            DfsConfig {
                replication: 2,
                datanodes: 3,
                ..DfsConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let report = dfs.scrub().unwrap();
        assert_eq!(report.blocks_checked, 5);
        // The old blocks were written at factor 1: the missing second
        // copies are capacity to add, not losses to repair.
        assert_eq!(report.replicas_added, 5);
        assert_eq!(report.replicas_repaired, 0);
        assert_eq!(metrics.snapshot().replicas_added, 5);
        for i in 0..5 {
            assert_eq!(dfs.replica_count(&BlockId::new("f", i)), 2);
        }
        assert_eq!(dfs.scrub().unwrap().replicas_added, 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn at_dir_resumes_block_numbering() {
        let root = std::env::temp_dir().join(format!("tardis-dfs-resume-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        {
            let dfs = Dfs::at_dir(&root, DfsConfig::default(), Arc::new(Metrics::new())).unwrap();
            dfs.append_block("f", &[1]).unwrap();
            dfs.append_block("f", &[2]).unwrap();
        }
        {
            let dfs = Dfs::at_dir(&root, DfsConfig::default(), Arc::new(Metrics::new())).unwrap();
            let id = dfs.append_block("f", &[3]).unwrap();
            assert_eq!(id.index, 2);
            assert_eq!(dfs.list_blocks("f").unwrap().len(), 3);
        }
        fs::remove_dir_all(&root).unwrap();
    }
}
