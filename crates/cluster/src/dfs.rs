//! A block-based distributed-file-system stand-in backed by local disk.
//!
//! HDFS stores files as large blocks (64/128 MB, Table II) spread over the
//! cluster; loading a block is a high-latency operation the paper's Bloom
//! filters exist to avoid (§V-A). `Dfs` reproduces that I/O model: every
//! named file is a directory of numbered block files, reads/writes go
//! through real file I/O, and a configurable artificial per-block latency
//! lets experiments model a remote store whose blocks are *not* hot in the
//! OS page cache.

use crate::error::ClusterError;
use crate::metrics::Metrics;
use crate::rng::SplitMix64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a block: file name plus block index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// The DFS file this block belongs to.
    pub file: String,
    /// Zero-based block index within the file.
    pub index: u32,
}

impl BlockId {
    /// Creates a block id.
    pub fn new(file: impl Into<String>, index: u32) -> BlockId {
        BlockId {
            file: file.into(),
            index,
        }
    }
}

/// Storage-layer configuration.
#[derive(Debug, Clone, Default)]
pub struct DfsConfig {
    /// Artificial latency added to every block read (simulates remote /
    /// cold storage; 0 by default for tests).
    pub read_latency: Duration,
    /// Artificial latency added to every block write.
    pub write_latency: Duration,
    /// Byte budget of the in-memory LRU block cache (0 disables caching;
    /// cached reads skip disk and the read latency).
    pub cache_bytes: usize,
}

/// The block store. Cloneable-by-reference via the owning [`crate::Cluster`].
pub struct Dfs {
    root: PathBuf,
    config: DfsConfig,
    metrics: Arc<Metrics>,
    /// Next block index per file (appends are serialized per store).
    next_index: Mutex<HashMap<String, u32>>,
    /// Optional LRU block cache.
    cache: Mutex<crate::cache::BlockCache>,
    /// Whether `root` is a temp dir we own and must remove on drop.
    owns_root: bool,
}

impl Dfs {
    /// Creates a store in a fresh temporary directory (removed on drop).
    pub fn temp(config: DfsConfig, metrics: Arc<Metrics>) -> Result<Dfs, ClusterError> {
        let root = std::env::temp_dir().join(format!(
            "tardis-dfs-{}-{:x}",
            std::process::id(),
            SplitMix64::new(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0)
            )
            .next_u64()
        ));
        fs::create_dir_all(&root)?;
        let cache = Mutex::new(crate::cache::BlockCache::new(config.cache_bytes));
        Ok(Dfs {
            root,
            config,
            metrics,
            next_index: Mutex::new(HashMap::new()),
            cache,
            owns_root: true,
        })
    }

    /// Creates a store rooted at an existing directory (not removed on
    /// drop). Existing block files under it are picked up lazily.
    pub fn at_dir(dir: &Path, config: DfsConfig, metrics: Arc<Metrics>) -> Result<Dfs, ClusterError> {
        fs::create_dir_all(dir)?;
        let cache = Mutex::new(crate::cache::BlockCache::new(config.cache_bytes));
        Ok(Dfs {
            root: dir.to_path_buf(),
            config,
            metrics,
            next_index: Mutex::new(HashMap::new()),
            cache,
            owns_root: false,
        })
    }

    /// The root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn block_path(&self, id: &BlockId) -> PathBuf {
        self.file_dir(&id.file).join(format!("block-{:06}.bin", id.index))
    }

    /// Appends one block to `name` (creating the file on first append).
    /// Returns the new block's id.
    pub fn append_block(&self, name: &str, bytes: &[u8]) -> Result<BlockId, ClusterError> {
        let index = {
            let mut map = self.next_index.lock();
            let next = map.entry(name.to_string()).or_insert_with(|| {
                // Resume after existing blocks if the dir already has some.
                self.scan_block_count(name)
            });
            let idx = *next;
            *next += 1;
            idx
        };
        let id = BlockId::new(name, index);
        let dir = self.file_dir(name);
        fs::create_dir_all(&dir)?;
        if !self.config.write_latency.is_zero() {
            std::thread::sleep(self.config.write_latency);
        }
        let tmp = dir.join(format!("block-{index:06}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
        }
        fs::rename(&tmp, self.block_path(&id))?;
        self.metrics.record_block_write(bytes.len() as u64);
        Ok(id)
    }

    /// Writes a sequence of blocks to `name`, returning their ids.
    pub fn write_blocks(
        &self,
        name: &str,
        blocks: impl IntoIterator<Item = Vec<u8>>,
    ) -> Result<Vec<BlockId>, ClusterError> {
        blocks
            .into_iter()
            .map(|b| self.append_block(name, &b))
            .collect()
    }

    /// Reads one block fully into memory; served from the LRU cache when
    /// enabled and hot (a cached read pays neither disk I/O nor the
    /// simulated latency, and is metered as a cache hit, not a block
    /// read).
    pub fn read_block(&self, id: &BlockId) -> Result<Vec<u8>, ClusterError> {
        // Cache fast path.
        {
            let mut cache = self.cache.lock();
            if cache.enabled() {
                if let Some(bytes) = cache.get(id) {
                    self.metrics.record_cache_hit();
                    return Ok(bytes.as_ref().clone());
                }
                self.metrics.record_cache_miss();
            }
        }
        let path = self.block_path(id);
        if !path.exists() {
            return Err(ClusterError::MissingBlock {
                file: id.file.clone(),
                index: id.index,
            });
        }
        if !self.config.read_latency.is_zero() {
            std::thread::sleep(self.config.read_latency);
        }
        let mut bytes = Vec::new();
        fs::File::open(&path)?.read_to_end(&mut bytes)?;
        self.metrics.record_block_read(bytes.len() as u64);
        {
            let mut cache = self.cache.lock();
            if cache.enabled() {
                cache.put(id.clone(), Arc::new(bytes.clone()));
            }
        }
        Ok(bytes)
    }

    /// Current LRU cache occupancy in bytes (0 when disabled).
    pub fn cache_used_bytes(&self) -> usize {
        self.cache.lock().used_bytes()
    }

    /// Number of blocks currently stored under `name` (0 if absent).
    fn scan_block_count(&self, name: &str) -> u32 {
        let dir = self.file_dir(name);
        match fs::read_dir(&dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .map(|n| n.starts_with("block-") && n.ends_with(".bin"))
                        .unwrap_or(false)
                })
                .count() as u32,
            Err(_) => 0,
        }
    }

    /// Lists the blocks of a file in index order.
    ///
    /// # Errors
    /// [`ClusterError::MissingFile`] when the file does not exist.
    pub fn list_blocks(&self, name: &str) -> Result<Vec<BlockId>, ClusterError> {
        if !self.file_dir(name).exists() {
            return Err(ClusterError::MissingFile {
                name: name.to_string(),
            });
        }
        let count = self.scan_block_count(name);
        Ok((0..count).map(|i| BlockId::new(name, i)).collect())
    }

    /// Whether a file exists.
    pub fn file_exists(&self, name: &str) -> bool {
        self.file_dir(name).exists()
    }

    /// Deletes a file and all its blocks (no-op if absent), dropping any
    /// cached copies so a re-created file never serves stale bytes.
    pub fn delete_file(&self, name: &str) -> Result<(), ClusterError> {
        self.cache.lock().invalidate_file(name);
        let dir = self.file_dir(name);
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        self.next_index.lock().remove(name);
        Ok(())
    }

    /// Total stored size of a file in bytes.
    pub fn file_size(&self, name: &str) -> Result<u64, ClusterError> {
        let mut total = 0;
        for id in self.list_blocks(name)? {
            total += fs::metadata(self.block_path(&id))?.len();
        }
        Ok(total)
    }

    /// Block-level sampling (§IV-B "Data Preprocessing"): selects
    /// `ceil(fraction · n_blocks)` distinct blocks uniformly at random with
    /// the given seed. `fraction >= 1.0` returns every block (in order).
    ///
    /// # Panics
    /// Panics if `fraction <= 0`.
    pub fn sample_block_ids(
        &self,
        name: &str,
        fraction: f64,
        seed: u64,
    ) -> Result<Vec<BlockId>, ClusterError> {
        assert!(fraction > 0.0, "sampling fraction must be positive");
        let mut ids = self.list_blocks(name)?;
        if fraction >= 1.0 || ids.is_empty() {
            return Ok(ids);
        }
        let take = ((fraction * ids.len() as f64).ceil() as usize).clamp(1, ids.len());
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut ids);
        ids.truncate(take);
        ids.sort();
        Ok(ids)
    }
}

impl Drop for Dfs {
    fn drop(&mut self) {
        if self.owns_root {
            let _ = fs::remove_dir_all(&self.root);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dfs() -> Dfs {
        Dfs::temp(DfsConfig::default(), Arc::new(Metrics::new())).unwrap()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let dfs = temp_dfs();
        let id = dfs.append_block("data", &[1, 2, 3, 4]).unwrap();
        assert_eq!(id, BlockId::new("data", 0));
        assert_eq!(dfs.read_block(&id).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn append_increments_indices() {
        let dfs = temp_dfs();
        let a = dfs.append_block("f", &[1]).unwrap();
        let b = dfs.append_block("f", &[2]).unwrap();
        assert_eq!((a.index, b.index), (0, 1));
        assert_eq!(dfs.list_blocks("f").unwrap().len(), 2);
    }

    #[test]
    fn missing_block_and_file_errors() {
        let dfs = temp_dfs();
        assert!(matches!(
            dfs.read_block(&BlockId::new("nope", 0)),
            Err(ClusterError::MissingBlock { .. })
        ));
        assert!(matches!(
            dfs.list_blocks("nope"),
            Err(ClusterError::MissingFile { .. })
        ));
    }

    #[test]
    fn write_blocks_bulk() {
        let dfs = temp_dfs();
        let ids = dfs
            .write_blocks("bulk", (0..5).map(|i| vec![i as u8; 3]))
            .unwrap();
        assert_eq!(ids.len(), 5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dfs.read_block(id).unwrap(), vec![i as u8; 3]);
        }
    }

    #[test]
    fn delete_file_removes_blocks() {
        let dfs = temp_dfs();
        dfs.append_block("gone", &[9]).unwrap();
        assert!(dfs.file_exists("gone"));
        dfs.delete_file("gone").unwrap();
        assert!(!dfs.file_exists("gone"));
        // Re-created file restarts numbering at 0.
        let id = dfs.append_block("gone", &[8]).unwrap();
        assert_eq!(id.index, 0);
    }

    #[test]
    fn file_size_sums_blocks() {
        let dfs = temp_dfs();
        dfs.append_block("s", &[0; 10]).unwrap();
        dfs.append_block("s", &[0; 32]).unwrap();
        assert_eq!(dfs.file_size("s").unwrap(), 42);
    }

    #[test]
    fn metrics_track_io() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(DfsConfig::default(), Arc::clone(&metrics)).unwrap();
        let id = dfs.append_block("m", &[0; 7]).unwrap();
        dfs.read_block(&id).unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.blocks_written, 1);
        assert_eq!(s.bytes_written, 7);
        assert_eq!(s.blocks_read, 1);
        assert_eq!(s.bytes_read, 7);
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let dfs = temp_dfs();
        dfs.write_blocks("d", (0..20).map(|_| vec![0u8])).unwrap();
        let a = dfs.sample_block_ids("d", 0.25, 7).unwrap();
        let b = dfs.sample_block_ids("d", 0.25, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let c = dfs.sample_block_ids("d", 0.25, 8).unwrap();
        assert!(c != a || c.len() == a.len(), "different seed may differ");
    }

    #[test]
    fn sampling_full_fraction_returns_all() {
        let dfs = temp_dfs();
        dfs.write_blocks("d", (0..4).map(|_| vec![0u8])).unwrap();
        assert_eq!(dfs.sample_block_ids("d", 1.0, 1).unwrap().len(), 4);
        assert_eq!(dfs.sample_block_ids("d", 5.0, 1).unwrap().len(), 4);
    }

    #[test]
    fn sampling_tiny_fraction_returns_at_least_one() {
        let dfs = temp_dfs();
        dfs.write_blocks("d", (0..10).map(|_| vec![0u8])).unwrap();
        assert_eq!(dfs.sample_block_ids("d", 0.001, 1).unwrap().len(), 1);
    }

    #[test]
    fn read_latency_is_applied() {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(
            DfsConfig {
                read_latency: Duration::from_millis(20),
                ..DfsConfig::default()
            },
            metrics,
        )
        .unwrap();
        let id = dfs.append_block("slow", &[1]).unwrap();
        let t0 = std::time::Instant::now();
        dfs.read_block(&id).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn at_dir_resumes_block_numbering() {
        let root = std::env::temp_dir().join(format!("tardis-dfs-resume-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        {
            let dfs = Dfs::at_dir(&root, DfsConfig::default(), Arc::new(Metrics::new())).unwrap();
            dfs.append_block("f", &[1]).unwrap();
            dfs.append_block("f", &[2]).unwrap();
        }
        {
            let dfs = Dfs::at_dir(&root, DfsConfig::default(), Arc::new(Metrics::new())).unwrap();
            let id = dfs.append_block("f", &[3]).unwrap();
            assert_eq!(id.index, 2);
            assert_eq!(dfs.list_blocks("f").unwrap().len(), 3);
        }
        fs::remove_dir_all(&root).unwrap();
    }
}
