#![warn(missing_docs)]

//! The distributed-runtime substrate that replaces Apache Spark + HDFS in
//! this reproduction.
//!
//! TARDIS's algorithms (§IV) are phrased as map-reduce jobs over HDFS
//! blocks and Spark partitions: block-level sampling, `(key, freq)`
//! aggregation, a broadcast partitioner, a record shuffle, and
//! `mapPartition` index construction. This crate provides exactly those
//! primitives, in-process:
//!
//! * [`dfs::Dfs`] — a block-based file store backed by real files on local
//!   disk, with configurable per-block read latency so that experiments can
//!   reproduce the *I/O shape* of a distributed file system (partition
//!   loads are expensive; Bloom filters that avoid them pay off).
//! * [`codec`] — a compact hand-rolled binary codec for records and common
//!   tuple shapes (no serde overhead in the data path).
//! * [`pool::WorkerPool`] — a fixed-width worker pool (the "cluster").
//! * [`dataset::Dataset`] — a partitioned in-memory collection with
//!   `map` / `flat_map` / `map_partitions` / `reduce_by_key` / `shuffle`,
//!   all executed across the pool.
//! * [`broadcast::Broadcast`] — read-only state shared with every task
//!   (the global index during the shuffle).
//! * [`metrics::Metrics`] — counters for blocks/bytes read and written,
//!   records shuffled, and tasks run; every experiment reports them
//!   alongside wall-clock time.
//! * [`fault`] — a seeded, deterministic fault-injection layer plus the
//!   retry-with-backoff machinery that masks transient block-I/O and
//!   task failures, mirroring Spark's task-retry fault model.
//! * [`obs`] (re-export of `tardis-obs`) — hierarchical spans, per-query
//!   profiles, and chrome-trace / Prometheus exporters;
//!   [`MetricsSnapshot::prometheus_text`] merges these counters with span
//!   aggregates into one dump.

pub mod broadcast;
pub mod cache;
pub mod codec;
pub mod dataset;
pub mod dfs;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod pool;
pub mod rng;
pub mod steal;

pub use tardis_obs as obs;

pub use broadcast::Broadcast;
pub use cache::BlockCache;
pub use codec::{decode_record_into, decode_records, encode_records, Decode, Encode};
pub use dataset::Dataset;
pub use dfs::{BlockId, Dfs, DfsConfig, ScrubReport};
pub use error::{ClusterError, MaybeTransient};
pub use fault::{
    BackoffClock, CrashSpec, FaultInjector, FaultPlan, FaultSite, RetryPolicy, VirtualClock,
    CRASH_SITES,
};
pub use metrics::{Metrics, MetricsSnapshot, MAX_TRACKED_NODES};
pub use obs::{chrome_trace_json, BatchProfile, PeakAlloc, PromText, QueryProfile, Span, SpanAggregate, SpanNode, SpanRecord, Tracer};
pub use pool::{TaskError, WorkerPool};
pub use steal::{Claimed, StealQueues};

use std::path::Path;
use std::sync::Arc;

/// Configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of parallel workers (Spark executor cores).
    pub n_workers: usize,
    /// Storage-layer behaviour.
    pub dfs: DfsConfig,
    /// Seeded fault plan; `None` disables injection entirely.
    pub faults: Option<FaultPlan>,
    /// Retry budget for transient block-I/O and task failures.
    pub retry: RetryPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            dfs: DfsConfig::default(),
            faults: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// A simulated cluster: worker pool + distributed file system + metrics.
///
/// This is the substrate every index (TARDIS and the DPiSAX baseline) is
/// built on, so comparative experiments share identical storage and
/// parallelism behaviour.
pub struct Cluster {
    pool: WorkerPool,
    dfs: Dfs,
    metrics: Arc<Metrics>,
    injector: Option<Arc<FaultInjector>>,
}

impl Cluster {
    /// Creates a cluster whose DFS lives in a fresh temporary directory
    /// (removed when the `Cluster` is dropped).
    pub fn new(config: ClusterConfig) -> Result<Cluster, ClusterError> {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(config.dfs, Arc::clone(&metrics))?;
        Ok(Self::assemble(config.n_workers, dfs, metrics, config.faults, config.retry))
    }

    /// Creates a cluster rooted at an existing directory (not removed on
    /// drop) — for examples that want to inspect the stored blocks.
    pub fn at_dir(dir: &Path, config: ClusterConfig) -> Result<Cluster, ClusterError> {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::at_dir(dir, config.dfs, Arc::clone(&metrics))?;
        Ok(Self::assemble(config.n_workers, dfs, metrics, config.faults, config.retry))
    }

    /// Wires the fault injector (when configured) into both the DFS and
    /// the worker pool so every layer shares one seeded oracle.
    fn assemble(
        n_workers: usize,
        mut dfs: Dfs,
        metrics: Arc<Metrics>,
        faults: Option<FaultPlan>,
        retry: RetryPolicy,
    ) -> Cluster {
        let injector = faults.map(|plan| Arc::new(FaultInjector::new(plan, Arc::clone(&metrics))));
        let mut pool = WorkerPool::new(n_workers)
            .with_metrics(Arc::clone(&metrics))
            .with_retry(retry.clone());
        if let Some(inj) = &injector {
            dfs.set_fault_injection(Arc::clone(inj), retry);
            pool = pool.with_fault_injection(Arc::clone(inj));
        }
        Cluster {
            pool,
            dfs,
            metrics,
            injector,
        }
    }

    /// The worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The distributed file system.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Live metrics counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The shared metrics handle, for components that must outlive a
    /// borrow of the cluster (e.g. a resident server's admission gate).
    pub fn metrics_arc(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The fault injector, when the cluster was configured with a plan.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Consults the armed crash plan at a named site (no-op without a
    /// fault plan). Higher layers (`tardis-core`'s ingest/compaction
    /// mutations) call this between their multi-step persistence
    /// syscalls; the returned error must be propagated immediately —
    /// it is the simulated `kill -9`.
    ///
    /// # Errors
    /// [`ClusterError::CrashInjected`] when the armed crash fires.
    pub fn crash_point(&self, site: &'static str) -> Result<(), ClusterError> {
        match &self.injector {
            Some(inj) => inj.crash_point(site),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_has_workers() {
        let c = ClusterConfig::default();
        assert!(c.n_workers >= 1);
    }

    #[test]
    fn cluster_constructs_and_cleans_up() {
        let dir;
        {
            let cluster = Cluster::new(ClusterConfig::default()).unwrap();
            dir = cluster.dfs().root().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "temp DFS dir should be removed on drop");
    }

    #[test]
    fn cluster_at_dir_persists() {
        let root = std::env::temp_dir().join(format!("tardis-test-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        {
            let cluster = Cluster::at_dir(&root, ClusterConfig::default()).unwrap();
            cluster.dfs().write_blocks("f", vec![vec![1, 2, 3]]).unwrap();
        }
        assert!(root.exists(), "explicit dir survives drop");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
