#![warn(missing_docs)]

//! The distributed-runtime substrate that replaces Apache Spark + HDFS in
//! this reproduction.
//!
//! TARDIS's algorithms (§IV) are phrased as map-reduce jobs over HDFS
//! blocks and Spark partitions: block-level sampling, `(key, freq)`
//! aggregation, a broadcast partitioner, a record shuffle, and
//! `mapPartition` index construction. This crate provides exactly those
//! primitives, in-process:
//!
//! * [`dfs::Dfs`] — a block-based file store backed by real files on local
//!   disk, with configurable per-block read latency so that experiments can
//!   reproduce the *I/O shape* of a distributed file system (partition
//!   loads are expensive; Bloom filters that avoid them pay off).
//! * [`codec`] — a compact hand-rolled binary codec for records and common
//!   tuple shapes (no serde overhead in the data path).
//! * [`pool::WorkerPool`] — a fixed-width worker pool (the "cluster").
//! * [`dataset::Dataset`] — a partitioned in-memory collection with
//!   `map` / `flat_map` / `map_partitions` / `reduce_by_key` / `shuffle`,
//!   all executed across the pool.
//! * [`broadcast::Broadcast`] — read-only state shared with every task
//!   (the global index during the shuffle).
//! * [`metrics::Metrics`] — counters for blocks/bytes read and written,
//!   records shuffled, and tasks run; every experiment reports them
//!   alongside wall-clock time.

pub mod broadcast;
pub mod cache;
pub mod codec;
pub mod dataset;
pub mod dfs;
pub mod error;
pub mod metrics;
pub mod pool;
pub mod rng;

pub use broadcast::Broadcast;
pub use cache::BlockCache;
pub use codec::{decode_records, encode_records, Decode, Encode};
pub use dataset::Dataset;
pub use dfs::{BlockId, Dfs, DfsConfig};
pub use error::ClusterError;
pub use metrics::{Metrics, MetricsSnapshot};
pub use pool::WorkerPool;

use std::path::Path;
use std::sync::Arc;

/// Configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of parallel workers (Spark executor cores).
    pub n_workers: usize,
    /// Storage-layer behaviour.
    pub dfs: DfsConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            dfs: DfsConfig::default(),
        }
    }
}

/// A simulated cluster: worker pool + distributed file system + metrics.
///
/// This is the substrate every index (TARDIS and the DPiSAX baseline) is
/// built on, so comparative experiments share identical storage and
/// parallelism behaviour.
pub struct Cluster {
    pool: WorkerPool,
    dfs: Dfs,
    metrics: Arc<Metrics>,
}

impl Cluster {
    /// Creates a cluster whose DFS lives in a fresh temporary directory
    /// (removed when the `Cluster` is dropped).
    pub fn new(config: ClusterConfig) -> Result<Cluster, ClusterError> {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::temp(config.dfs, Arc::clone(&metrics))?;
        Ok(Cluster {
            pool: WorkerPool::new(config.n_workers),
            dfs,
            metrics,
        })
    }

    /// Creates a cluster rooted at an existing directory (not removed on
    /// drop) — for examples that want to inspect the stored blocks.
    pub fn at_dir(dir: &Path, config: ClusterConfig) -> Result<Cluster, ClusterError> {
        let metrics = Arc::new(Metrics::new());
        let dfs = Dfs::at_dir(dir, config.dfs, Arc::clone(&metrics))?;
        Ok(Cluster {
            pool: WorkerPool::new(config.n_workers),
            dfs,
            metrics,
        })
    }

    /// The worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The distributed file system.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Live metrics counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_has_workers() {
        let c = ClusterConfig::default();
        assert!(c.n_workers >= 1);
    }

    #[test]
    fn cluster_constructs_and_cleans_up() {
        let dir;
        {
            let cluster = Cluster::new(ClusterConfig::default()).unwrap();
            dir = cluster.dfs().root().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "temp DFS dir should be removed on drop");
    }

    #[test]
    fn cluster_at_dir_persists() {
        let root = std::env::temp_dir().join(format!("tardis-test-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        {
            let cluster = Cluster::at_dir(&root, ClusterConfig::default()).unwrap();
            cluster.dfs().write_blocks("f", vec![vec![1, 2, 3]]).unwrap();
        }
        assert!(root.exists(), "explicit dir survives drop");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
