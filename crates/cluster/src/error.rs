//! Error type for the cluster substrate.

use std::fmt;
use std::io;

/// Errors produced by the cluster substrate.
#[derive(Debug)]
pub enum ClusterError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A named DFS file does not exist.
    MissingFile {
        /// The file name.
        name: String,
    },
    /// A block id does not resolve to a stored block.
    MissingBlock {
        /// The file name.
        file: String,
        /// The block index within the file.
        index: u32,
    },
    /// A byte buffer could not be decoded.
    Codec {
        /// Human-readable context.
        context: &'static str,
    },
    /// A fault deliberately injected by a seeded [`FaultPlan`]
    /// (transient by definition: the same operation may succeed on
    /// retry).
    ///
    /// [`FaultPlan`]: crate::fault::FaultPlan
    InjectedFault {
        /// Injection site name ("block read", "block write", "task").
        site: &'static str,
        /// Stable decision key of the faulted operation.
        key: u64,
        /// 1-based attempt number that faulted.
        attempt: u32,
    },
    /// A worker-pool task panicked; the panic was caught and converted
    /// (transient: Spark restarts crashed executors).
    TaskPanicked {
        /// The panic payload, rendered to a string.
        message: String,
    },
    /// A transient operation still failed after its full retry budget.
    /// This is the terminal, *permanent* form a transient failure takes.
    RetriesExhausted {
        /// What was being attempted.
        op: &'static str,
        /// Total attempts made.
        attempts: u32,
        /// The error from the final attempt.
        source: Box<dyn std::error::Error + Send + Sync>,
    },
    /// Every replica of a block was dead, unreadable, or failed its
    /// checksum — replication-level failover found no healthy copy.
    /// Permanent: only re-replication (a scrub from a surviving copy)
    /// can bring the block back; retrying the read cannot.
    AllReplicasFailed {
        /// The file name.
        file: String,
        /// The block index within the file.
        index: u32,
        /// Replicas that were tried.
        replicas: u32,
    },
    /// A deliberate process crash injected by a seeded [`FaultPlan`]
    /// crash point: the operation unwinds mid-flight, leaving exactly
    /// the partial on-disk state the aborted syscall sequence would.
    /// *Permanent* by design — a `kill -9` is not retried; recovery
    /// happens at the next startup (`fsck`), not in a retry loop.
    ///
    /// [`FaultPlan`]: crate::fault::FaultPlan
    CrashInjected {
        /// Registered crash-site name (e.g. `dfs.replace.rename`).
        site: &'static str,
        /// 1-based arrival at the site that fired.
        hit: u64,
    },
}

/// Classifies errors into transient (worth retrying) and permanent.
///
/// Implemented by [`ClusterError`] and expected of error types flowing
/// through the fallible worker-pool entry points, so higher layers (e.g.
/// `tardis-core`) decide which of their own failures a retry can mask.
pub trait MaybeTransient {
    /// `true` when retrying the same operation may succeed.
    fn is_transient(&self) -> bool;
}

impl MaybeTransient for ClusterError {
    fn is_transient(&self) -> bool {
        match self {
            // Lost connections / faulted reads / crashed executors: retry.
            ClusterError::Io(_) | ClusterError::InjectedFault { .. } => true,
            ClusterError::TaskPanicked { .. } => true,
            // Logical errors no retry can fix. A crash is permanent
            // too: the "process" is gone, nothing retries a kill -9.
            ClusterError::MissingFile { .. }
            | ClusterError::MissingBlock { .. }
            | ClusterError::Codec { .. }
            | ClusterError::RetriesExhausted { .. }
            | ClusterError::AllReplicasFailed { .. }
            | ClusterError::CrashInjected { .. } => false,
        }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "I/O error: {e}"),
            ClusterError::MissingFile { name } => write!(f, "DFS file not found: {name}"),
            ClusterError::MissingBlock { file, index } => {
                write!(f, "DFS block not found: {file}/block-{index}")
            }
            ClusterError::Codec { context } => write!(f, "decode error: {context}"),
            ClusterError::InjectedFault { site, key, attempt } => {
                write!(f, "injected {site} fault (key {key:#x}, attempt {attempt})")
            }
            ClusterError::TaskPanicked { message } => {
                write!(f, "task panicked: {message}")
            }
            ClusterError::RetriesExhausted { op, attempts, source } => {
                write!(f, "{op} failed permanently after {attempts} attempts: {source}")
            }
            ClusterError::AllReplicasFailed { file, index, replicas } => {
                write!(
                    f,
                    "all {replicas} replicas of {file}/block-{index} dead or corrupt"
                )
            }
            ClusterError::CrashInjected { site, hit } => {
                write!(f, "injected crash at {site} (hit {hit})")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            ClusterError::RetriesExhausted { source, .. } => Some(&**source),
            _ => None,
        }
    }
}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> Self {
        ClusterError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ClusterError::MissingFile {
            name: "data".into()
        }
        .to_string()
        .contains("data"));
        assert!(ClusterError::MissingBlock {
            file: "f".into(),
            index: 3
        }
        .to_string()
        .contains("block-3"));
        assert!(ClusterError::Codec { context: "rid" }.to_string().contains("rid"));
        let io_err = ClusterError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = ClusterError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(ClusterError::Codec { context: "c" }.source().is_none());
    }

    #[test]
    fn transience_classification() {
        assert!(ClusterError::from(io::Error::other("net")).is_transient());
        assert!(ClusterError::InjectedFault {
            site: "block read",
            key: 1,
            attempt: 1
        }
        .is_transient());
        assert!(ClusterError::TaskPanicked { message: "p".into() }.is_transient());
        assert!(!ClusterError::MissingFile { name: "f".into() }.is_transient());
        assert!(!ClusterError::MissingBlock {
            file: "f".into(),
            index: 0
        }
        .is_transient());
        assert!(!ClusterError::Codec { context: "c" }.is_transient());
        let e = ClusterError::AllReplicasFailed {
            file: "f".into(),
            index: 2,
            replicas: 2,
        };
        assert!(!e.is_transient(), "replica exhaustion must be permanent");
        assert!(e.to_string().contains("2 replicas"), "{e}");
        let crash = ClusterError::CrashInjected {
            site: "dfs.replace.rename",
            hit: 2,
        };
        assert!(
            !crash.is_transient(),
            "a kill -9 is not retried; recovery happens at restart"
        );
        assert!(crash.to_string().contains("dfs.replace.rename"), "{crash}");
        assert!(crash.to_string().contains("hit 2"), "{crash}");
    }

    #[test]
    fn retries_exhausted_wraps_final_error() {
        use std::error::Error;
        let e = ClusterError::RetriesExhausted {
            op: "block read",
            attempts: 4,
            source: Box::new(ClusterError::InjectedFault {
                site: "block read",
                key: 0xAB,
                attempt: 4,
            }),
        };
        // Terminal: the wrapper itself must not be retried again.
        assert!(!e.is_transient());
        let msg = e.to_string();
        assert!(msg.contains("after 4 attempts"), "{msg}");
        assert!(e.source().unwrap().to_string().contains("injected"));
    }
}
