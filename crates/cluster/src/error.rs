//! Error type for the cluster substrate.

use std::fmt;
use std::io;

/// Errors produced by the cluster substrate.
#[derive(Debug)]
pub enum ClusterError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A named DFS file does not exist.
    MissingFile {
        /// The file name.
        name: String,
    },
    /// A block id does not resolve to a stored block.
    MissingBlock {
        /// The file name.
        file: String,
        /// The block index within the file.
        index: u32,
    },
    /// A byte buffer could not be decoded.
    Codec {
        /// Human-readable context.
        context: &'static str,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "I/O error: {e}"),
            ClusterError::MissingFile { name } => write!(f, "DFS file not found: {name}"),
            ClusterError::MissingBlock { file, index } => {
                write!(f, "DFS block not found: {file}/block-{index}")
            }
            ClusterError::Codec { context } => write!(f, "decode error: {context}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> Self {
        ClusterError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ClusterError::MissingFile {
            name: "data".into()
        }
        .to_string()
        .contains("data"));
        assert!(ClusterError::MissingBlock {
            file: "f".into(),
            index: 3
        }
        .to_string()
        .contains("block-3"));
        assert!(ClusterError::Codec { context: "rid" }.to_string().contains("rid"));
        let io_err = ClusterError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = ClusterError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(ClusterError::Codec { context: "c" }.source().is_none());
    }
}
