//! A tiny deterministic PRNG for internal sampling decisions.
//!
//! The substrate must not depend on external randomness so that
//! block-level sampling (§IV-B "Data Preprocessing") is reproducible from
//! an explicit seed. This is a splitmix64 generator — statistically solid
//! for sampling decisions, not cryptographic.

/// FNV-1a hash of a byte string.
///
/// Used to derive stable 64-bit keys from names (e.g. DFS file names)
/// for seeded per-site decisions such as fault injection.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Splitmix64 PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)` (debiased by rejection).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Fisher–Yates shuffles a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_hits_all_values() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        // And actually moved something.
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn hash_bytes_is_stable_and_spread() {
        assert_eq!(hash_bytes(b"records"), hash_bytes(b"records"));
        assert_ne!(hash_bytes(b"records"), hash_bytes(b"record"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }
}
