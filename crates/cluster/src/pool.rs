//! A fixed-width worker pool — the "cluster executors".
//!
//! Tasks are distributed by work stealing over an atomic cursor; each
//! `par_*` call spawns scoped threads so closures may borrow from the
//! caller, matching the way Spark stages close over broadcast state.

use crossbeam::thread;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A pool of `n_workers` parallel workers.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    n_workers: usize,
}

impl WorkerPool {
    /// Creates a pool. `n_workers` is clamped to at least 1.
    pub fn new(n_workers: usize) -> WorkerPool {
        WorkerPool {
            n_workers: n_workers.max(1),
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Applies `f` to every item in parallel, preserving input order in the
    /// result vector.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.par_map_indexed(items, |_, item| f(item))
    }

    /// Like [`Self::par_map`] but the closure also receives the item index.
    pub fn par_map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // Single worker or single item: run inline, no thread overhead.
        if self.n_workers == 1 || n == 1 {
            return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        // Items become slots workers claim through an atomic cursor.
        let slots: Vec<parking_lot::Mutex<Option<T>>> = items
            .into_iter()
            .map(|t| parking_lot::Mutex::new(Some(t)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.n_workers.min(n);

        let mut buckets: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let slots = &slots;
                let cursor = &cursor;
                let f = &f;
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i].lock().take().expect("slot claimed once");
                        local.push((i, f(i, item)));
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("scope panicked");

        let mut flat: Vec<(usize, R)> = Vec::with_capacity(n);
        for b in buckets.drain(..) {
            flat.extend(b);
        }
        flat.sort_by_key(|(i, _)| *i);
        flat.into_iter().map(|(_, r)| r).collect()
    }

    /// Runs `n_tasks` closures of the form `f(task_index)` in parallel and
    /// collects their results in task order.
    pub fn par_tasks<R, F>(&self, n_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.par_map((0..n_tasks).collect(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_clamps_to_one_worker() {
        assert_eq!(WorkerPool::new(0).n_workers(), 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.par_map((0..1000).collect(), |x: u32| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn par_map_empty() {
        let pool = WorkerPool::new(4);
        let out: Vec<u32> = pool.par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_single_worker_inline() {
        let pool = WorkerPool::new(1);
        let out = pool.par_map(vec![1, 2, 3], |x: u32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn par_map_indexed_gets_indices() {
        let pool = WorkerPool::new(3);
        let out = pool.par_map_indexed(vec!["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn par_tasks_runs_each_once() {
        let pool = WorkerPool::new(8);
        let counter = AtomicU64::new(0);
        let out = pool.par_tasks(100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i * i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out[7], 49);
    }

    #[test]
    fn closures_can_borrow_caller_state() {
        let pool = WorkerPool::new(4);
        let shared = [10u64, 20, 30];
        let out = pool.par_map(vec![0usize, 1, 2], |i| shared[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn actually_runs_in_parallel() {
        // With 4 workers, 4 tasks of 50 ms should finish well under 200 ms.
        let pool = WorkerPool::new(4);
        let t0 = std::time::Instant::now();
        pool.par_tasks(4, |_| std::thread::sleep(std::time::Duration::from_millis(50)));
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(160),
            "took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn handles_more_items_than_workers() {
        let pool = WorkerPool::new(2);
        let out = pool.par_map((0..10_000).collect(), |x: u64| x % 7);
        assert_eq!(out.len(), 10_000);
        assert_eq!(out[6], 6);
        assert_eq!(out[7], 0);
    }
}
