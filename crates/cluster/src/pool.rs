//! A fixed-width worker pool — the "cluster executors".
//!
//! Tasks are distributed through per-worker work-stealing deques
//! ([`crate::steal::StealQueues`]): each worker drains its own deque and
//! then steals from its neighbours, so one expensive task no longer
//! pins the whole stage behind the worker that drew it. Each `par_*`
//! call spawns scoped threads so closures may borrow from the caller,
//! matching the way Spark stages close over broadcast state. Results
//! are re-sorted by submission index, so scheduling order never changes
//! what a stage returns.
//!
//! Two families of entry points:
//!
//! * `par_*` — infallible pure computation; a panicking closure aborts
//!   the stage (a bug, not a fault).
//! * `try_par_*` — Spark-style fault-tolerant tasks. Each task may fail
//!   (closure `Err`), crash (panic — caught), or be failed by the seeded
//!   [`FaultInjector`]; transient failures are retried with capped
//!   exponential backoff, and only an exhausted retry budget or a
//!   permanent (logical) error surfaces to the caller — deterministically
//!   as the lowest-indexed failing task's error.
//!
//! The `*_keyed` variants additionally attach a scheduling key (e.g. a
//! partition id) to every task; the seeded [`FaultInjector`] can then
//! impose a per-key delay (`FaultPlan::slow_task`) to model one slow
//! partition for scheduler tests.

use crate::error::{ClusterError, MaybeTransient};
use crate::fault::{FaultInjector, FaultSite, RetryPolicy};
use crate::metrics::Metrics;
use crate::steal::StealQueues;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

/// A pool of `n_workers` parallel workers.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    n_workers: usize,
    /// Counters for task retries / permanent failures (None = unmetered).
    metrics: Option<Arc<Metrics>>,
    /// Seeded fault oracle for `try_par_*` tasks (None = no injection).
    injector: Option<Arc<FaultInjector>>,
    /// Retry budget for transient task failures.
    retry: RetryPolicy,
}

impl WorkerPool {
    /// Creates a pool. `n_workers` is clamped to at least 1.
    pub fn new(n_workers: usize) -> WorkerPool {
        WorkerPool {
            n_workers: n_workers.max(1),
            metrics: None,
            injector: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Attaches metrics counters (builder style).
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> WorkerPool {
        self.metrics = Some(metrics);
        self
    }

    /// Sets the retry policy for `try_par_*` tasks (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> WorkerPool {
        self.retry = retry;
        self
    }

    /// Arms fault injection for `try_par_*` tasks (builder style).
    pub fn with_fault_injection(mut self, injector: Arc<FaultInjector>) -> WorkerPool {
        self.injector = Some(injector);
        self
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Applies `f` to every item in parallel, preserving input order in the
    /// result vector.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.par_map_indexed(items, |_, item| f(item))
    }

    /// Like [`Self::par_map`] but the closure also receives the item index.
    pub fn par_map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // Single worker or single item: run inline, no thread overhead.
        if self.n_workers == 1 || n == 1 {
            return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        // Items land in per-worker deques; idle workers steal.
        let queues = StealQueues::new(items, self.n_workers.min(n));
        let workers = queues.workers();

        let mut buckets: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let queues = &queues;
                let f = &f;
                let metrics = self.metrics.as_deref();
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(claimed) = queues.next(w) {
                        if claimed.stolen {
                            if let Some(m) = metrics {
                                m.record_task_steal();
                            }
                        }
                        local.push((claimed.index, f(claimed.index, claimed.item)));
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let mut flat: Vec<(usize, R)> = Vec::with_capacity(n);
        for b in buckets.drain(..) {
            flat.extend(b);
        }
        flat.sort_by_key(|(i, _)| *i);
        flat.into_iter().map(|(_, r)| r).collect()
    }

    /// Runs `n_tasks` closures of the form `f(task_index)` in parallel and
    /// collects their results in task order.
    pub fn par_tasks<R, F>(&self, n_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.par_map((0..n_tasks).collect(), f)
    }

    /// Fault-tolerant [`Self::par_map`]: each task returns a `Result`,
    /// panics are caught, injected faults apply, and transient failures
    /// are retried per the pool's [`RetryPolicy`].
    ///
    /// `T: Clone` because a failed attempt consumes its input; the final
    /// attempt moves the original, so the last retry pays no clone.
    /// When tasks fail permanently, the error of the lowest-indexed
    /// failing task is returned (deterministic under any scheduling).
    pub fn try_par_map<T, R, E, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, E>
    where
        T: Send + Sync + Clone,
        R: Send,
        E: TaskError,
        F: Fn(T) -> Result<R, E> + Sync,
    {
        self.try_par_map_indexed(items, |_, item| f(item))
    }

    /// Like [`Self::try_par_map`] but the closure also receives the item
    /// index.
    pub fn try_par_map_indexed<T, R, E, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, E>
    where
        T: Send + Sync + Clone,
        R: Send,
        E: TaskError,
        F: Fn(usize, T) -> Result<R, E> + Sync,
    {
        self.try_par_map_scheduled(items, None, f)
    }

    /// [`Self::try_par_map`] with a per-item scheduling key (e.g. a
    /// partition id). The key has no effect on results; it lets the
    /// seeded [`FaultInjector`] target individual tasks — currently a
    /// per-key delay (`FaultPlan::slow_task`) that models one slow
    /// partition so scheduler behaviour can be tested deterministically.
    pub fn try_par_map_keyed<T, R, E, F, K>(&self, items: Vec<T>, key: K, f: F) -> Result<Vec<R>, E>
    where
        T: Send + Sync + Clone,
        R: Send,
        E: TaskError,
        F: Fn(T) -> Result<R, E> + Sync,
        K: Fn(&T) -> u64 + Sync,
    {
        self.try_par_map_scheduled(items, Some(&key), |_, item| f(item))
    }

    /// Shared core of the fault-tolerant stages: work-stealing claim
    /// loop, per-task attempt loop, deterministic merge.
    fn try_par_map_scheduled<T, R, E, F>(
        &self,
        items: Vec<T>,
        key: Option<&(dyn Fn(&T) -> u64 + Sync)>,
        f: F,
    ) -> Result<Vec<R>, E>
    where
        T: Send + Sync + Clone,
        R: Send,
        E: TaskError,
        F: Fn(usize, T) -> Result<R, E> + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        // One epoch per stage: task keys are namespaced so retries of
        // "task i" in different stages roll independent fault decisions.
        let epoch = self
            .injector
            .as_ref()
            .map(|inj| inj.next_task_epoch())
            .unwrap_or(0);

        if self.n_workers == 1 || n == 1 {
            let mut out = Vec::with_capacity(n);
            for (i, item) in items.into_iter().enumerate() {
                let sched = key.map(|k| k(&item));
                out.push(self.run_task(epoch, i, sched, item, &f)?);
            }
            return Ok(out);
        }

        // Items land in per-worker deques; idle workers steal.
        let queues = StealQueues::new(items, self.n_workers.min(n));
        let workers = queues.workers();

        let buckets: Vec<Vec<(usize, Result<R, E>)>> = thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let queues = &queues;
                let f = &f;
                let key = &key;
                let this = &*self;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(claimed) = queues.next(w) {
                        if claimed.stolen {
                            if let Some(m) = &this.metrics {
                                m.record_task_steal();
                            }
                        }
                        let sched = key.map(|k| k(&claimed.item));
                        local.push((
                            claimed.index,
                            this.run_task(epoch, claimed.index, sched, claimed.item, f),
                        ));
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let mut flat: Vec<(usize, Result<R, E>)> = buckets.into_iter().flatten().collect();
        flat.sort_by_key(|(i, _)| *i);
        // First error in task order wins — independent of which worker
        // hit it first on the wall clock.
        flat.into_iter().map(|(_, r)| r).collect()
    }

    /// Fault-tolerant [`Self::par_tasks`].
    pub fn try_par_tasks<R, E, F>(&self, n_tasks: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: TaskError,
        F: Fn(usize) -> Result<R, E> + Sync,
    {
        self.try_par_map_indexed((0..n_tasks).collect(), |_, i| f(i))
    }

    /// Runs one task through the full attempt loop: injection check,
    /// panic capture, transient-retry with backoff, typed exhaustion.
    /// A scheduling key (when present) may carry an injected per-task
    /// delay — applied once, before the first attempt, like a genuinely
    /// slow partition rather than a retryable fault.
    fn run_task<T, R, E, F>(
        &self,
        epoch: u64,
        index: usize,
        sched_key: Option<u64>,
        item: T,
        f: &F,
    ) -> Result<R, E>
    where
        T: Clone,
        E: TaskError,
        F: Fn(usize, T) -> Result<R, E>,
    {
        if let (Some(inj), Some(k)) = (&self.injector, sched_key) {
            if let Some(delay) = inj.task_delay(k) {
                thread::sleep(delay);
            }
        }
        let attempts = self.retry.attempts();
        let key = FaultInjector::task_key(epoch, index);
        let mut item = Some(item);
        let mut attempt = 0;
        loop {
            attempt += 1;
            let err: E = 'attempt: {
                if let Some(inj) = &self.injector {
                    if let Some(e) = inj.fault_for(FaultSite::Task, key, attempt) {
                        break 'attempt E::from(e);
                    }
                }
                let arg = if attempt == attempts {
                    item.take().expect("input consumed before final attempt")
                } else {
                    item.clone().expect("input consumed before final attempt")
                };
                match catch_unwind(AssertUnwindSafe(|| f(index, arg))) {
                    Ok(Ok(r)) => return Ok(r),
                    Ok(Err(e)) => e,
                    // `as_ref` matters: `&payload` would unsize the Box
                    // itself into `dyn Any` and every downcast would miss.
                    Err(payload) => E::from(ClusterError::TaskPanicked {
                        message: panic_message(payload.as_ref()),
                    }),
                }
            };
            if err.is_transient() && attempt < attempts {
                if let Some(m) = &self.metrics {
                    m.record_task_retry();
                }
                self.retry.sleep_backoff(attempt);
                continue;
            }
            if let Some(m) = &self.metrics {
                m.record_task_failed_permanently();
            }
            if err.is_transient() {
                return Err(E::from(ClusterError::RetriesExhausted {
                    op: "task",
                    attempts: attempt,
                    source: Box::new(err),
                }));
            }
            return Err(err);
        }
    }
}

/// Bound alias for errors flowing through `try_par_*` tasks: convertible
/// from [`ClusterError`] (so injected faults, caught panics, and retry
/// exhaustion can be expressed in the caller's error type) and
/// classifiable as transient or permanent.
pub trait TaskError:
    std::error::Error + From<ClusterError> + MaybeTransient + Send + Sync + 'static
{
}

impl<E> TaskError for E where
    E: std::error::Error + From<ClusterError> + MaybeTransient + Send + Sync + 'static
{
}

/// Renders a caught panic payload for [`ClusterError::TaskPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn pool_clamps_to_one_worker() {
        assert_eq!(WorkerPool::new(0).n_workers(), 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.par_map((0..1000).collect(), |x: u32| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn par_map_empty() {
        let pool = WorkerPool::new(4);
        let out: Vec<u32> = pool.par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_single_worker_inline() {
        let pool = WorkerPool::new(1);
        let out = pool.par_map(vec![1, 2, 3], |x: u32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn par_map_indexed_gets_indices() {
        let pool = WorkerPool::new(3);
        let out = pool.par_map_indexed(vec!["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn par_tasks_runs_each_once() {
        let pool = WorkerPool::new(8);
        let counter = AtomicU64::new(0);
        let out = pool.par_tasks(100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i * i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out[7], 49);
    }

    #[test]
    fn closures_can_borrow_caller_state() {
        let pool = WorkerPool::new(4);
        let shared = [10u64, 20, 30];
        let out = pool.par_map(vec![0usize, 1, 2], |i| shared[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn actually_runs_in_parallel() {
        // With 4 workers, 4 tasks of 50 ms should finish well under 200 ms.
        let pool = WorkerPool::new(4);
        let t0 = std::time::Instant::now();
        pool.par_tasks(4, |_| std::thread::sleep(std::time::Duration::from_millis(50)));
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(160),
            "took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn handles_more_items_than_workers() {
        let pool = WorkerPool::new(2);
        let out = pool.par_map((0..10_000).collect(), |x: u64| x % 7);
        assert_eq!(out.len(), 10_000);
        assert_eq!(out[6], 6);
        assert_eq!(out[7], 0);
    }

    use crate::fault::FaultPlan;
    use crate::ClusterError;

    fn fast_retry(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            backoff_base: std::time::Duration::ZERO,
            backoff_cap: std::time::Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn try_par_map_ok_preserves_order_under_contention() {
        // Many more items than workers so the cursor is contended.
        let pool = WorkerPool::new(8).with_retry(fast_retry(2));
        let out: Vec<u64> = pool
            .try_par_map((0..5000u64).collect(), |x| Ok::<_, ClusterError>(x * 3))
            .unwrap();
        assert_eq!(out, (0..5000).map(|x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn try_par_map_empty_is_ok() {
        let pool = WorkerPool::new(4);
        let out: Result<Vec<u32>, ClusterError> = pool.try_par_map(Vec::<u32>::new(), Ok);
        assert_eq!(out.unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn panicking_task_is_retried_then_succeeds() {
        // Panics on the first attempt for every odd item, succeeds on
        // retry — models a crashing executor that recovers.
        let metrics = Arc::new(Metrics::new());
        let pool = WorkerPool::new(4)
            .with_metrics(Arc::clone(&metrics))
            .with_retry(fast_retry(3));
        let first_tries = (0..100)
            .map(|_| AtomicUsize::new(0))
            .collect::<Vec<_>>();
        let out: Vec<u64> = pool
            .try_par_map_indexed((0..100u64).collect(), |i, x| {
                if x % 2 == 1 && first_tries[i].fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("simulated crash on task {i}");
                }
                Ok::<_, ClusterError>(x + 1)
            })
            .unwrap();
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
        assert_eq!(metrics.snapshot().task_retries, 50);
        assert_eq!(metrics.snapshot().tasks_failed_permanently, 0);
    }

    #[test]
    fn always_panicking_task_surfaces_typed_error_not_hang() {
        let metrics = Arc::new(Metrics::new());
        let pool = WorkerPool::new(4)
            .with_metrics(Arc::clone(&metrics))
            .with_retry(fast_retry(3));
        let err = pool
            .try_par_map((0..10u64).collect(), |x| {
                if x == 7 {
                    panic!("permanently broken");
                }
                Ok::<_, ClusterError>(x)
            })
            .unwrap_err();
        match err {
            ClusterError::RetriesExhausted { op, attempts, source } => {
                assert_eq!(op, "task");
                assert_eq!(attempts, 3);
                assert!(source.to_string().contains("permanently broken"));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(metrics.snapshot().task_retries, 2);
        assert_eq!(metrics.snapshot().tasks_failed_permanently, 1);
    }

    #[test]
    fn permanent_error_is_not_retried() {
        let metrics = Arc::new(Metrics::new());
        let pool = WorkerPool::new(2)
            .with_metrics(Arc::clone(&metrics))
            .with_retry(fast_retry(5));
        let err = pool
            .try_par_map((0..4u32).collect(), |x| {
                if x == 2 {
                    Err(ClusterError::Codec { context: "bad record" })
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        assert!(matches!(err, ClusterError::Codec { .. }));
        assert_eq!(metrics.snapshot().task_retries, 0);
    }

    #[test]
    fn lowest_indexed_error_wins_deterministically() {
        let pool = WorkerPool::new(8).with_retry(fast_retry(1));
        for _ in 0..20 {
            let err = pool
                .try_par_map((0..100u32).collect(), |x| {
                    if x >= 40 {
                        Err(ClusterError::MissingFile {
                            name: format!("f{x}"),
                        })
                    } else {
                        Ok(x)
                    }
                })
                .unwrap_err();
            assert!(matches!(err, ClusterError::MissingFile { name } if name == "f40"));
        }
    }

    #[test]
    fn injected_task_faults_are_masked_by_retries() {
        let metrics = Arc::new(Metrics::new());
        let injector = Arc::new(FaultInjector::new(
            FaultPlan {
                seed: 21,
                task_fail_p: 0.2,
                ..FaultPlan::none()
            },
            Arc::clone(&metrics),
        ));
        let pool = WorkerPool::new(4)
            .with_metrics(Arc::clone(&metrics))
            .with_retry(fast_retry(6))
            .with_fault_injection(injector);
        let out: Vec<u64> = pool
            .try_par_map((0..200u64).collect(), |x| Ok::<_, ClusterError>(x * x))
            .unwrap();
        assert_eq!(out, (0..200).map(|x| x * x).collect::<Vec<u64>>());
        let s = metrics.snapshot();
        assert!(s.faults_injected > 0);
        assert!(s.task_retries > 0);
        assert_eq!(s.tasks_failed_permanently, 0);
    }

    #[test]
    fn stealing_preserves_results_and_is_metered() {
        let metrics = Arc::new(Metrics::new());
        let pool = WorkerPool::new(4).with_metrics(Arc::clone(&metrics));
        // Item 0 pins worker 0 (round-robin seeding); the rest of that
        // worker's deque must be stolen by the idle workers.
        let out = pool.par_map((0..64u64).collect(), |x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<u64>>());
        assert!(
            metrics.snapshot().tasks_stolen > 0,
            "idle workers should steal from the stalled worker's deque"
        );
    }

    #[test]
    fn keyed_delay_applies_only_to_matching_key() {
        use std::time::{Duration, Instant};
        let metrics = Arc::new(Metrics::new());
        let injector = Arc::new(FaultInjector::new(
            FaultPlan {
                slow_task: Some((7, Duration::from_millis(100))),
                ..FaultPlan::none()
            },
            Arc::clone(&metrics),
        ));
        let pool = WorkerPool::new(2).with_fault_injection(injector);
        let t0 = Instant::now();
        let out: Vec<u64> = pool
            .try_par_map_keyed((0..4u64).collect(), |x| *x, |x| {
                Ok::<_, ClusterError>(x + 1)
            })
            .unwrap();
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert!(t0.elapsed() < Duration::from_millis(80), "no key matched");
        let t1 = Instant::now();
        let out: Vec<u64> = pool
            .try_par_map_keyed((6..9u64).collect(), |x| *x, Ok::<_, ClusterError>)
            .unwrap();
        assert_eq!(out, vec![6, 7, 8]);
        assert!(
            t1.elapsed() >= Duration::from_millis(100),
            "key 7 must incur the injected delay"
        );
    }

    #[test]
    fn try_par_tasks_single_worker_short_circuits() {
        let pool = WorkerPool::new(1).with_retry(fast_retry(1));
        let ran = AtomicUsize::new(0);
        let err = pool
            .try_par_tasks(10, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    Err(ClusterError::Codec { context: "stop" })
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert!(matches!(err, ClusterError::Codec { .. }));
        // Inline execution stops at the first failure.
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }
}
