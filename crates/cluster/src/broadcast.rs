//! Broadcast variables.
//!
//! Spark broadcasts read-only state (here: the global index used as a
//! partitioner during the shuffle, §IV-C "the master broadcasts the
//! Tardis-G to all workers") to every executor once per job. In-process,
//! a broadcast is an `Arc`; the abstraction exists so call sites read like
//! the paper's pipeline and so that broadcast *sizes* are metered.

use crate::metrics::Metrics;
use std::ops::Deref;
use std::sync::Arc;

/// A read-only value shared with every task of a job.
#[derive(Debug)]
pub struct Broadcast<T> {
    value: Arc<T>,
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> Broadcast<T> {
    /// Wraps a value for broadcast, recording its approximate serialized
    /// size (as reported by `size_bytes`) in the metrics.
    pub fn new(value: T, size_bytes: usize, metrics: &Metrics) -> Broadcast<T> {
        metrics.record_broadcast(size_bytes as u64);
        Broadcast {
            value: Arc::new(value),
        }
    }

    /// Wraps a value without metering (tests, tiny values).
    pub fn unmetered(value: T) -> Broadcast<T> {
        Broadcast {
            value: Arc::new(value),
        }
    }

    /// Access to the broadcast value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> Deref for Broadcast<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deref_and_clone_share_value() {
        let b = Broadcast::unmetered(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(*b, vec![1, 2, 3]);
        assert_eq!(c.value(), &vec![1, 2, 3]);
    }

    #[test]
    fn broadcast_is_metered() {
        let m = Metrics::new();
        let _b = Broadcast::new("hello", 512, &m);
        assert_eq!(m.snapshot().broadcast_bytes, 512);
    }

    #[test]
    fn usable_across_threads() {
        let b = Broadcast::unmetered(7u64);
        let pool = crate::pool::WorkerPool::new(4);
        let out = pool.par_tasks(8, |i| *b.value() + i as u64);
        assert_eq!(out[3], 10);
    }
}
