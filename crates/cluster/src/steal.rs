//! Work-stealing task queues for the worker pool.
//!
//! The pool used to hand out tasks through a single atomic cursor: every
//! worker claimed the next unclaimed index. That distributes *count*
//! evenly but not *cost* — one slow task at the cursor front effectively
//! serialises claims behind the worker that drew it. Here each worker
//! owns a deque seeded round-robin; it pops its own deque from the
//! front and, when empty, steals from the *back* of its victims' deques
//! (cyclic scan starting at its right-hand neighbour). Stealing moves
//! work away from busy workers without any coordination beyond one
//! short mutex hold per claim.
//!
//! Determinism contract: stealing changes *which thread* runs a task and
//! *when*, never *what* the task computes. Every claimed item keeps its
//! original submission index, results are re-sorted by that index after
//! the stage, and error selection remains lowest-index-wins — so the
//! pool's bit-identical-results guarantee is unaffected (asserted by the
//! equivalence suites in `tests/`).
//!
//! Items are only ever enqueued before workers start; nothing is added
//! mid-stage. A worker that scans every deque and finds them all empty
//! is therefore done — any remaining work is already claimed and
//! in-flight on another worker.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// One claimed task: the item, its original submission index, and
/// whether the claim was a steal (taken from another worker's deque).
#[derive(Debug)]
pub struct Claimed<T> {
    /// Index of the item in the submitted batch (drives result ordering
    /// and deterministic error selection).
    pub index: usize,
    /// The task input itself.
    pub item: T,
    /// `true` when the item came from another worker's deque.
    pub stolen: bool,
}

/// Per-worker deques with back-stealing, seeded once at construction.
#[derive(Debug)]
pub struct StealQueues<T> {
    queues: Vec<Mutex<VecDeque<(usize, T)>>>,
}

impl<T> StealQueues<T> {
    /// Distributes `items` round-robin over `workers` deques (item `i`
    /// lands on deque `i % workers`), preserving submission indices.
    /// `workers` is clamped to at least 1.
    pub fn new(items: Vec<T>, workers: usize) -> StealQueues<T> {
        let workers = workers.max(1);
        let mut queues: Vec<VecDeque<(usize, T)>> =
            (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push_back((i, item));
        }
        StealQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Claims the next task for `worker`: its own deque's front, else a
    /// steal from the back of the first non-empty victim (cyclic scan
    /// starting at `worker + 1`). `None` means the whole stage is
    /// drained — no queue holds unclaimed work.
    pub fn next(&self, worker: usize) -> Option<Claimed<T>> {
        let n = self.queues.len();
        let w = worker % n;
        if let Some((index, item)) = self.queues[w].lock().pop_front() {
            return Some(Claimed {
                index,
                item,
                stolen: false,
            });
        }
        for offset in 1..n {
            let victim = (w + offset) % n;
            if let Some((index, item)) = self.queues[victim].lock().pop_back() {
                return Some(Claimed {
                    index,
                    item,
                    stolen: true,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn seeds_round_robin_and_drains_exactly_once() {
        let q = StealQueues::new((0..10u32).collect(), 3);
        assert_eq!(q.workers(), 3);
        let mut seen = BTreeSet::new();
        // Worker 0 drains everything (its own queue, then steals).
        while let Some(c) = q.next(0) {
            assert_eq!(c.item as usize, c.index);
            assert!(seen.insert(c.index), "index {} claimed twice", c.index);
        }
        assert_eq!(seen.len(), 10);
        assert!(q.next(1).is_none());
    }

    #[test]
    fn own_queue_claims_are_not_steals() {
        let q = StealQueues::new((0..6u32).collect(), 2);
        // Worker 0 owns indices 0, 2, 4.
        for expected in [0usize, 2, 4] {
            let c = q.next(0).unwrap();
            assert_eq!(c.index, expected);
            assert!(!c.stolen);
        }
        // Its queue is now empty: further claims steal from worker 1's
        // back (index 5 first).
        let c = q.next(0).unwrap();
        assert_eq!(c.index, 5);
        assert!(c.stolen);
    }

    #[test]
    fn workers_clamped_to_one() {
        let q = StealQueues::new(vec![7u8], 0);
        assert_eq!(q.workers(), 1);
        assert_eq!(q.next(0).unwrap().index, 0);
    }

    #[test]
    fn concurrent_drain_claims_each_item_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = StealQueues::new((0..1000u32).collect(), 4);
        let claimed: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for w in 0..4 {
                let q = &q;
                let claimed = &claimed;
                s.spawn(move || {
                    while let Some(c) = q.next(w) {
                        claimed[c.index].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(claimed.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
