//! A byte-bounded LRU cache for DFS blocks, from scratch.
//!
//! The paper leans on memory residency throughout: intermediates cached
//! in RAM make the Bloom-filter construction overhead vanish (Figure 12),
//! and filters themselves "reside in memory" (§V-A). A production
//! deployment equally caches hot *partitions* so repeated queries skip
//! disk. This cache is optional (capacity 0 disables it) and sits inside
//! [`crate::Dfs`]; hits and misses are metered.
//!
//! Implementation: a `HashMap` from block id to `(payload, last_used
//! tick)`, with an O(n) scan for the minimum tick on eviction. There is
//! no linked LRU list: the cache holds a handful of large blocks, so a
//! full scan is a few comparisons while each avoided miss saves a disk
//! read plus the DFS's simulated per-block latency — constant-time
//! eviction would add pointer bookkeeping for no measurable win. Ties on
//! `last_used` (impossible through the public API, which bumps a strictly
//! monotone tick on every access, but reachable in principle) break
//! toward the smallest `BlockId`, keeping eviction order deterministic.

use crate::dfs::BlockId;
use std::collections::HashMap;
use std::sync::Arc;

/// A byte-bounded LRU cache of immutable block payloads.
///
/// Not internally synchronized; [`crate::Dfs`] wraps it in a mutex.
#[derive(Debug)]
pub struct BlockCache {
    capacity_bytes: usize,
    used_bytes: usize,
    entries: HashMap<BlockId, Entry>,
    /// Monotone clock for LRU ordering (u64 never wraps in practice).
    tick: u64,
    /// Files whose blocks are exempt from eviction (in-flight partition
    /// loads in the shared-scan batch engine), with a *count* per file:
    /// concurrent loads of the same partition each hold a pin, and the
    /// exemption lifts only when the last one drops. Pinning may let the
    /// cache run temporarily over budget rather than drop a block
    /// another worker is about to read.
    pinned: HashMap<String, usize>,
}

#[derive(Debug)]
struct Entry {
    bytes: Arc<Vec<u8>>,
    last_used: u64,
}

impl BlockCache {
    /// Creates a cache with the given byte budget (0 = disabled).
    pub fn new(capacity_bytes: usize) -> BlockCache {
        BlockCache {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            tick: 0,
            pinned: HashMap::new(),
        }
    }

    /// Exempts every block of `file` from eviction until the matching
    /// [`Self::unpin_file`]. Pins are counted: n concurrent pinners need
    /// n unpins before the file becomes evictable again. Pins on a
    /// disabled cache are harmless no-ops.
    pub fn pin_file(&mut self, file: &str) {
        *self.pinned.entry(file.to_string()).or_insert(0) += 1;
    }

    /// Drops one pin on `file`; when the last pin goes, the eviction
    /// exemption lifts and the byte budget is re-applied (the file's
    /// blocks stay cached but become ordinary LRU citizens). Unpinning
    /// an unpinned file is a no-op.
    pub fn unpin_file(&mut self, file: &str) {
        if let Some(n) = self.pinned.get_mut(file) {
            *n -= 1;
            if *n == 0 {
                self.pinned.remove(file);
                self.evict_to_fit();
            }
        }
    }

    /// Current pin count on `file` (0 = evictable).
    pub fn pin_count(&self, file: &str) -> usize {
        self.pinned.get(file).copied().unwrap_or(0)
    }

    /// Sum of all outstanding pin counts (0 = no file pinned; the
    /// server's drain check asserts this returns to zero).
    pub fn total_pins(&self) -> usize {
        self.pinned.values().sum()
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Looks up a block, refreshing its recency on hit.
    pub fn get(&mut self, id: &BlockId) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(id).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.bytes)
        })
    }

    /// Inserts a block, evicting least-recently-used entries as needed.
    /// Blocks larger than the whole budget are not cached.
    pub fn put(&mut self, id: BlockId, bytes: Arc<Vec<u8>>) {
        if !self.enabled() || bytes.len() > self.capacity_bytes {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            id,
            Entry {
                bytes: Arc::clone(&bytes),
                last_used: self.tick,
            },
        ) {
            self.used_bytes -= old.bytes.len();
        }
        self.used_bytes += bytes.len();
        self.evict_to_fit();
    }

    /// Drops a block (called when its file is deleted or overwritten).
    pub fn invalidate(&mut self, id: &BlockId) {
        if let Some(e) = self.entries.remove(id) {
            self.used_bytes -= e.bytes.len();
        }
    }

    /// Drops every cached block of a file *and* its pin entry. Used by
    /// file deletion: a rebuilt file must never serve stale cached
    /// blocks, and a deleted file's pin must not exempt future blocks
    /// of the same name from eviction.
    pub fn purge_file(&mut self, file: &str) {
        self.pinned.remove(file);
        self.invalidate_file(file);
    }

    /// Drops every cached block of a file.
    pub fn invalidate_file(&mut self, file: &str) {
        let victims: Vec<BlockId> = self
            .entries
            .keys()
            .filter(|id| id.file == file)
            .cloned()
            .collect();
        for id in victims {
            self.invalidate(&id);
        }
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn evict_to_fit(&mut self) {
        while self.used_bytes > self.capacity_bytes {
            // O(n) victim scan: caches hold few, large blocks, so the
            // scan is dwarfed by the I/O it saves. Tie on last_used
            // breaks toward the smaller BlockId for determinism.
            let Some(victim) = self
                .entries
                .iter()
                .filter(|(id, _)| !self.pinned.contains_key(&id.file))
                .min_by(|(ida, ea), (idb, eb)| {
                    ea.last_used.cmp(&eb.last_used).then_with(|| ida.cmp(idb))
                })
                .map(|(id, _)| id.clone())
            else {
                // Only pinned blocks remain: run over budget rather than
                // evict data an in-flight load is relying on.
                return;
            };
            self.invalidate(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(file: &str, index: u32) -> BlockId {
        BlockId::new(file, index)
    }

    fn block(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0u8; n])
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let mut c = BlockCache::new(0);
        assert!(!c.enabled());
        c.put(id("f", 0), block(10));
        assert!(c.get(&id("f", 0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn hit_after_put() {
        let mut c = BlockCache::new(100);
        c.put(id("f", 0), block(10));
        assert_eq!(c.get(&id("f", 0)).unwrap().len(), 10);
        assert!(c.get(&id("f", 1)).is_none());
        assert_eq!(c.used_bytes(), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = BlockCache::new(30);
        c.put(id("f", 0), block(10));
        c.put(id("f", 1), block(10));
        c.put(id("f", 2), block(10));
        // Touch 0 so 1 becomes the LRU.
        assert!(c.get(&id("f", 0)).is_some());
        c.put(id("f", 3), block(10));
        assert!(c.get(&id("f", 1)).is_none(), "LRU evicted");
        assert!(c.get(&id("f", 0)).is_some());
        assert!(c.get(&id("f", 2)).is_some());
        assert!(c.get(&id("f", 3)).is_some());
        assert!(c.used_bytes() <= 30);
    }

    #[test]
    fn oversized_block_not_cached() {
        let mut c = BlockCache::new(10);
        c.put(id("f", 0), block(11));
        assert!(c.is_empty());
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let mut c = BlockCache::new(100);
        c.put(id("f", 0), block(10));
        c.put(id("f", 0), block(20));
        assert_eq!(c.used_bytes(), 20);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_file_drops_all_its_blocks() {
        let mut c = BlockCache::new(100);
        c.put(id("a", 0), block(10));
        c.put(id("a", 1), block(10));
        c.put(id("b", 0), block(10));
        c.invalidate_file("a");
        assert!(c.get(&id("a", 0)).is_none());
        assert!(c.get(&id("a", 1)).is_none());
        assert!(c.get(&id("b", 0)).is_some());
        assert_eq!(c.used_bytes(), 10);
    }

    #[test]
    fn tied_last_used_evicts_smallest_block_id() {
        // The public API can't produce ties (every access bumps a
        // strictly monotone tick), so force them on the private fields
        // to pin the deterministic tie-break: smallest BlockId first.
        let mut c = BlockCache::new(30);
        c.put(id("b", 1), block(10));
        c.put(id("a", 7), block(10));
        c.put(id("b", 0), block(10));
        for e in c.entries.values_mut() {
            e.last_used = 0; // below any future tick, so all three tie
        }
        c.put(id("c", 0), block(10)); // forces one eviction
        assert!(c.get(&id("a", 7)).is_none(), "smallest id evicted first");
        assert!(c.get(&id("b", 0)).is_some());
        assert!(c.get(&id("b", 1)).is_some());
        assert!(c.get(&id("c", 0)).is_some());
    }

    #[test]
    fn tied_eviction_order_is_deterministic_across_runs() {
        // With every entry tied, repeated evictions must drain ids in
        // ascending order regardless of HashMap iteration order.
        let mut evicted_orders = Vec::new();
        for _ in 0..3 {
            let mut c = BlockCache::new(50);
            for i in [3u32, 0, 4, 1, 2] {
                c.put(id("f", i), block(10));
            }
            for e in c.entries.values_mut() {
                e.last_used = 1;
            }
            let mut order = Vec::new();
            for round in 0..4 {
                // Each oversized put evicts exactly one tied victim.
                c.put(id("g", round), block(10));
                for i in 0..5u32 {
                    let key = id("f", i);
                    if c.entries.contains_key(&key) {
                        continue;
                    }
                    if !order.contains(&i) {
                        order.push(i);
                    }
                }
                // Keep the new block tied too so "f" ids stay the
                // preferred victims (g > f lexicographically).
                for e in c.entries.values_mut() {
                    e.last_used = 1;
                }
            }
            evicted_orders.push(order);
        }
        assert_eq!(evicted_orders[0], vec![0, 1, 2, 3]);
        assert_eq!(evicted_orders[0], evicted_orders[1]);
        assert_eq!(evicted_orders[1], evicted_orders[2]);
    }

    #[test]
    fn pinned_file_survives_eviction_pressure() {
        let mut c = BlockCache::new(30);
        c.put(id("hot", 0), block(10));
        c.pin_file("hot");
        // Three more blocks would normally evict "hot" (the LRU).
        for i in 0..3u32 {
            c.put(id("cold", i), block(10));
        }
        assert!(c.get(&id("hot", 0)).is_some(), "pinned block evicted");
        // Budget still enforced on the unpinned remainder.
        assert!(c.used_bytes() <= 30);
    }

    #[test]
    fn all_pinned_cache_may_run_over_budget() {
        let mut c = BlockCache::new(25);
        c.pin_file("f");
        for i in 0..4u32 {
            c.put(id("f", i), block(10));
        }
        assert_eq!(c.len(), 4, "pinned blocks must all stay");
        assert!(c.used_bytes() > 25, "over budget by design while pinned");
        c.unpin_file("f");
        assert!(c.used_bytes() <= 25, "unpin re-applies the budget");
    }

    #[test]
    fn unpin_makes_file_evictable_again() {
        let mut c = BlockCache::new(30);
        c.put(id("a", 0), block(10));
        c.pin_file("a");
        c.unpin_file("a");
        c.put(id("b", 0), block(10));
        c.put(id("b", 1), block(10));
        c.put(id("b", 2), block(10));
        assert!(c.get(&id("a", 0)).is_none(), "unpinned LRU should evict");
    }

    #[test]
    fn purge_drops_blocks_and_pin_entry() {
        let mut c = BlockCache::new(30);
        c.put(id("a", 0), block(10));
        c.pin_file("a");
        c.purge_file("a");
        assert!(c.get(&id("a", 0)).is_none(), "purged block must be gone");
        // The pin is gone too: re-inserted blocks of the same name are
        // ordinary LRU citizens and evict under pressure.
        c.put(id("a", 0), block(10));
        c.put(id("b", 0), block(10));
        c.put(id("b", 1), block(10));
        c.put(id("b", 2), block(10));
        assert!(c.get(&id("a", 0)).is_none(), "stale pin survived purge");
    }

    #[test]
    fn pins_are_counted_not_idempotent() {
        let mut c = BlockCache::new(30);
        c.put(id("hot", 0), block(10));
        // Two concurrent loads of the same partition both pin it.
        c.pin_file("hot");
        c.pin_file("hot");
        assert_eq!(c.pin_count("hot"), 2);
        assert_eq!(c.total_pins(), 2);
        // The first finishing load must NOT lift the exemption.
        c.unpin_file("hot");
        assert_eq!(c.pin_count("hot"), 1);
        for i in 0..3u32 {
            c.put(id("cold", i), block(10));
        }
        assert!(
            c.get(&id("hot", 0)).is_some(),
            "file with an outstanding pin was evicted"
        );
        c.unpin_file("hot");
        assert_eq!(c.total_pins(), 0);
        // The get above refreshed "hot", so flush everything older first;
        // three more puts make it the LRU victim again.
        for i in 3..6u32 {
            c.put(id("cold", i), block(10));
        }
        assert!(c.get(&id("hot", 0)).is_none(), "fully unpinned LRU evicts");
        // Unpinning an unpinned file stays a no-op.
        c.unpin_file("hot");
        assert_eq!(c.pin_count("hot"), 0);
    }

    #[test]
    fn eviction_respects_budget_under_churn() {
        let mut c = BlockCache::new(100);
        for i in 0..50u32 {
            c.put(id("f", i), block(17));
            assert!(c.used_bytes() <= 100, "over budget at i={i}");
        }
        assert!(c.len() <= 5);
    }
}
