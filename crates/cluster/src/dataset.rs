//! Partitioned in-memory datasets with map-reduce operators.
//!
//! A [`Dataset`] models an RDD: a list of partitions processed in parallel
//! by the worker pool. Only the operators the paper's pipelines use are
//! provided — `map`, `flat_map`, `filter`, `map_partitions`,
//! `reduce_by_key`, and a record `shuffle` driven by a partitioner
//! function (§IV-C "Data Shuffle").

use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A partitioned collection of values.
///
/// ```
/// use tardis_cluster::{Dataset, Metrics, WorkerPool};
///
/// let pool = WorkerPool::new(4);
/// let metrics = Metrics::new();
/// let counts: Vec<(u32, u64)> = Dataset::from_items((0..100u32).collect(), 8)
///     .map(&pool, |x| (x % 3, 1u64))
///     .reduce_by_key(&pool, &metrics, 2, |a, b| *a += b)
///     .collect();
/// let total: u64 = counts.iter().map(|&(_, c)| c).sum();
/// assert_eq!(total, 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset<T> {
    partitions: Vec<Vec<T>>,
}

impl<T: Send> Dataset<T> {
    /// Wraps explicit partitions.
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Dataset<T> {
        Dataset { partitions }
    }

    /// Splits a flat vector into `n_partitions` contiguous chunks of
    /// near-equal size.
    ///
    /// # Panics
    /// Panics if `n_partitions == 0`.
    pub fn from_items(items: Vec<T>, n_partitions: usize) -> Dataset<T> {
        assert!(n_partitions > 0, "need at least one partition");
        let n = items.len();
        let mut partitions: Vec<Vec<T>> = Vec::with_capacity(n_partitions);
        let base = n / n_partitions;
        let extra = n % n_partitions;
        let mut iter = items.into_iter();
        for p in 0..n_partitions {
            let take = base + usize::from(p < extra);
            partitions.push(iter.by_ref().take(take).collect());
        }
        Dataset { partitions }
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of items across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Whether the dataset holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrowed access to the partitions.
    pub fn partitions(&self) -> &[Vec<T>] {
        &self.partitions
    }

    /// Consumes the dataset, returning its partitions.
    pub fn into_partitions(self) -> Vec<Vec<T>> {
        self.partitions
    }

    /// Flattens into a single vector (partition order preserved).
    pub fn collect(self) -> Vec<T> {
        self.partitions.into_iter().flatten().collect()
    }

    /// Element-wise map, parallel over partitions.
    pub fn map<R: Send, F>(self, pool: &WorkerPool, f: F) -> Dataset<R>
    where
        F: Fn(T) -> R + Sync,
    {
        Dataset {
            partitions: pool.par_map(self.partitions, |p| p.into_iter().map(&f).collect()),
        }
    }

    /// Element-wise flat map, parallel over partitions.
    pub fn flat_map<R: Send, I, F>(self, pool: &WorkerPool, f: F) -> Dataset<R>
    where
        I: IntoIterator<Item = R>,
        F: Fn(T) -> I + Sync,
    {
        Dataset {
            partitions: pool.par_map(self.partitions, |p| {
                p.into_iter().flat_map(&f).collect()
            }),
        }
    }

    /// Keeps items satisfying the predicate, parallel over partitions.
    pub fn filter<F>(self, pool: &WorkerPool, f: F) -> Dataset<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        Dataset {
            partitions: pool.par_map(self.partitions, |p| p.into_iter().filter(&f).collect()),
        }
    }

    /// Whole-partition map (`mapPartition` in the paper's Figure 8): the
    /// closure receives the partition index and its full contents.
    pub fn map_partitions<R: Send, F>(self, pool: &WorkerPool, f: F) -> Dataset<R>
    where
        F: Fn(usize, Vec<T>) -> Vec<R> + Sync,
    {
        Dataset {
            partitions: pool.par_map_indexed(self.partitions, f),
        }
    }

    /// Re-partitions every item into one of `n_out` output partitions
    /// chosen by `partitioner` (values `>= n_out` are clamped into the last
    /// partition). Records moved are counted in `metrics`.
    ///
    /// # Panics
    /// Panics if `n_out == 0`.
    pub fn shuffle<F>(
        self,
        pool: &WorkerPool,
        metrics: &Metrics,
        n_out: usize,
        partitioner: F,
    ) -> Dataset<T>
    where
        F: Fn(&T) -> usize + Sync,
    {
        assert!(n_out > 0, "need at least one output partition");
        // Map side: each input partition splits its items by target.
        let mapped: Vec<Vec<Vec<T>>> = pool.par_map(self.partitions, |part| {
            let mut buckets: Vec<Vec<T>> = (0..n_out).map(|_| Vec::new()).collect();
            for item in part {
                let target = partitioner(&item).min(n_out - 1);
                buckets[target].push(item);
            }
            buckets
        });
        let moved: usize = mapped.iter().flatten().map(Vec::len).sum();
        metrics.record_shuffle(moved as u64);

        // Reduce side: concatenate per-target buckets. Collected in
        // parallel; output partition p gathers bucket p of every mapper in
        // mapper order, so the result is deterministic.
        let shared: Vec<Vec<Mutex<Vec<T>>>> = mapped
            .into_iter()
            .map(|buckets| buckets.into_iter().map(Mutex::new).collect())
            .collect();
        let partitions = pool.par_tasks(n_out, |p| {
            let mut out = Vec::new();
            for mapper in &shared {
                out.append(&mut mapper[p].lock());
            }
            out
        });
        Dataset { partitions }
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Send + Eq + Hash,
    V: Send,
{
    /// Aggregates values by key (`reduceByKey`): a map-side combine per
    /// partition, a hash shuffle into `n_out` partitions, then a final
    /// merge, with `merge` combining two values of one key.
    ///
    /// Each output partition owns a disjoint key range; pairs within a
    /// partition are in unspecified order.
    ///
    /// # Panics
    /// Panics if `n_out == 0`.
    pub fn reduce_by_key<F>(
        self,
        pool: &WorkerPool,
        metrics: &Metrics,
        n_out: usize,
        merge: F,
    ) -> Dataset<(K, V)>
    where
        F: Fn(&mut V, V) + Sync,
    {
        assert!(n_out > 0, "need at least one output partition");
        // Map-side combine.
        let combined: Dataset<(K, V)> = Dataset {
            partitions: pool.par_map(self.partitions, |part| {
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in part {
                    match acc.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            merge(e.get_mut(), v)
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
                acc.into_iter().collect()
            }),
        };
        // Hash shuffle by key.
        let shuffled = combined.shuffle(pool, metrics, n_out, |(k, _)| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            k.hash(&mut h);
            (h.finish() % n_out as u64) as usize
        });
        // Reduce-side final merge.
        Dataset {
            partitions: pool.par_map(shuffled.partitions, |part| {
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in part {
                    match acc.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            merge(e.get_mut(), v)
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
                acc.into_iter().collect()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> WorkerPool {
        WorkerPool::new(4)
    }

    #[test]
    fn from_items_balances_partitions() {
        let d = Dataset::from_items((0..10).collect::<Vec<u32>>(), 3);
        assert_eq!(d.n_partitions(), 3);
        let sizes: Vec<usize> = d.partitions().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn from_items_more_partitions_than_items() {
        let d = Dataset::from_items(vec![1, 2], 5);
        assert_eq!(d.n_partitions(), 5);
        assert_eq!(d.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn from_items_zero_partitions_panics() {
        Dataset::from_items(vec![1], 0);
    }

    #[test]
    fn map_preserves_partitioning() {
        let d = Dataset::from_items((0..100).collect::<Vec<u32>>(), 7).map(&pool(), |x| x * 2);
        assert_eq!(d.n_partitions(), 7);
        assert_eq!(d.collect(), (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn flat_map_expands() {
        let d =
            Dataset::from_items(vec![1u32, 2, 3], 2).flat_map(&pool(), |x| vec![x; x as usize]);
        assert_eq!(d.collect(), vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn filter_drops() {
        let d = Dataset::from_items((0..10).collect::<Vec<u32>>(), 3)
            .filter(&pool(), |x| x % 2 == 0);
        assert_eq!(d.collect(), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let d = Dataset::from_partitions(vec![vec![1u32, 2], vec![3, 4, 5]])
            .map_partitions(&pool(), |idx, p| vec![(idx, p.len())]);
        assert_eq!(d.collect(), vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn shuffle_routes_by_partitioner() {
        let m = Metrics::new();
        let d = Dataset::from_items((0..100).collect::<Vec<u32>>(), 5).shuffle(
            &pool(),
            &m,
            4,
            |x| (*x % 4) as usize,
        );
        assert_eq!(d.n_partitions(), 4);
        for (p, part) in d.partitions().iter().enumerate() {
            assert_eq!(part.len(), 25);
            assert!(part.iter().all(|x| (*x % 4) as usize == p));
        }
        assert_eq!(m.snapshot().shuffled_records, 100);
    }

    #[test]
    fn shuffle_clamps_out_of_range_targets() {
        let m = Metrics::new();
        let d = Dataset::from_items(vec![0u32, 1, 2], 1).shuffle(&pool(), &m, 2, |_| 99);
        assert_eq!(d.partitions()[0].len(), 0);
        assert_eq!(d.partitions()[1].len(), 3);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let m = Metrics::new();
        let mk = || {
            Dataset::from_items((0..1000).collect::<Vec<u32>>(), 8).shuffle(
                &pool(),
                &m,
                4,
                |x| (*x % 4) as usize,
            )
        };
        assert_eq!(mk().into_partitions(), mk().into_partitions());
    }

    #[test]
    fn reduce_by_key_counts() {
        let m = Metrics::new();
        let pairs: Vec<(u32, u64)> = (0..1000).map(|i| (i % 10, 1u64)).collect();
        let d = Dataset::from_items(pairs, 7).reduce_by_key(&pool(), &m, 3, |a, b| *a += b);
        let mut out = d.collect();
        out.sort_unstable();
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&(_, c)| c == 100));
    }

    #[test]
    fn reduce_by_key_keys_are_disjoint_across_partitions() {
        let m = Metrics::new();
        let pairs: Vec<(u32, u64)> = (0..100).map(|i| (i % 20, 1u64)).collect();
        let d = Dataset::from_items(pairs, 5).reduce_by_key(&pool(), &m, 4, |a, b| *a += b);
        let mut seen = std::collections::HashSet::new();
        for part in d.partitions() {
            for (k, _) in part {
                assert!(seen.insert(*k), "key {k} in two partitions");
            }
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn reduce_by_key_empty_dataset() {
        let m = Metrics::new();
        let d: Dataset<(u32, u64)> = Dataset::from_partitions(vec![vec![], vec![]]);
        let out = d.reduce_by_key(&pool(), &m, 2, |a, b| *a += b);
        assert!(out.is_empty());
    }
}
