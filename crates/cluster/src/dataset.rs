//! Partitioned in-memory datasets with map-reduce operators.
//!
//! A [`Dataset`] models an RDD: a list of partitions processed in parallel
//! by the worker pool. Only the operators the paper's pipelines use are
//! provided — `map`, `flat_map`, `filter`, `map_partitions`,
//! `reduce_by_key`, and a record `shuffle` driven by a partitioner
//! function (§IV-C "Data Shuffle").

use crate::error::ClusterError;
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A partitioned collection of values.
///
/// ```
/// use tardis_cluster::{Dataset, Metrics, WorkerPool};
///
/// let pool = WorkerPool::new(4);
/// let metrics = Metrics::new();
/// let counts: Vec<(u32, u64)> = Dataset::from_items((0..100u32).collect(), 8)
///     .map(&pool, |x| (x % 3, 1u64))
///     .reduce_by_key(&pool, &metrics, 2, |a, b| *a += b)
///     .collect();
/// let total: u64 = counts.iter().map(|&(_, c)| c).sum();
/// assert_eq!(total, 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset<T> {
    partitions: Vec<Vec<T>>,
}

impl<T: Send> Dataset<T> {
    /// Wraps explicit partitions.
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Dataset<T> {
        Dataset { partitions }
    }

    /// Splits a flat vector into `n_partitions` contiguous chunks of
    /// near-equal size.
    ///
    /// # Panics
    /// Panics if `n_partitions == 0`.
    pub fn from_items(items: Vec<T>, n_partitions: usize) -> Dataset<T> {
        assert!(n_partitions > 0, "need at least one partition");
        let n = items.len();
        let mut partitions: Vec<Vec<T>> = Vec::with_capacity(n_partitions);
        let base = n / n_partitions;
        let extra = n % n_partitions;
        let mut iter = items.into_iter();
        for p in 0..n_partitions {
            let take = base + usize::from(p < extra);
            partitions.push(iter.by_ref().take(take).collect());
        }
        Dataset { partitions }
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of items across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Whether the dataset holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrowed access to the partitions.
    pub fn partitions(&self) -> &[Vec<T>] {
        &self.partitions
    }

    /// Consumes the dataset, returning its partitions.
    pub fn into_partitions(self) -> Vec<Vec<T>> {
        self.partitions
    }

    /// Flattens into a single vector (partition order preserved).
    pub fn collect(self) -> Vec<T> {
        self.partitions.into_iter().flatten().collect()
    }

    /// Element-wise map, parallel over partitions.
    pub fn map<R: Send, F>(self, pool: &WorkerPool, f: F) -> Dataset<R>
    where
        F: Fn(T) -> R + Sync,
    {
        Dataset {
            partitions: pool.par_map(self.partitions, |p| p.into_iter().map(&f).collect()),
        }
    }

    /// Element-wise flat map, parallel over partitions.
    pub fn flat_map<R: Send, I, F>(self, pool: &WorkerPool, f: F) -> Dataset<R>
    where
        I: IntoIterator<Item = R>,
        F: Fn(T) -> I + Sync,
    {
        Dataset {
            partitions: pool.par_map(self.partitions, |p| {
                p.into_iter().flat_map(&f).collect()
            }),
        }
    }

    /// Keeps items satisfying the predicate, parallel over partitions.
    pub fn filter<F>(self, pool: &WorkerPool, f: F) -> Dataset<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        Dataset {
            partitions: pool.par_map(self.partitions, |p| p.into_iter().filter(&f).collect()),
        }
    }

    /// Whole-partition map (`mapPartition` in the paper's Figure 8): the
    /// closure receives the partition index and its full contents.
    pub fn map_partitions<R: Send, F>(self, pool: &WorkerPool, f: F) -> Dataset<R>
    where
        F: Fn(usize, Vec<T>) -> Vec<R> + Sync,
    {
        Dataset {
            partitions: pool.par_map_indexed(self.partitions, f),
        }
    }

    /// Re-partitions every item into one of `n_out` output partitions
    /// chosen by `partitioner` (values `>= n_out` are clamped into the last
    /// partition). Records moved are counted in `metrics`.
    ///
    /// # Panics
    /// Panics if `n_out == 0`.
    pub fn shuffle<F>(
        self,
        pool: &WorkerPool,
        metrics: &Metrics,
        n_out: usize,
        partitioner: F,
    ) -> Dataset<T>
    where
        F: Fn(&T) -> usize + Sync,
    {
        assert!(n_out > 0, "need at least one output partition");
        // Map side: each input partition splits its items by target.
        let mapped: Vec<Vec<Vec<T>>> = pool.par_map(self.partitions, |part| {
            let mut buckets: Vec<Vec<T>> = (0..n_out).map(|_| Vec::new()).collect();
            for item in part {
                let target = partitioner(&item).min(n_out - 1);
                buckets[target].push(item);
            }
            buckets
        });
        let moved: usize = mapped.iter().flatten().map(Vec::len).sum();
        metrics.record_shuffle(moved as u64);

        // Reduce side: concatenate per-target buckets. Collected in
        // parallel; output partition p gathers bucket p of every mapper in
        // mapper order, so the result is deterministic.
        let shared: Vec<Vec<Mutex<Vec<T>>>> = mapped
            .into_iter()
            .map(|buckets| buckets.into_iter().map(Mutex::new).collect())
            .collect();
        let partitions = pool.par_tasks(n_out, |p| {
            let mut out = Vec::new();
            for mapper in &shared {
                out.append(&mut mapper[p].lock());
            }
            out
        });
        Dataset { partitions }
    }
}

/// Fault-tolerant operator variants.
///
/// These run the same computations as their infallible counterparts but
/// through the pool's `try_par_*` entry points: tasks may be failed by a
/// seeded [`crate::fault::FaultInjector`], panics in closures are caught,
/// and transient failures retry with backoff — exactly Spark's task
/// semantics. A clean pool (no injector) makes them behave identically to
/// the plain operators, so pipelines can use `try_` unconditionally.
///
/// `T: Sync + Clone` because a retried task re-reads its input partition.
impl<T: Send + Sync + Clone> Dataset<T> {
    /// Fault-tolerant [`Dataset::map`].
    pub fn try_map<R: Send, F>(self, pool: &WorkerPool, f: F) -> Result<Dataset<R>, ClusterError>
    where
        F: Fn(T) -> R + Sync,
    {
        Ok(Dataset {
            partitions: pool
                .try_par_map(self.partitions, |p| Ok::<_, ClusterError>(p.into_iter().map(&f).collect()))?,
        })
    }

    /// Fault-tolerant [`Dataset::flat_map`].
    pub fn try_flat_map<R: Send, I, F>(
        self,
        pool: &WorkerPool,
        f: F,
    ) -> Result<Dataset<R>, ClusterError>
    where
        I: IntoIterator<Item = R>,
        F: Fn(T) -> I + Sync,
    {
        Ok(Dataset {
            partitions: pool.try_par_map(self.partitions, |p| {
                Ok::<_, ClusterError>(p.into_iter().flat_map(&f).collect())
            })?,
        })
    }

    /// Fault-tolerant [`Dataset::filter`].
    pub fn try_filter<F>(self, pool: &WorkerPool, f: F) -> Result<Dataset<T>, ClusterError>
    where
        F: Fn(&T) -> bool + Sync,
    {
        Ok(Dataset {
            partitions: pool
                .try_par_map(self.partitions, |p| Ok::<_, ClusterError>(p.into_iter().filter(&f).collect()))?,
        })
    }

    /// Fault-tolerant [`Dataset::map_partitions`].
    pub fn try_map_partitions<R: Send, F>(
        self,
        pool: &WorkerPool,
        f: F,
    ) -> Result<Dataset<R>, ClusterError>
    where
        F: Fn(usize, Vec<T>) -> Vec<R> + Sync,
    {
        Ok(Dataset {
            partitions: pool.try_par_map_indexed(self.partitions, |i, p| Ok::<_, ClusterError>(f(i, p)))?,
        })
    }

    /// Fault-tolerant [`Dataset::shuffle`]. Faults hit the map side (the
    /// expensive routing work); the gather drains the mapped buckets
    /// destructively and therefore runs on the infallible path — in Spark
    /// terms it is the driver collecting already-materialized shuffle
    /// output, not a retryable task.
    pub fn try_shuffle<F>(
        self,
        pool: &WorkerPool,
        metrics: &Metrics,
        n_out: usize,
        partitioner: F,
    ) -> Result<Dataset<T>, ClusterError>
    where
        F: Fn(&T) -> usize + Sync,
    {
        assert!(n_out > 0, "need at least one output partition");
        let mapped: Vec<Vec<Vec<T>>> = pool.try_par_map(self.partitions, |part| {
            let mut buckets: Vec<Vec<T>> = (0..n_out).map(|_| Vec::new()).collect();
            for item in part {
                let target = partitioner(&item).min(n_out - 1);
                buckets[target].push(item);
            }
            Ok::<_, ClusterError>(buckets)
        })?;
        let moved: usize = mapped.iter().flatten().map(Vec::len).sum();
        metrics.record_shuffle(moved as u64);

        let shared: Vec<Vec<Mutex<Vec<T>>>> = mapped
            .into_iter()
            .map(|buckets| buckets.into_iter().map(Mutex::new).collect())
            .collect();
        let partitions = pool.par_tasks(n_out, |p| {
            let mut out = Vec::new();
            for mapper in &shared {
                out.append(&mut mapper[p].lock());
            }
            out
        });
        Ok(Dataset { partitions })
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Send + Eq + Hash,
    V: Send,
{
    /// Aggregates values by key (`reduceByKey`): a map-side combine per
    /// partition, a hash shuffle into `n_out` partitions, then a final
    /// merge, with `merge` combining two values of one key.
    ///
    /// Each output partition owns a disjoint key range; pairs within a
    /// partition are in unspecified order.
    ///
    /// # Panics
    /// Panics if `n_out == 0`.
    pub fn reduce_by_key<F>(
        self,
        pool: &WorkerPool,
        metrics: &Metrics,
        n_out: usize,
        merge: F,
    ) -> Dataset<(K, V)>
    where
        F: Fn(&mut V, V) + Sync,
    {
        assert!(n_out > 0, "need at least one output partition");
        // Map-side combine.
        let combined: Dataset<(K, V)> = Dataset {
            partitions: pool.par_map(self.partitions, |part| {
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in part {
                    match acc.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            merge(e.get_mut(), v)
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
                acc.into_iter().collect()
            }),
        };
        // Hash shuffle by key.
        let shuffled = combined.shuffle(pool, metrics, n_out, |(k, _)| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            k.hash(&mut h);
            (h.finish() % n_out as u64) as usize
        });
        // Reduce-side final merge.
        Dataset {
            partitions: pool.par_map(shuffled.partitions, |part| {
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in part {
                    match acc.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            merge(e.get_mut(), v)
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
                acc.into_iter().collect()
            }),
        }
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Send + Sync + Clone + Eq + Hash,
    V: Send + Sync + Clone,
{
    /// Fault-tolerant [`Dataset::reduce_by_key`]: the map-side combine,
    /// shuffle map side, and reduce-side merge all run as retryable
    /// tasks.
    ///
    /// # Panics
    /// Panics if `n_out == 0`.
    pub fn try_reduce_by_key<F>(
        self,
        pool: &WorkerPool,
        metrics: &Metrics,
        n_out: usize,
        merge: F,
    ) -> Result<Dataset<(K, V)>, ClusterError>
    where
        F: Fn(&mut V, V) + Sync,
    {
        assert!(n_out > 0, "need at least one output partition");
        let combine = |part: Vec<(K, V)>| -> Vec<(K, V)> {
            let mut acc: HashMap<K, V> = HashMap::new();
            for (k, v) in part {
                match acc.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => merge(e.get_mut(), v),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(v);
                    }
                }
            }
            acc.into_iter().collect()
        };
        let combined: Dataset<(K, V)> = Dataset {
            partitions: pool.try_par_map(self.partitions, |p| Ok::<_, ClusterError>(combine(p)))?,
        };
        let shuffled = combined.try_shuffle(pool, metrics, n_out, |(k, _)| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            k.hash(&mut h);
            (h.finish() % n_out as u64) as usize
        })?;
        Ok(Dataset {
            partitions: pool.try_par_map(shuffled.partitions, |p| Ok::<_, ClusterError>(combine(p)))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> WorkerPool {
        WorkerPool::new(4)
    }

    #[test]
    fn from_items_balances_partitions() {
        let d = Dataset::from_items((0..10).collect::<Vec<u32>>(), 3);
        assert_eq!(d.n_partitions(), 3);
        let sizes: Vec<usize> = d.partitions().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn from_items_more_partitions_than_items() {
        let d = Dataset::from_items(vec![1, 2], 5);
        assert_eq!(d.n_partitions(), 5);
        assert_eq!(d.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn from_items_zero_partitions_panics() {
        Dataset::from_items(vec![1], 0);
    }

    #[test]
    fn map_preserves_partitioning() {
        let d = Dataset::from_items((0..100).collect::<Vec<u32>>(), 7).map(&pool(), |x| x * 2);
        assert_eq!(d.n_partitions(), 7);
        assert_eq!(d.collect(), (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn flat_map_expands() {
        let d =
            Dataset::from_items(vec![1u32, 2, 3], 2).flat_map(&pool(), |x| vec![x; x as usize]);
        assert_eq!(d.collect(), vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn filter_drops() {
        let d = Dataset::from_items((0..10).collect::<Vec<u32>>(), 3)
            .filter(&pool(), |x| x % 2 == 0);
        assert_eq!(d.collect(), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let d = Dataset::from_partitions(vec![vec![1u32, 2], vec![3, 4, 5]])
            .map_partitions(&pool(), |idx, p| vec![(idx, p.len())]);
        assert_eq!(d.collect(), vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn shuffle_routes_by_partitioner() {
        let m = Metrics::new();
        let d = Dataset::from_items((0..100).collect::<Vec<u32>>(), 5).shuffle(
            &pool(),
            &m,
            4,
            |x| (*x % 4) as usize,
        );
        assert_eq!(d.n_partitions(), 4);
        for (p, part) in d.partitions().iter().enumerate() {
            assert_eq!(part.len(), 25);
            assert!(part.iter().all(|x| (*x % 4) as usize == p));
        }
        assert_eq!(m.snapshot().shuffled_records, 100);
    }

    #[test]
    fn shuffle_clamps_out_of_range_targets() {
        let m = Metrics::new();
        let d = Dataset::from_items(vec![0u32, 1, 2], 1).shuffle(&pool(), &m, 2, |_| 99);
        assert_eq!(d.partitions()[0].len(), 0);
        assert_eq!(d.partitions()[1].len(), 3);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let m = Metrics::new();
        let mk = || {
            Dataset::from_items((0..1000).collect::<Vec<u32>>(), 8).shuffle(
                &pool(),
                &m,
                4,
                |x| (*x % 4) as usize,
            )
        };
        assert_eq!(mk().into_partitions(), mk().into_partitions());
    }

    #[test]
    fn reduce_by_key_counts() {
        let m = Metrics::new();
        let pairs: Vec<(u32, u64)> = (0..1000).map(|i| (i % 10, 1u64)).collect();
        let d = Dataset::from_items(pairs, 7).reduce_by_key(&pool(), &m, 3, |a, b| *a += b);
        let mut out = d.collect();
        out.sort_unstable();
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&(_, c)| c == 100));
    }

    #[test]
    fn reduce_by_key_keys_are_disjoint_across_partitions() {
        let m = Metrics::new();
        let pairs: Vec<(u32, u64)> = (0..100).map(|i| (i % 20, 1u64)).collect();
        let d = Dataset::from_items(pairs, 5).reduce_by_key(&pool(), &m, 4, |a, b| *a += b);
        let mut seen = std::collections::HashSet::new();
        for part in d.partitions() {
            for (k, _) in part {
                assert!(seen.insert(*k), "key {k} in two partitions");
            }
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn reduce_by_key_empty_dataset() {
        let m = Metrics::new();
        let d: Dataset<(u32, u64)> = Dataset::from_partitions(vec![vec![], vec![]]);
        let out = d.reduce_by_key(&pool(), &m, 2, |a, b| *a += b);
        assert!(out.is_empty());
    }

    use crate::fault::{FaultInjector, FaultPlan, RetryPolicy};
    use std::sync::Arc;

    /// A pool whose tasks fail 20% of the time but has budget to recover.
    fn faulty_pool(metrics: &Arc<Metrics>) -> WorkerPool {
        let injector = Arc::new(FaultInjector::new(
            FaultPlan {
                seed: 77,
                task_fail_p: 0.2,
                ..FaultPlan::none()
            },
            Arc::clone(metrics),
        ));
        WorkerPool::new(4)
            .with_metrics(Arc::clone(metrics))
            .with_retry(RetryPolicy {
                max_attempts: 8,
                backoff_base: std::time::Duration::ZERO,
                backoff_cap: std::time::Duration::ZERO,
                ..RetryPolicy::default()
            })
            .with_fault_injection(injector)
    }

    #[test]
    fn try_ops_without_faults_match_plain_ops() {
        let m = Metrics::new();
        let plain = Dataset::from_items((0..500u32).collect::<Vec<_>>(), 8)
            .map(&pool(), |x| x * 2)
            .filter(&pool(), |x| x % 3 != 0)
            .collect();
        let tried = Dataset::from_items((0..500u32).collect::<Vec<_>>(), 8)
            .try_map(&pool(), |x| x * 2)
            .unwrap()
            .try_filter(&pool(), |x| x % 3 != 0)
            .unwrap()
            .collect();
        assert_eq!(plain, tried);
        assert_eq!(m.snapshot().task_retries, 0);
    }

    #[test]
    fn faulted_pipeline_produces_identical_output() {
        let metrics = Arc::new(Metrics::new());
        let faulty = faulty_pool(&metrics);
        let clean = pool();
        let m_clean = Metrics::new();

        let run = |p: &WorkerPool, m: &Metrics| -> Vec<(u32, u64)> {
            let mut out = Dataset::from_items((0..2000u32).collect::<Vec<_>>(), 16)
                .try_map(p, |x| (x % 13, 1u64))
                .unwrap()
                .try_reduce_by_key(p, m, 4, |a, b| *a += b)
                .unwrap()
                .collect();
            out.sort_unstable();
            out
        };
        let faulted = run(&faulty, &metrics);
        let reference = run(&clean, &m_clean);
        assert_eq!(faulted, reference);
        let s = metrics.snapshot();
        assert!(s.faults_injected > 0, "no faults injected");
        assert!(s.task_retries > 0, "faults were not retried");
        assert_eq!(s.tasks_failed_permanently, 0);
    }

    #[test]
    fn faulted_shuffle_is_deterministic_and_correct() {
        let metrics = Arc::new(Metrics::new());
        let faulty = faulty_pool(&metrics);
        let mk = || {
            Dataset::from_items((0..1000u32).collect::<Vec<_>>(), 8)
                .try_shuffle(&faulty, &metrics, 4, |x| (*x % 4) as usize)
                .unwrap()
                .into_partitions()
        };
        let a = mk();
        assert_eq!(a, mk());
        for (p, part) in a.iter().enumerate() {
            assert_eq!(part.len(), 250);
            assert!(part.iter().all(|x| (*x % 4) as usize == p));
        }
    }
}
