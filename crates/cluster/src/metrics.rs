//! Run-time metrics counters.
//!
//! Wall-clock on a laptop does not transfer to the paper's 112-core
//! cluster, but I/O and task counts do: every experiment reports these
//! counters so that the *shape* of each result (e.g. "the Bloom filter
//! avoided N partition loads") is visible and machine-independent.

use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of datanodes with individual read/probe accounting. Per-node
/// counters live in fixed arrays so [`MetricsSnapshot`] stays `Copy`;
/// nodes beyond this bound (no configuration in this repo reaches it)
/// simply go untracked and fall back to replica-order routing.
pub const MAX_TRACKED_NODES: usize = 16;

/// Per-partition failure accounting: how often each partition's storage
/// failed permanently, and which partitions are quarantined as
/// unavailable (every replica of some block exhausted). Ordered
/// containers keep reports deterministic.
#[derive(Debug, Default)]
struct PartitionHealth {
    failures: BTreeMap<u32, u64>,
    unavailable: BTreeSet<u32>,
    accesses: BTreeMap<u32, u64>,
}

/// Atomic counters shared by the DFS, shuffle, and worker pool.
#[derive(Debug, Default)]
pub struct Metrics {
    blocks_read: AtomicU64,
    bytes_read: AtomicU64,
    blocks_written: AtomicU64,
    bytes_written: AtomicU64,
    shuffled_records: AtomicU64,
    tasks_run: AtomicU64,
    broadcast_bytes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    faults_injected: AtomicU64,
    task_retries: AtomicU64,
    block_read_retries: AtomicU64,
    block_write_retries: AtomicU64,
    tasks_failed_permanently: AtomicU64,
    replica_failovers: AtomicU64,
    checksum_failures: AtomicU64,
    scrub_repairs: AtomicU64,
    partitions_skipped: AtomicU64,
    tasks_stolen: AtomicU64,
    queries_served: AtomicU64,
    queries_shed: AtomicU64,
    queue_depth: AtomicU64,
    queries_in_flight: AtomicU64,
    replicas_added: AtomicU64,
    rereplications: AtomicU64,
    hot_partitions: AtomicU64,
    records_ingested: AtomicU64,
    deltas_sealed: AtomicU64,
    compactions: AtomicU64,
    compaction_records_folded: AtomicU64,
    deltas_active: AtomicU64,
    crashes_injected: AtomicU64,
    recovery_runs: AtomicU64,
    recovery_manifests_rolled: AtomicU64,
    recovery_tmp_swept: AtomicU64,
    recovery_orphans_deleted: AtomicU64,
    recovery_replicas_healed: AtomicU64,
    node_reads: [AtomicU64; MAX_TRACKED_NODES],
    node_in_flight: [AtomicU64; MAX_TRACKED_NODES],
    node_probe_missing: [AtomicU64; MAX_TRACKED_NODES],
    node_probe_corrupt: [AtomicU64; MAX_TRACKED_NODES],
    node_probe_dead: [AtomicU64; MAX_TRACKED_NODES],
    partition_health: Mutex<PartitionHealth>,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Blocks read from the DFS.
    pub blocks_read: u64,
    /// Bytes read from the DFS.
    pub bytes_read: u64,
    /// Blocks written to the DFS.
    pub blocks_written: u64,
    /// Bytes written to the DFS.
    pub bytes_written: u64,
    /// Records moved through shuffles.
    pub shuffled_records: u64,
    /// Tasks executed by the worker pool.
    pub tasks_run: u64,
    /// Bytes handed to broadcasts.
    pub broadcast_bytes: u64,
    /// Block reads served from the LRU cache.
    pub cache_hits: u64,
    /// Block reads that missed the LRU cache (when enabled).
    pub cache_misses: u64,
    /// Faults deliberately injected by a seeded fault plan.
    pub faults_injected: u64,
    /// Worker-pool tasks that were retried after a transient failure.
    pub task_retries: u64,
    /// DFS block reads that were retried after a transient failure.
    pub block_read_retries: u64,
    /// DFS block writes that were retried after a transient failure.
    pub block_write_retries: u64,
    /// Tasks that exhausted their retry budget and surfaced an error.
    pub tasks_failed_permanently: u64,
    /// Block reads served after one or more replica failures.
    pub replica_failovers: u64,
    /// Replica reads rejected by checksum/header verification.
    pub checksum_failures: u64,
    /// Replicas re-replicated by scrub passes.
    pub scrub_repairs: u64,
    /// Partition loads skipped by degraded (best-effort) query serving.
    pub partitions_skipped: u64,
    /// Pool tasks claimed from another worker's deque (work stealing).
    pub tasks_stolen: u64,
    /// Queries the server answered (any status except shed).
    pub queries_served: u64,
    /// Queries the server shed at admission (overload / shutdown).
    pub queries_shed: u64,
    /// Queries waiting in the server's admission queue (gauge).
    pub queue_depth: u64,
    /// Queries currently executing in the server (gauge).
    pub queries_in_flight: u64,
    /// Total permanent partition-storage failures (sum over partitions).
    pub partition_failures: u64,
    /// Partitions currently quarantined as unavailable.
    pub partitions_unavailable: u64,
    /// Replica copies created by capacity top-ups (scrub after a factor
    /// raise, or hot-partition re-replication) — distinct from
    /// `scrub_repairs`, which re-creates copies that were lost.
    pub replicas_added: u64,
    /// Files whose replication factor was raised by the adaptive
    /// hot-partition re-replicator.
    pub rereplications: u64,
    /// Partitions currently classified as hot by the server (gauge).
    pub hot_partitions: u64,
    /// Records accepted by the continuous-ingest path.
    pub records_ingested: u64,
    /// Sealed delta partitions written by ingest batches.
    pub deltas_sealed: u64,
    /// Compaction passes that folded deltas into the base index.
    pub compactions: u64,
    /// Records folded from deltas into the base by compaction.
    pub compaction_records_folded: u64,
    /// Sealed deltas currently awaiting compaction (gauge).
    pub deltas_active: u64,
    /// Crashes deliberately injected at armed crash points.
    pub crashes_injected: u64,
    /// Startup recovery (fsck) passes run over the store.
    pub recovery_runs: u64,
    /// Manifests rolled forward to their newest checksum-valid version
    /// by recovery (a losing replica was healed in place).
    pub recovery_manifests_rolled: u64,
    /// Leftover staging `*.tmp` files swept by recovery/scrub.
    pub recovery_tmp_swept: u64,
    /// Orphaned generation files (unreferenced by any manifest) deleted
    /// by recovery.
    pub recovery_orphans_deleted: u64,
    /// Manifest replicas healed in place by generation resolution.
    pub recovery_replicas_healed: u64,
    /// Replica reads served per datanode (routing's "served" signal).
    pub node_reads: [u64; MAX_TRACKED_NODES],
    /// Replica probes currently executing per datanode (gauge; routing's
    /// primary load signal).
    pub node_in_flight: [u64; MAX_TRACKED_NODES],
    /// Replica probes that found the copy missing, per datanode.
    pub node_probe_missing: [u64; MAX_TRACKED_NODES],
    /// Replica probes rejected by checksum verification, per datanode.
    pub node_probe_corrupt: [u64; MAX_TRACKED_NODES],
    /// Replica probes skipped because the node was killed, per datanode.
    pub node_probe_dead: [u64; MAX_TRACKED_NODES],
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format,
    /// optionally merging per-span aggregates from a
    /// [`Tracer`](tardis_obs::Tracer) into the same dump.
    pub fn prometheus_text(&self, spans: Option<&[tardis_obs::SpanAggregate]>) -> String {
        let mut p = tardis_obs::PromText::new();
        p.counter("tardis_blocks_read", "Blocks read from the DFS.", self.blocks_read);
        p.counter("tardis_bytes_read", "Bytes read from the DFS.", self.bytes_read);
        p.counter(
            "tardis_blocks_written",
            "Blocks written to the DFS.",
            self.blocks_written,
        );
        p.counter(
            "tardis_bytes_written",
            "Bytes written to the DFS.",
            self.bytes_written,
        );
        p.counter(
            "tardis_shuffled_records",
            "Records moved through shuffles.",
            self.shuffled_records,
        );
        p.counter(
            "tardis_tasks_run",
            "Tasks executed by the worker pool.",
            self.tasks_run,
        );
        p.counter(
            "tardis_broadcast_bytes",
            "Bytes handed to broadcasts.",
            self.broadcast_bytes,
        );
        p.counter(
            "tardis_cache_hits",
            "Block reads served from the LRU cache.",
            self.cache_hits,
        );
        p.counter(
            "tardis_cache_misses",
            "Block reads that missed the LRU cache.",
            self.cache_misses,
        );
        p.counter(
            "tardis_faults_injected",
            "Faults deliberately injected by a seeded fault plan.",
            self.faults_injected,
        );
        p.counter(
            "tardis_task_retries",
            "Worker-pool tasks retried after a transient failure.",
            self.task_retries,
        );
        p.counter(
            "tardis_block_read_retries",
            "DFS block reads retried after a transient failure.",
            self.block_read_retries,
        );
        p.counter(
            "tardis_block_write_retries",
            "DFS block writes retried after a transient failure.",
            self.block_write_retries,
        );
        p.counter(
            "tardis_tasks_failed_permanently",
            "Tasks that exhausted their retry budget.",
            self.tasks_failed_permanently,
        );
        p.counter(
            "tardis_replica_failovers",
            "Block reads served after one or more replica failures.",
            self.replica_failovers,
        );
        p.counter(
            "tardis_checksum_failures",
            "Replica reads rejected by checksum verification.",
            self.checksum_failures,
        );
        p.counter(
            "tardis_scrub_repairs",
            "Replicas re-replicated by scrub passes.",
            self.scrub_repairs,
        );
        p.counter(
            "tardis_partitions_skipped_degraded",
            "Partition loads skipped by best-effort degraded serving.",
            self.partitions_skipped,
        );
        p.counter(
            "tardis_tasks_stolen",
            "Pool tasks claimed from another worker's deque.",
            self.tasks_stolen,
        );
        p.counter(
            "tardis_queries_served",
            "Queries the server answered.",
            self.queries_served,
        );
        p.counter(
            "tardis_queries_shed",
            "Queries the server shed at admission.",
            self.queries_shed,
        );
        p.gauge(
            "tardis_queue_depth",
            "Queries waiting in the server's admission queue.",
            self.queue_depth,
        );
        p.gauge(
            "tardis_queries_in_flight",
            "Queries currently executing in the server.",
            self.queries_in_flight,
        );
        p.counter(
            "tardis_partition_failures",
            "Permanent partition-storage failures.",
            self.partition_failures,
        );
        p.counter(
            "tardis_partitions_unavailable",
            "Partitions currently quarantined as unavailable.",
            self.partitions_unavailable,
        );
        p.counter(
            "tardis_replicas_added",
            "Replica copies created by capacity top-ups.",
            self.replicas_added,
        );
        p.counter(
            "tardis_rereplications",
            "Files re-replicated by the hot-partition balancer.",
            self.rereplications,
        );
        p.gauge(
            "tardis_hot_partitions",
            "Partitions currently classified as hot.",
            self.hot_partitions,
        );
        p.counter(
            "tardis_records_ingested",
            "Records accepted by the continuous-ingest path.",
            self.records_ingested,
        );
        p.counter(
            "tardis_deltas_sealed",
            "Sealed delta partitions written by ingest batches.",
            self.deltas_sealed,
        );
        p.counter(
            "tardis_compactions",
            "Compaction passes that folded deltas into the base.",
            self.compactions,
        );
        p.counter(
            "tardis_compaction_records_folded",
            "Records folded from deltas into the base by compaction.",
            self.compaction_records_folded,
        );
        p.gauge(
            "tardis_deltas_active",
            "Sealed deltas currently awaiting compaction.",
            self.deltas_active,
        );
        p.counter(
            "tardis_crashes_injected",
            "Crashes deliberately injected at armed crash points.",
            self.crashes_injected,
        );
        p.counter(
            "tardis_recovery_runs",
            "Startup recovery (fsck) passes run over the store.",
            self.recovery_runs,
        );
        p.counter(
            "tardis_recovery_manifests_rolled",
            "Manifests rolled forward to their newest valid version by recovery.",
            self.recovery_manifests_rolled,
        );
        p.counter(
            "tardis_recovery_tmp_swept",
            "Leftover staging *.tmp files swept by recovery/scrub.",
            self.recovery_tmp_swept,
        );
        p.counter(
            "tardis_recovery_orphans_deleted",
            "Orphaned generation files deleted by recovery.",
            self.recovery_orphans_deleted,
        );
        p.counter(
            "tardis_recovery_replicas_healed",
            "Manifest replicas healed in place by generation resolution.",
            self.recovery_replicas_healed,
        );
        // Only meaningful in binaries that install `tardis_obs::PeakAlloc`
        // as the global allocator; elsewhere the probe reads 0 and the
        // gauge is omitted rather than reported as a misleading zero.
        let peak = tardis_obs::peak::peak_bytes();
        if peak > 0 {
            p.gauge(
                "tardis_build_peak_bytes",
                "Peak live heap bytes since the last reset (tracking allocator installed).",
                peak,
            );
        }
        // Per-node replica health: only nodes with any activity are
        // emitted, so small stores keep the dump compact.
        for node in 0..MAX_TRACKED_NODES {
            let active = self.node_reads[node]
                | self.node_in_flight[node]
                | self.node_probe_missing[node]
                | self.node_probe_corrupt[node]
                | self.node_probe_dead[node];
            if active == 0 {
                continue;
            }
            let label = node.to_string();
            p.labeled_counter(
                "tardis_node_reads_total",
                "Replica reads served per datanode.",
                "node",
                &label,
                self.node_reads[node],
            );
            p.labeled_gauge(
                "tardis_node_in_flight",
                "Replica probes currently executing per datanode.",
                "node",
                &label,
                self.node_in_flight[node],
            );
            p.labeled_counter(
                "tardis_node_probe_missing_total",
                "Replica probes that found the copy missing, per datanode.",
                "node",
                &label,
                self.node_probe_missing[node],
            );
            p.labeled_counter(
                "tardis_node_probe_corrupt_total",
                "Replica probes rejected by checksum, per datanode.",
                "node",
                &label,
                self.node_probe_corrupt[node],
            );
            p.labeled_counter(
                "tardis_node_probe_dead_total",
                "Replica probes skipped on a killed datanode.",
                "node",
                &label,
                self.node_probe_dead[node],
            );
        }
        if let Some(aggregates) = spans {
            p.spans(aggregates);
        }
        p.finish()
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            blocks_read: self.blocks_read.saturating_sub(earlier.blocks_read),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            blocks_written: self.blocks_written.saturating_sub(earlier.blocks_written),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            shuffled_records: self
                .shuffled_records
                .saturating_sub(earlier.shuffled_records),
            tasks_run: self.tasks_run.saturating_sub(earlier.tasks_run),
            broadcast_bytes: self.broadcast_bytes.saturating_sub(earlier.broadcast_bytes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
            task_retries: self.task_retries.saturating_sub(earlier.task_retries),
            block_read_retries: self
                .block_read_retries
                .saturating_sub(earlier.block_read_retries),
            block_write_retries: self
                .block_write_retries
                .saturating_sub(earlier.block_write_retries),
            tasks_failed_permanently: self
                .tasks_failed_permanently
                .saturating_sub(earlier.tasks_failed_permanently),
            replica_failovers: self
                .replica_failovers
                .saturating_sub(earlier.replica_failovers),
            checksum_failures: self
                .checksum_failures
                .saturating_sub(earlier.checksum_failures),
            scrub_repairs: self.scrub_repairs.saturating_sub(earlier.scrub_repairs),
            partitions_skipped: self
                .partitions_skipped
                .saturating_sub(earlier.partitions_skipped),
            tasks_stolen: self.tasks_stolen.saturating_sub(earlier.tasks_stolen),
            queries_served: self.queries_served.saturating_sub(earlier.queries_served),
            queries_shed: self.queries_shed.saturating_sub(earlier.queries_shed),
            // Scheduler occupancy is a gauge pair: deltas keep current
            // values, same as the quarantine count below.
            queue_depth: self.queue_depth,
            queries_in_flight: self.queries_in_flight,
            partition_failures: self
                .partition_failures
                .saturating_sub(earlier.partition_failures),
            // A quarantine count is a gauge, not a monotone counter: the
            // delta keeps the current value.
            partitions_unavailable: self.partitions_unavailable,
            replicas_added: self.replicas_added.saturating_sub(earlier.replicas_added),
            rereplications: self.rereplications.saturating_sub(earlier.rereplications),
            hot_partitions: self.hot_partitions,
            records_ingested: self
                .records_ingested
                .saturating_sub(earlier.records_ingested),
            deltas_sealed: self.deltas_sealed.saturating_sub(earlier.deltas_sealed),
            compactions: self.compactions.saturating_sub(earlier.compactions),
            compaction_records_folded: self
                .compaction_records_folded
                .saturating_sub(earlier.compaction_records_folded),
            // The live-delta count is a gauge: keep the current value.
            deltas_active: self.deltas_active,
            crashes_injected: self
                .crashes_injected
                .saturating_sub(earlier.crashes_injected),
            recovery_runs: self.recovery_runs.saturating_sub(earlier.recovery_runs),
            recovery_manifests_rolled: self
                .recovery_manifests_rolled
                .saturating_sub(earlier.recovery_manifests_rolled),
            recovery_tmp_swept: self
                .recovery_tmp_swept
                .saturating_sub(earlier.recovery_tmp_swept),
            recovery_orphans_deleted: self
                .recovery_orphans_deleted
                .saturating_sub(earlier.recovery_orphans_deleted),
            recovery_replicas_healed: self
                .recovery_replicas_healed
                .saturating_sub(earlier.recovery_replicas_healed),
            node_reads: delta_nodes(&self.node_reads, &earlier.node_reads),
            // Per-node in-flight is a gauge: keep the current values.
            node_in_flight: self.node_in_flight,
            node_probe_missing: delta_nodes(&self.node_probe_missing, &earlier.node_probe_missing),
            node_probe_corrupt: delta_nodes(&self.node_probe_corrupt, &earlier.node_probe_corrupt),
            node_probe_dead: delta_nodes(&self.node_probe_dead, &earlier.node_probe_dead),
        }
    }
}

/// Element-wise saturating difference of per-node counter arrays.
fn delta_nodes(
    now: &[u64; MAX_TRACKED_NODES],
    earlier: &[u64; MAX_TRACKED_NODES],
) -> [u64; MAX_TRACKED_NODES] {
    std::array::from_fn(|i| now[i].saturating_sub(earlier[i]))
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records a block read of `bytes` bytes.
    pub fn record_block_read(&self, bytes: u64) {
        self.blocks_read.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a block write of `bytes` bytes.
    pub fn record_block_write(&self, bytes: u64) {
        self.blocks_written.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `n` records passing through a shuffle.
    pub fn record_shuffle(&self, n: u64) {
        self.shuffled_records.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a completed task.
    pub fn record_task(&self) {
        self.tasks_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a broadcast of `bytes` bytes.
    pub fn record_broadcast(&self, bytes: u64) {
        self.broadcast_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a block read served from the cache.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a block read that missed the cache.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one injected fault.
    pub fn record_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one task retry.
    pub fn record_task_retry(&self) {
        self.task_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one block-read retry.
    pub fn record_block_read_retry(&self) {
        self.block_read_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one block-write retry.
    pub fn record_block_write_retry(&self) {
        self.block_write_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a task that failed after exhausting its retries.
    pub fn record_task_failed_permanently(&self) {
        self.tasks_failed_permanently.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a block read that succeeded only after skipping one or
    /// more dead/corrupt replicas.
    pub fn record_replica_failover(&self) {
        self.replica_failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a replica read rejected by checksum/header verification.
    pub fn record_checksum_failure(&self) {
        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` replicas re-replicated by a scrub pass.
    pub fn record_scrub_repairs(&self, n: u64) {
        self.scrub_repairs.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a partition load skipped by best-effort degraded serving.
    pub fn record_partition_skipped(&self) {
        self.partitions_skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a pool task claimed from another worker's deque.
    pub fn record_task_steal(&self) {
        self.tasks_stolen.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query the server answered.
    pub fn record_query_served(&self) {
        self.queries_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query the server shed at admission.
    pub fn record_query_shed(&self) {
        self.queries_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the admission-queue depth gauge.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Sets the executing-queries gauge.
    pub fn set_queries_in_flight(&self, n: u64) {
        self.queries_in_flight.store(n, Ordering::Relaxed);
    }

    /// Records `n` replica copies created by a capacity top-up.
    pub fn record_replicas_added(&self, n: u64) {
        self.replicas_added.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one file re-replicated by the hot-partition balancer.
    pub fn record_rereplication(&self) {
        self.rereplications.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the hot-partition-count gauge.
    pub fn set_hot_partitions(&self, n: u64) {
        self.hot_partitions.store(n, Ordering::Relaxed);
    }

    /// Records `n` records accepted by the continuous-ingest path.
    pub fn record_ingest(&self, n: u64) {
        self.records_ingested.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one sealed delta partition written by an ingest batch.
    pub fn record_delta_sealed(&self) {
        self.deltas_sealed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a compaction pass that folded `folded` delta records.
    pub fn record_compaction(&self, folded: u64) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.compaction_records_folded
            .fetch_add(folded, Ordering::Relaxed);
    }

    /// Sets the live-delta-count gauge.
    pub fn set_deltas_active(&self, n: u64) {
        self.deltas_active.store(n, Ordering::Relaxed);
    }

    /// Records one crash fired at an armed crash point.
    pub fn record_crash_injected(&self) {
        self.crashes_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one startup recovery (fsck) pass that deleted
    /// `orphans_deleted` unreferenced generation files. Manifest
    /// resolution and tmp sweeps are metered at their own choke points
    /// ([`Self::record_manifest_resolution`], [`Self::record_tmp_swept`])
    /// because they also run outside full recovery passes.
    pub fn record_recovery_run(&self, orphans_deleted: u64) {
        self.recovery_runs.fetch_add(1, Ordering::Relaxed);
        self.recovery_orphans_deleted
            .fetch_add(orphans_deleted, Ordering::Relaxed);
    }

    /// Records one manifest generation resolution: `rolled` when
    /// replicas held diverging versions (the newest valid one won), and
    /// `replicas_healed` losing/missing replicas rewritten in place.
    pub fn record_manifest_resolution(&self, rolled: bool, replicas_healed: u64) {
        if rolled {
            self.recovery_manifests_rolled.fetch_add(1, Ordering::Relaxed);
        }
        self.recovery_replicas_healed
            .fetch_add(replicas_healed, Ordering::Relaxed);
    }

    /// Records `n` leftover staging `*.tmp` files swept by a
    /// scrub/recovery pass.
    pub fn record_tmp_swept(&self, n: u64) {
        self.recovery_tmp_swept.fetch_add(n, Ordering::Relaxed);
    }

    /// Marks a replica probe beginning on datanode `node` (raises the
    /// node's in-flight gauge so concurrent routers see queued demand).
    pub fn node_read_begin(&self, node: u32) {
        if let Some(slot) = self.node_in_flight.get(node as usize) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Marks a replica probe ending on datanode `node`; `served` is true
    /// when the node returned frame bytes (even bytes a later checksum
    /// rejects — the node did the work either way).
    pub fn node_read_end(&self, node: u32, served: bool) {
        if let Some(slot) = self.node_in_flight.get(node as usize) {
            slot.fetch_sub(1, Ordering::Relaxed);
        }
        if served {
            if let Some(slot) = self.node_reads.get(node as usize) {
                slot.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records a replica probe that found the copy missing on `node`.
    pub fn record_node_probe_missing(&self, node: u32) {
        if let Some(slot) = self.node_probe_missing.get(node as usize) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a replica probe on `node` rejected by checksum.
    pub fn record_node_probe_corrupt(&self, node: u32) {
        if let Some(slot) = self.node_probe_corrupt.get(node as usize) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a replica probe skipped because `node` is killed.
    pub fn record_node_probe_dead(&self, node: u32) {
        if let Some(slot) = self.node_probe_dead.get(node as usize) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Routing's load signal for datanode `node`: `(in_flight, served)`.
    /// Untracked nodes (beyond [`MAX_TRACKED_NODES`]) read as idle.
    pub fn node_load(&self, node: u32) -> (u64, u64) {
        match (
            self.node_in_flight.get(node as usize),
            self.node_reads.get(node as usize),
        ) {
            (Some(inflight), Some(reads)) => (
                inflight.load(Ordering::Relaxed),
                reads.load(Ordering::Relaxed),
            ),
            _ => (0, 0),
        }
    }

    /// Records one access (physical load) of partition `pid`, feeding
    /// the server's hot-set detector.
    pub fn record_partition_access(&self, pid: u32) {
        *self.partition_health.lock().accesses.entry(pid).or_insert(0) += 1;
    }

    /// Cumulative per-partition access counts, ascending by partition.
    pub fn partition_accesses(&self) -> Vec<(u32, u64)> {
        self.partition_health
            .lock()
            .accesses
            .iter()
            .map(|(&p, &n)| (p, n))
            .collect()
    }

    /// Records a permanent storage failure of partition `pid`; returns
    /// the partition's accumulated failure count.
    pub fn record_partition_failure(&self, pid: u32) -> u64 {
        let mut health = self.partition_health.lock();
        let slot = health.failures.entry(pid).or_insert(0);
        *slot += 1;
        *slot
    }

    /// Quarantines partition `pid` as unavailable (idempotent).
    pub fn mark_partition_unavailable(&self, pid: u32) {
        self.partition_health.lock().unavailable.insert(pid);
    }

    /// Whether partition `pid` is still serving (not quarantined).
    pub fn partition_available(&self, pid: u32) -> bool {
        !self.partition_health.lock().unavailable.contains(&pid)
    }

    /// Quarantined partitions, ascending.
    pub fn unavailable_partitions(&self) -> Vec<u32> {
        self.partition_health
            .lock()
            .unavailable
            .iter()
            .copied()
            .collect()
    }

    /// Per-partition permanent-failure counts, ascending by partition.
    pub fn partition_failures(&self) -> Vec<(u32, u64)> {
        self.partition_health
            .lock()
            .failures
            .iter()
            .map(|(&p, &n)| (p, n))
            .collect()
    }

    /// Takes a consistent-enough snapshot (relaxed loads; counters are
    /// monotone so deltas remain meaningful).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            shuffled_records: self.shuffled_records.load(Ordering::Relaxed),
            tasks_run: self.tasks_run.load(Ordering::Relaxed),
            broadcast_bytes: self.broadcast_bytes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            block_read_retries: self.block_read_retries.load(Ordering::Relaxed),
            block_write_retries: self.block_write_retries.load(Ordering::Relaxed),
            tasks_failed_permanently: self.tasks_failed_permanently.load(Ordering::Relaxed),
            replica_failovers: self.replica_failovers.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            scrub_repairs: self.scrub_repairs.load(Ordering::Relaxed),
            partitions_skipped: self.partitions_skipped.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            queries_served: self.queries_served.load(Ordering::Relaxed),
            queries_shed: self.queries_shed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queries_in_flight: self.queries_in_flight.load(Ordering::Relaxed),
            replicas_added: self.replicas_added.load(Ordering::Relaxed),
            rereplications: self.rereplications.load(Ordering::Relaxed),
            hot_partitions: self.hot_partitions.load(Ordering::Relaxed),
            records_ingested: self.records_ingested.load(Ordering::Relaxed),
            deltas_sealed: self.deltas_sealed.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            compaction_records_folded: self.compaction_records_folded.load(Ordering::Relaxed),
            deltas_active: self.deltas_active.load(Ordering::Relaxed),
            crashes_injected: self.crashes_injected.load(Ordering::Relaxed),
            recovery_runs: self.recovery_runs.load(Ordering::Relaxed),
            recovery_manifests_rolled: self.recovery_manifests_rolled.load(Ordering::Relaxed),
            recovery_tmp_swept: self.recovery_tmp_swept.load(Ordering::Relaxed),
            recovery_orphans_deleted: self.recovery_orphans_deleted.load(Ordering::Relaxed),
            recovery_replicas_healed: self.recovery_replicas_healed.load(Ordering::Relaxed),
            node_reads: load_nodes(&self.node_reads),
            node_in_flight: load_nodes(&self.node_in_flight),
            node_probe_missing: load_nodes(&self.node_probe_missing),
            node_probe_corrupt: load_nodes(&self.node_probe_corrupt),
            node_probe_dead: load_nodes(&self.node_probe_dead),
            partition_failures: {
                let health = self.partition_health.lock();
                health.failures.values().sum()
            },
            partitions_unavailable: self.partition_health.lock().unavailable.len() as u64,
        }
    }

    /// Resets the degraded-serving state added by replication: failure
    /// accounting, quarantine set, and the associated counters.
    fn reset_partition_health(&self) {
        let mut health = self.partition_health.lock();
        health.failures.clear();
        health.unavailable.clear();
        health.accesses.clear();
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.blocks_read.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.blocks_written.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.shuffled_records.store(0, Ordering::Relaxed);
        self.tasks_run.store(0, Ordering::Relaxed);
        self.broadcast_bytes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.faults_injected.store(0, Ordering::Relaxed);
        self.task_retries.store(0, Ordering::Relaxed);
        self.block_read_retries.store(0, Ordering::Relaxed);
        self.block_write_retries.store(0, Ordering::Relaxed);
        self.tasks_failed_permanently.store(0, Ordering::Relaxed);
        self.replica_failovers.store(0, Ordering::Relaxed);
        self.checksum_failures.store(0, Ordering::Relaxed);
        self.scrub_repairs.store(0, Ordering::Relaxed);
        self.partitions_skipped.store(0, Ordering::Relaxed);
        self.tasks_stolen.store(0, Ordering::Relaxed);
        self.queries_served.store(0, Ordering::Relaxed);
        self.queries_shed.store(0, Ordering::Relaxed);
        self.queue_depth.store(0, Ordering::Relaxed);
        self.queries_in_flight.store(0, Ordering::Relaxed);
        self.replicas_added.store(0, Ordering::Relaxed);
        self.rereplications.store(0, Ordering::Relaxed);
        self.hot_partitions.store(0, Ordering::Relaxed);
        self.records_ingested.store(0, Ordering::Relaxed);
        self.deltas_sealed.store(0, Ordering::Relaxed);
        self.compactions.store(0, Ordering::Relaxed);
        self.compaction_records_folded.store(0, Ordering::Relaxed);
        self.deltas_active.store(0, Ordering::Relaxed);
        self.crashes_injected.store(0, Ordering::Relaxed);
        self.recovery_runs.store(0, Ordering::Relaxed);
        self.recovery_manifests_rolled.store(0, Ordering::Relaxed);
        self.recovery_tmp_swept.store(0, Ordering::Relaxed);
        self.recovery_orphans_deleted.store(0, Ordering::Relaxed);
        self.recovery_replicas_healed.store(0, Ordering::Relaxed);
        for node in 0..MAX_TRACKED_NODES {
            self.node_reads[node].store(0, Ordering::Relaxed);
            self.node_in_flight[node].store(0, Ordering::Relaxed);
            self.node_probe_missing[node].store(0, Ordering::Relaxed);
            self.node_probe_corrupt[node].store(0, Ordering::Relaxed);
            self.node_probe_dead[node].store(0, Ordering::Relaxed);
        }
        self.reset_partition_health();
    }
}

/// Relaxed element-wise load of a per-node counter array.
fn load_nodes(nodes: &[AtomicU64; MAX_TRACKED_NODES]) -> [u64; MAX_TRACKED_NODES] {
    std::array::from_fn(|i| nodes[i].load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.record_block_read(100);
        m.record_block_read(50);
        m.record_block_write(10);
        m.record_shuffle(7);
        m.record_task();
        m.record_broadcast(5);
        let s = m.snapshot();
        assert_eq!(s.blocks_read, 2);
        assert_eq!(s.bytes_read, 150);
        assert_eq!(s.blocks_written, 1);
        assert_eq!(s.bytes_written, 10);
        assert_eq!(s.shuffled_records, 7);
        assert_eq!(s.tasks_run, 1);
        assert_eq!(s.broadcast_bytes, 5);
    }

    #[test]
    fn delta_since() {
        let m = Metrics::new();
        m.record_block_read(10);
        let before = m.snapshot();
        m.record_block_read(5);
        m.record_task();
        let after = m.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.blocks_read, 1);
        assert_eq!(d.bytes_read, 5);
        assert_eq!(d.tasks_run, 1);
        assert_eq!(d.blocks_written, 0);
    }

    #[test]
    fn reset_zeroes() {
        let m = Metrics::new();
        m.record_block_read(10);
        m.record_fault_injected();
        m.record_task_retry();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn fault_counters_accumulate() {
        let m = Metrics::new();
        m.record_fault_injected();
        m.record_fault_injected();
        m.record_task_retry();
        m.record_block_read_retry();
        m.record_block_write_retry();
        m.record_task_failed_permanently();
        let s = m.snapshot();
        assert_eq!(s.faults_injected, 2);
        assert_eq!(s.task_retries, 1);
        assert_eq!(s.block_read_retries, 1);
        assert_eq!(s.block_write_retries, 1);
        assert_eq!(s.tasks_failed_permanently, 1);
    }

    #[test]
    fn prometheus_text_carries_fault_and_span_counters() {
        let m = Metrics::new();
        m.record_fault_injected();
        m.record_task_retry();
        m.record_task_retry();
        let tracer = tardis_obs::Tracer::new();
        {
            let _route = tracer.root("route");
        }
        let text = m.snapshot().prometheus_text(Some(&tracer.aggregates()));
        assert!(text.contains("tardis_faults_injected 1"));
        assert!(text.contains("tardis_task_retries 2"));
        assert!(text.contains("# TYPE tardis_task_retries counter"));
        assert!(text.contains("tardis_span_count{span=\"route\"} 1"));
        // Without span aggregates the dump still carries every counter.
        let plain = m.snapshot().prometheus_text(None);
        assert!(plain.contains("tardis_blocks_read 0"));
        assert!(!plain.contains("tardis_span_count"));
    }

    #[test]
    fn partition_health_accounting_and_quarantine() {
        let m = Metrics::new();
        assert!(m.partition_available(3));
        assert_eq!(m.record_partition_failure(3), 1);
        assert_eq!(m.record_partition_failure(3), 2);
        assert_eq!(m.record_partition_failure(7), 1);
        m.mark_partition_unavailable(3);
        m.mark_partition_unavailable(3); // idempotent
        assert!(!m.partition_available(3));
        assert!(m.partition_available(7));
        assert_eq!(m.unavailable_partitions(), vec![3]);
        assert_eq!(m.partition_failures(), vec![(3, 2), (7, 1)]);
        m.record_replica_failover();
        m.record_checksum_failure();
        m.record_scrub_repairs(4);
        m.record_partition_skipped();
        let s = m.snapshot();
        assert_eq!(s.partition_failures, 3);
        assert_eq!(s.partitions_unavailable, 1);
        assert_eq!(s.replica_failovers, 1);
        assert_eq!(s.checksum_failures, 1);
        assert_eq!(s.scrub_repairs, 4);
        assert_eq!(s.partitions_skipped, 1);
        let text = s.prometheus_text(None);
        assert!(text.contains("tardis_replica_failovers 1"));
        assert!(text.contains("tardis_checksum_failures 1"));
        assert!(text.contains("tardis_scrub_repairs 4"));
        assert!(text.contains("tardis_partitions_skipped_degraded 1"));
        assert!(text.contains("tardis_partitions_unavailable 1"));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert!(m.partition_available(3));
    }

    #[test]
    fn scheduler_counters_and_gauges() {
        let m = Metrics::new();
        m.record_task_steal();
        m.record_query_served();
        m.record_query_served();
        m.record_query_shed();
        m.set_queue_depth(3);
        m.set_queries_in_flight(2);
        let before = m.snapshot();
        assert_eq!(before.tasks_stolen, 1);
        assert_eq!(before.queries_served, 2);
        assert_eq!(before.queries_shed, 1);
        assert_eq!(before.queue_depth, 3);
        assert_eq!(before.queries_in_flight, 2);
        // Deltas: counters subtract, gauges keep their current value.
        m.record_query_served();
        m.set_queue_depth(1);
        let d = m.snapshot().delta_since(&before);
        assert_eq!(d.queries_served, 1);
        assert_eq!(d.tasks_stolen, 0);
        assert_eq!(d.queue_depth, 1);
        assert_eq!(d.queries_in_flight, 2);
        let text = m.snapshot().prometheus_text(None);
        assert!(text.contains("tardis_tasks_stolen 1"));
        assert!(text.contains("tardis_queries_served 3"));
        assert!(text.contains("tardis_queries_shed 1"));
        assert!(text.contains("# TYPE tardis_queue_depth gauge"));
        assert!(text.contains("tardis_queries_in_flight 2"));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn node_counters_track_probes_and_export_labels() {
        let m = Metrics::new();
        m.node_read_begin(1);
        assert_eq!(m.node_load(1), (1, 0));
        m.node_read_end(1, true);
        assert_eq!(m.node_load(1), (0, 1));
        m.node_read_begin(2);
        m.node_read_end(2, false); // probe ended without serving bytes
        m.record_node_probe_missing(0);
        m.record_node_probe_corrupt(2);
        m.record_node_probe_dead(1);
        // Out-of-range nodes are silently untracked.
        m.node_read_begin(MAX_TRACKED_NODES as u32 + 3);
        m.node_read_end(MAX_TRACKED_NODES as u32 + 3, true);
        assert_eq!(m.node_load(MAX_TRACKED_NODES as u32 + 3), (0, 0));
        let s = m.snapshot();
        assert_eq!(s.node_reads[1], 1);
        assert_eq!(s.node_reads[2], 0);
        assert_eq!(s.node_probe_missing[0], 1);
        assert_eq!(s.node_probe_corrupt[2], 1);
        assert_eq!(s.node_probe_dead[1], 1);
        let text = s.prometheus_text(None);
        assert!(text.contains("tardis_node_reads_total{node=\"1\"} 1"));
        assert!(text.contains("tardis_node_probe_missing_total{node=\"0\"} 1"));
        assert!(text.contains("tardis_node_probe_corrupt_total{node=\"2\"} 1"));
        assert!(text.contains("tardis_node_probe_dead_total{node=\"1\"} 1"));
        assert!(text.contains("# TYPE tardis_node_in_flight gauge"));
        // Idle nodes stay out of the dump entirely.
        assert!(!text.contains("{node=\"5\"}"));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn rereplication_counters_and_partition_accesses() {
        let m = Metrics::new();
        m.record_partition_access(4);
        m.record_partition_access(4);
        m.record_partition_access(1);
        assert_eq!(m.partition_accesses(), vec![(1, 1), (4, 2)]);
        m.record_replicas_added(3);
        m.record_rereplication();
        m.set_hot_partitions(2);
        let before = m.snapshot();
        assert_eq!(before.replicas_added, 3);
        assert_eq!(before.rereplications, 1);
        assert_eq!(before.hot_partitions, 2);
        m.record_replicas_added(2);
        m.set_hot_partitions(1);
        let d = m.snapshot().delta_since(&before);
        assert_eq!(d.replicas_added, 2);
        assert_eq!(d.rereplications, 0);
        // Hot-set size is a gauge: the delta keeps the current value.
        assert_eq!(d.hot_partitions, 1);
        let text = m.snapshot().prometheus_text(None);
        assert!(text.contains("tardis_replicas_added 5"));
        assert!(text.contains("tardis_rereplications 1"));
        assert!(text.contains("tardis_hot_partitions 1"));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert!(m.partition_accesses().is_empty());
    }

    #[test]
    fn node_read_deltas_subtract_counters_and_keep_gauges() {
        let m = Metrics::new();
        m.node_read_begin(0);
        m.node_read_end(0, true);
        let before = m.snapshot();
        m.node_read_begin(0);
        m.node_read_end(0, true);
        m.node_read_begin(3);
        let d = m.snapshot().delta_since(&before);
        assert_eq!(d.node_reads[0], 1);
        assert_eq!(d.node_in_flight[3], 1);
        m.node_read_end(3, false);
    }

    #[test]
    fn ingest_and_compaction_counters() {
        let m = Metrics::new();
        m.record_ingest(100);
        m.record_ingest(50);
        m.record_delta_sealed();
        m.record_delta_sealed();
        m.set_deltas_active(2);
        m.record_compaction(150);
        let before = m.snapshot();
        assert_eq!(before.records_ingested, 150);
        assert_eq!(before.deltas_sealed, 2);
        assert_eq!(before.compactions, 1);
        assert_eq!(before.compaction_records_folded, 150);
        assert_eq!(before.deltas_active, 2);
        m.record_ingest(10);
        m.set_deltas_active(0);
        let d = m.snapshot().delta_since(&before);
        assert_eq!(d.records_ingested, 10);
        assert_eq!(d.compactions, 0);
        // The live-delta count is a gauge: the delta keeps the value.
        assert_eq!(d.deltas_active, 0);
        let text = m.snapshot().prometheus_text(None);
        assert!(text.contains("tardis_records_ingested 160"));
        assert!(text.contains("tardis_deltas_sealed 2"));
        assert!(text.contains("tardis_compactions 1"));
        assert!(text.contains("tardis_compaction_records_folded 150"));
        assert!(text.contains("# TYPE tardis_deltas_active gauge"));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn crash_and_recovery_counters() {
        let m = Metrics::new();
        m.record_crash_injected();
        m.record_recovery_run(3);
        m.record_manifest_resolution(true, 4);
        m.record_tmp_swept(2);
        let before = m.snapshot();
        assert_eq!(before.crashes_injected, 1);
        assert_eq!(before.recovery_runs, 1);
        assert_eq!(before.recovery_manifests_rolled, 1);
        assert_eq!(before.recovery_tmp_swept, 2);
        assert_eq!(before.recovery_orphans_deleted, 3);
        assert_eq!(before.recovery_replicas_healed, 4);
        m.record_manifest_resolution(false, 0);
        m.record_recovery_run(1);
        let d = m.snapshot().delta_since(&before);
        assert_eq!(d.recovery_runs, 1);
        assert_eq!(d.recovery_orphans_deleted, 1);
        assert_eq!(d.recovery_tmp_swept, 0);
        let text = m.snapshot().prometheus_text(None);
        assert!(text.contains("tardis_crashes_injected 1"));
        assert!(text.contains("tardis_recovery_runs 2"));
        assert!(text.contains("tardis_recovery_manifests_rolled 1"));
        assert!(text.contains("tardis_recovery_tmp_swept 2"));
        assert!(text.contains("tardis_recovery_orphans_deleted 4"));
        assert!(text.contains("tardis_recovery_replicas_healed 4"));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn concurrent_updates_are_counted() {
        let m = std::sync::Arc::new(Metrics::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = std::sync::Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record_task();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().tasks_run, 8000);
    }
}
