//! Deterministic fault injection and retry policy.
//!
//! TARDIS phrases index construction as Spark jobs, and Spark's execution
//! model assumes tasks and block reads fail and are retried; Odyssey
//! likewise treats node/task failure as a first-class concern of
//! distributed series indexing. This module gives the in-process
//! substrate the same failure semantics, *deterministically*: every fault
//! decision is a pure function of `(plan seed, injection site, stable
//! key, attempt number)` — never of thread scheduling — so a seeded chaos
//! run is exactly reproducible and a faulted build must produce
//! byte-identical results to a fault-free one once retries mask the
//! faults.
//!
//! Injection sites:
//!
//! * [`FaultSite::BlockRead`] / [`FaultSite::BlockWrite`] — the DFS fails
//!   (or stalls, for reads) a block operation before touching disk,
//!   modelling a lost datanode connection.
//! * [`FaultSite::Task`] — the worker pool fails a task at dispatch,
//!   modelling an executor crash. Only the fallible `try_par_*` entry
//!   points inject task faults; the infallible `par_*` family stays pure
//!   computation.
//!
//! Recovery is governed by [`RetryPolicy`]: capped exponential backoff up
//! to `max_attempts`, after which the typed
//! [`ClusterError::RetriesExhausted`](crate::ClusterError::RetriesExhausted)
//! surfaces — never a panic, never a hang.

use crate::error::ClusterError;
use crate::metrics::Metrics;
use crate::rng::{hash_bytes, SplitMix64};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Every registered crash-point site, for suites that must prove they
/// exercised the whole catalogue. Sites are named `layer.operation.step`
/// and sit *between* the syscalls of a multi-step mutation; see
/// [`FaultInjector::crash_point`].
pub const CRASH_SITES: &[&str] = &[
    "dfs.write_block.replica",
    "dfs.replace.stage",
    "dfs.replace.rename",
    "dfs.scrub.repair",
    "core.ingest.seal",
    "core.compact.swap",
    "core.compact.retire",
];

/// One armed crash point: the `hit`-th arrival (1-based) at the named
/// site aborts the process-in-miniature — the mutation unwinds with
/// [`ClusterError::CrashInjected`], leaving whatever partial files the
/// real syscall sequence would leave behind on a `kill -9`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSpec {
    /// Registered site name (see [`CRASH_SITES`]).
    pub site: String,
    /// Which arrival at the site fires (1-based).
    pub hit: u64,
}

impl CrashSpec {
    /// Parses a `SITE:HIT` spec (e.g. `dfs.replace.rename:2`); a bare
    /// `SITE` means the first arrival.
    pub fn parse(s: &str) -> Option<CrashSpec> {
        let (site, hit) = match s.rsplit_once(':') {
            Some((site, hit)) => (site, hit.parse().ok()?),
            None => (s, 1),
        };
        if site.is_empty() || hit == 0 {
            return None;
        }
        Some(CrashSpec {
            site: site.to_string(),
            hit,
        })
    }
}

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A DFS block read.
    BlockRead,
    /// A DFS block write.
    BlockWrite,
    /// A worker-pool task (fallible `try_par_*` family).
    Task,
    /// Silent corruption of one stored block replica: a deterministic
    /// byte flip applied at write time, so the damage is *persistent*
    /// on disk until the replica is re-replicated by a scrub pass. The
    /// per-block checksum is computed before the flip, so reads detect
    /// the mismatch and fail over to a healthy replica.
    BlockCorrupt,
}

impl FaultSite {
    /// Stable per-site salt for decision hashing.
    fn salt(self) -> u64 {
        match self {
            FaultSite::BlockRead => 0x9E37_79B9_0000_0001,
            FaultSite::BlockWrite => 0x9E37_79B9_0000_0002,
            FaultSite::Task => 0x9E37_79B9_0000_0003,
            FaultSite::BlockCorrupt => 0x9E37_79B9_0000_0004,
        }
    }

    /// Human-readable site name (used in error messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::BlockRead => "block read",
            FaultSite::BlockWrite => "block write",
            FaultSite::Task => "task",
            FaultSite::BlockCorrupt => "block corrupt",
        }
    }
}

/// A seeded description of which faults to inject and how often.
///
/// Probabilities are per *attempt*: with `block_read_fail_p = 0.05` each
/// retry of the same block re-rolls an independent (but deterministic)
/// 5% decision, so the chance a read fails `max_attempts` times in a row
/// is `0.05^max_attempts`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Probability a block read fails.
    pub block_read_fail_p: f64,
    /// Probability a block write fails.
    pub block_write_fail_p: f64,
    /// Probability a task fails at dispatch.
    pub task_fail_p: f64,
    /// Probability a block read stalls for [`FaultPlan::stall`] first
    /// (independent of failing; models a slow datanode).
    pub block_read_stall_p: f64,
    /// Stall duration for slow reads.
    pub stall: Duration,
    /// Probability a stored *replica* is silently corrupted at write
    /// time ([`FaultSite::BlockCorrupt`]). The decision is keyed on
    /// `(block, replica)` — not on the attempt — so the corruption is
    /// persistent on disk, exactly what checksum verification and
    /// scrubbing exist to catch.
    pub block_corrupt_p: f64,
    /// When set, exactly one replica of *every* block (chosen by a
    /// seeded hash of the block key) is treated as dead on read: the
    /// worst single-replica loss pattern, which replication must mask
    /// completely without a single retry.
    pub kill_one_replica: bool,
    /// When set, every pool task whose *scheduling key* (e.g. partition
    /// id in the batch engine) equals `.0` sleeps for `.1` before its
    /// first attempt — a deterministic straggler for scheduler tests.
    /// Unlike `stall`, this is not a fault: nothing fails or retries,
    /// the task is simply slow.
    pub slow_task: Option<(u64, Duration)>,
    /// When set, every replica probe served by datanode `.0` takes an
    /// extra `.1` of service time (added to the store's simulated
    /// `read_latency`, inside the node's service slot). Not a fault —
    /// nothing fails or retries; the node is simply slow, which is
    /// exactly what replica-aware routing must learn to avoid.
    pub slow_node: Option<(u32, Duration)>,
    /// When set, the `hit`-th arrival at the named crash site aborts
    /// the mutation with [`ClusterError::CrashInjected`] — the
    /// deterministic `kill -9`. At most one crash fires per plan (the
    /// "process" is dead afterwards); recovery is a restart concern.
    pub crash_point: Option<CrashSpec>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            block_read_fail_p: 0.0,
            block_write_fail_p: 0.0,
            task_fail_p: 0.0,
            block_read_stall_p: 0.0,
            stall: Duration::ZERO,
            block_corrupt_p: 0.0,
            kill_one_replica: false,
            slow_task: None,
            slow_node: None,
            crash_point: None,
        }
    }
}

impl FaultPlan {
    /// A plan injecting nothing (identical to running without one).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Failure probability at one site.
    pub fn fail_p(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::BlockRead => self.block_read_fail_p,
            FaultSite::BlockWrite => self.block_write_fail_p,
            FaultSite::Task => self.task_fail_p,
            FaultSite::BlockCorrupt => self.block_corrupt_p,
        }
    }

    /// Validates probabilities.
    ///
    /// # Panics
    /// Panics when any probability is outside `[0, 1]`.
    pub fn assert_valid(&self) {
        for (name, p) in [
            ("block_read_fail_p", self.block_read_fail_p),
            ("block_write_fail_p", self.block_write_fail_p),
            ("task_fail_p", self.task_fail_p),
            ("block_read_stall_p", self.block_read_stall_p),
            ("block_corrupt_p", self.block_corrupt_p),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name}={p} outside [0, 1]");
        }
    }
}

/// A virtual backoff clock: accumulates would-be sleep time instead of
/// blocking the thread. Tests (and the chaos suite in particular) attach
/// one so retry backoff costs zero wall-clock while remaining auditable.
#[derive(Debug, Default)]
pub struct VirtualClock {
    slept_nanos: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Records a virtual sleep.
    pub fn advance(&self, d: Duration) {
        self.slept_nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Total virtual time slept so far.
    pub fn slept(&self) -> Duration {
        Duration::from_nanos(self.slept_nanos.load(Ordering::Relaxed))
    }
}

/// Where retry backoff sleeps go: the real thread clock, or a
/// [`VirtualClock`] that only accounts for the time (zero-delay mode).
#[derive(Debug, Clone, Default)]
pub enum BackoffClock {
    /// `std::thread::sleep` — production behaviour.
    #[default]
    Real,
    /// Accumulate the duration in the shared clock; never block.
    Virtual(Arc<VirtualClock>),
}

impl BackoffClock {
    /// Sleeps (really or virtually) for `d`.
    pub fn sleep(&self, d: Duration) {
        match self {
            BackoffClock::Real => {
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
            }
            BackoffClock::Virtual(clock) => clock.advance(d),
        }
    }
}

/// How transient failures are retried.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retries). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff.
    pub backoff_cap: Duration,
    /// Where the backoff sleeps go (real thread sleep by default; a
    /// [`VirtualClock`] makes every backoff free for tests).
    pub clock: BackoffClock,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            clock: BackoffClock::Real,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Routes this policy's backoff sleeps into `clock` instead of the
    /// real thread clock (builder style).
    pub fn with_virtual_clock(mut self, clock: Arc<VirtualClock>) -> RetryPolicy {
        self.clock = BackoffClock::Virtual(clock);
        self
    }

    /// Effective attempt budget (≥ 1).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Capped exponential backoff after failed attempt number `attempt`
    /// (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }

    /// Sleeps out the backoff for failed attempt `attempt` on this
    /// policy's [`BackoffClock`] — the single choke point every retry
    /// loop (DFS block I/O, pool task dispatch) goes through.
    pub fn sleep_backoff(&self, attempt: u32) {
        self.clock.sleep(self.backoff(attempt));
    }
}

/// The seeded fault oracle shared by the DFS and the worker pool.
///
/// Decisions are stateless: two injectors built from the same plan give
/// identical answers, and concurrent queries never perturb each other —
/// the property the chaos suite's byte-identical guarantee rests on. The
/// only mutable state is the task-epoch counter, which the driver
/// advances once per `try_par_*` stage (driver stages run sequentially,
/// so epochs are deterministic too).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    metrics: Arc<Metrics>,
    /// Per-stage namespace for task keys, so "task 3 of the shuffle" and
    /// "task 3 of the local build" roll independent faults.
    task_epoch: AtomicU64,
    /// Arrivals observed at each crash site so far (1-based when read
    /// back). Counting is the one place crash points are stateful: "the
    /// 3rd rename" is a position in an execution, not a hashable key.
    crash_counts: Mutex<HashMap<&'static str, u64>>,
}

impl FaultInjector {
    /// Creates an injector; injected faults are counted in `metrics`.
    ///
    /// # Panics
    /// Panics when the plan's probabilities are invalid.
    pub fn new(plan: FaultPlan, metrics: Arc<Metrics>) -> FaultInjector {
        plan.assert_valid();
        FaultInjector {
            plan,
            metrics,
            task_epoch: AtomicU64::new(0),
            crash_counts: Mutex::new(HashMap::new()),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Reserves a fresh task-key namespace for one `try_par_*` stage.
    pub fn next_task_epoch(&self) -> u64 {
        self.task_epoch.fetch_add(1, Ordering::Relaxed)
    }

    /// Injected delay for a task with scheduling key `key` (see
    /// [`FaultPlan::slow_task`]); `None` for tasks the plan leaves alone.
    pub fn task_delay(&self, key: u64) -> Option<Duration> {
        match self.plan.slow_task {
            Some((slow_key, delay)) if slow_key == key => Some(delay),
            _ => None,
        }
    }

    /// Injected extra service time for replica probes on datanode
    /// `node` (see [`FaultPlan::slow_node`]); `None` for healthy nodes.
    pub fn node_delay(&self, node: u32) -> Option<Duration> {
        match self.plan.slow_node {
            Some((slow, delay)) if slow == node && !delay.is_zero() => Some(delay),
            _ => None,
        }
    }

    /// Stable key for a DFS block.
    pub fn block_key(file: &str, index: u32) -> u64 {
        hash_bytes(file.as_bytes()) ^ SplitMix64::new(index as u64).next_u64()
    }

    /// Stable key for a pool task.
    pub fn task_key(epoch: u64, task_index: usize) -> u64 {
        SplitMix64::new(epoch.wrapping_mul(0x2545_F491_4F6C_DD1D)).next_u64()
            ^ (task_index as u64)
    }

    /// The deterministic unit-interval roll for one decision.
    fn roll(&self, site: FaultSite, key: u64, attempt: u32, salt2: u64) -> f64 {
        let mut mix = SplitMix64::new(self.plan.seed ^ site.salt() ^ salt2);
        let a = mix.next_u64() ^ key;
        let b = SplitMix64::new(a).next_u64() ^ (attempt as u64);
        SplitMix64::new(b).next_f64()
    }

    /// Decides whether attempt `attempt` of the operation identified by
    /// `(site, key)` fails; a returned error has already been counted in
    /// `faults_injected`.
    pub fn fault_for(&self, site: FaultSite, key: u64, attempt: u32) -> Option<ClusterError> {
        let p = self.plan.fail_p(site);
        if p <= 0.0 || self.roll(site, key, attempt, 0) >= p {
            return None;
        }
        self.metrics.record_fault_injected();
        Some(ClusterError::InjectedFault {
            site: site.name(),
            key,
            attempt,
        })
    }

    /// Sleeps for the plan's stall duration when this block-read attempt
    /// is chosen as "slow" (independent of failure injection).
    pub fn maybe_stall_read(&self, key: u64, attempt: u32) {
        let p = self.plan.block_read_stall_p;
        if p <= 0.0 || self.plan.stall.is_zero() {
            return;
        }
        if self.roll(FaultSite::BlockRead, key, attempt, 0xDEAD_BEEF) < p {
            std::thread::sleep(self.plan.stall);
        }
    }

    /// Under [`FaultPlan::kill_one_replica`], which replica of the block
    /// identified by `key` is dead (seed-chosen, stable for the run).
    /// `None` when the mode is off or there is nothing to fail over to.
    pub fn killed_replica(&self, key: u64, replication: u32) -> Option<u32> {
        if !self.plan.kill_one_replica || replication < 2 {
            return None;
        }
        let mix = SplitMix64::new(self.plan.seed ^ key ^ 0x9E37_79B9_0000_0005).next_u64();
        Some((mix % replication as u64) as u32)
    }

    /// A named crash point inside a multi-step mutation. Counts the
    /// arrival; when the plan arms this site and this is the armed
    /// arrival, returns [`ClusterError::CrashInjected`] — the caller
    /// propagates it *immediately*, unwinding with exactly the partial
    /// on-disk state the completed steps left behind, as a real
    /// `kill -9` at that syscall boundary would. The error is permanent
    /// (dead processes don't retry) and is counted in
    /// `crashes_injected`.
    ///
    /// # Errors
    /// [`ClusterError::CrashInjected`] when the armed crash fires.
    pub fn crash_point(&self, site: &'static str) -> Result<(), ClusterError> {
        let hit = {
            let mut counts = self.crash_counts.lock().expect("crash counter poisoned");
            let slot = counts.entry(site).or_insert(0);
            *slot += 1;
            *slot
        };
        match &self.plan.crash_point {
            Some(spec) if spec.site == site && spec.hit == hit => {
                self.metrics.record_crash_injected();
                Err(ClusterError::CrashInjected { site, hit })
            }
            _ => Ok(()),
        }
    }

    /// Arrivals observed at every crash site so far, for dry runs that
    /// enumerate which `(site, hit)` pairs an operation passes through.
    pub fn crash_site_arrivals(&self) -> Vec<(&'static str, u64)> {
        let counts = self.crash_counts.lock().expect("crash counter poisoned");
        let mut v: Vec<(&'static str, u64)> = counts.iter().map(|(&s, &n)| (s, n)).collect();
        v.sort_unstable();
        v
    }

    /// Whether the write of replica `replica` of the block identified by
    /// `key` is silently corrupted ([`FaultSite::BlockCorrupt`]). Keyed
    /// on `(key, replica)` only — retried write attempts re-corrupt the
    /// same replica the same way, so the damage is persistent on disk.
    /// A firing decision is counted in `faults_injected`.
    pub fn corrupts_write(&self, key: u64, replica: u32) -> bool {
        let p = self.plan.block_corrupt_p;
        if p <= 0.0 {
            return false;
        }
        let fired = self.roll(FaultSite::BlockCorrupt, key, replica, 0) < p;
        if fired {
            self.metrics.record_fault_injected();
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: FaultPlan) -> FaultInjector {
        FaultInjector::new(plan, Arc::new(Metrics::new()))
    }

    #[test]
    fn zero_probability_never_faults() {
        let inj = injector(FaultPlan::none());
        for key in 0..1000 {
            assert!(inj.fault_for(FaultSite::BlockRead, key, 1).is_none());
            assert!(inj.fault_for(FaultSite::Task, key, 1).is_none());
        }
    }

    #[test]
    fn full_probability_always_faults() {
        let inj = injector(FaultPlan {
            block_read_fail_p: 1.0,
            ..FaultPlan::none()
        });
        for key in 0..100 {
            assert!(inj.fault_for(FaultSite::BlockRead, key, 1).is_some());
            // Other sites stay clean.
            assert!(inj.fault_for(FaultSite::Task, key, 1).is_none());
        }
    }

    #[test]
    fn decisions_are_deterministic_across_injectors() {
        let plan = FaultPlan {
            seed: 42,
            block_read_fail_p: 0.3,
            task_fail_p: 0.2,
            ..FaultPlan::none()
        };
        let a = injector(plan.clone());
        let b = injector(plan);
        for key in 0..500 {
            for attempt in 1..4 {
                assert_eq!(
                    a.fault_for(FaultSite::BlockRead, key, attempt).is_some(),
                    b.fault_for(FaultSite::BlockRead, key, attempt).is_some()
                );
                assert_eq!(
                    a.fault_for(FaultSite::Task, key, attempt).is_some(),
                    b.fault_for(FaultSite::Task, key, attempt).is_some()
                );
            }
        }
    }

    #[test]
    fn rate_tracks_probability() {
        let inj = injector(FaultPlan {
            seed: 7,
            block_read_fail_p: 0.25,
            ..FaultPlan::none()
        });
        let hits = (0..10_000u64)
            .filter(|&k| inj.fault_for(FaultSite::BlockRead, k, 1).is_some())
            .count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn attempts_roll_independently() {
        let inj = injector(FaultPlan {
            seed: 9,
            block_read_fail_p: 0.5,
            ..FaultPlan::none()
        });
        // Some key must fail attempt 1 but pass attempt 2 — the property
        // retries rely on.
        let recovered = (0..200u64).any(|k| {
            inj.fault_for(FaultSite::BlockRead, k, 1).is_some()
                && inj.fault_for(FaultSite::BlockRead, k, 2).is_none()
        });
        assert!(recovered);
    }

    #[test]
    fn faults_are_metered() {
        let metrics = Arc::new(Metrics::new());
        let inj = FaultInjector::new(
            FaultPlan {
                block_read_fail_p: 1.0,
                ..FaultPlan::none()
            },
            Arc::clone(&metrics),
        );
        for key in 0..5 {
            let _ = inj.fault_for(FaultSite::BlockRead, key, 1);
        }
        assert_eq!(metrics.snapshot().faults_injected, 5);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(9),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(4), Duration::from_millis(9));
        assert_eq!(p.backoff(30), Duration::from_millis(9));
    }

    #[test]
    fn task_epochs_advance() {
        let inj = injector(FaultPlan::none());
        assert_eq!(inj.next_task_epoch(), 0);
        assert_eq!(inj.next_task_epoch(), 1);
        assert_ne!(
            FaultInjector::task_key(0, 3),
            FaultInjector::task_key(1, 3),
            "same task index in different stages must roll independently"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_rejected() {
        injector(FaultPlan {
            task_fail_p: 1.5,
            ..FaultPlan::none()
        });
    }

    #[test]
    fn kill_one_replica_is_deterministic_and_in_range() {
        let plan = FaultPlan {
            seed: 17,
            kill_one_replica: true,
            ..FaultPlan::none()
        };
        let a = injector(plan.clone());
        let b = injector(plan);
        let mut seen = [false; 3];
        for key in 0..500u64 {
            let dead = a.killed_replica(key, 3).expect("mode is on");
            assert!(dead < 3);
            assert_eq!(Some(dead), b.killed_replica(key, 3));
            seen[dead as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "kill choice never varied: {seen:?}");
        // Off-mode and single-replica stores have nothing to kill.
        assert_eq!(a.killed_replica(1, 1), None);
        assert_eq!(injector(FaultPlan::none()).killed_replica(1, 3), None);
    }

    #[test]
    fn corruption_is_per_replica_and_persistent() {
        let inj = injector(FaultPlan {
            seed: 23,
            block_corrupt_p: 0.5,
            ..FaultPlan::none()
        });
        let mut differs = false;
        for key in 0..200u64 {
            // Re-consulting gives the same answer (persistence).
            assert_eq!(inj.corrupts_write(key, 0), inj.corrupts_write(key, 0));
            if inj.corrupts_write(key, 0) != inj.corrupts_write(key, 1) {
                differs = true;
            }
        }
        assert!(differs, "replicas never rolled independently");
        assert!(!injector(FaultPlan::none()).corrupts_write(1, 0));
    }

    #[test]
    fn crash_spec_parses_site_and_hit() {
        let spec = CrashSpec::parse("dfs.replace.rename:3").unwrap();
        assert_eq!(spec.site, "dfs.replace.rename");
        assert_eq!(spec.hit, 3);
        // A bare site means the first arrival.
        assert_eq!(CrashSpec::parse("core.ingest.seal").unwrap().hit, 1);
        assert!(CrashSpec::parse("").is_none());
        assert!(CrashSpec::parse("site:0").is_none(), "hits are 1-based");
        assert!(CrashSpec::parse("site:x").is_none());
    }

    #[test]
    fn crash_point_fires_on_the_armed_arrival_only() {
        let inj = injector(FaultPlan {
            crash_point: Some(CrashSpec {
                site: "dfs.replace.rename".into(),
                hit: 2,
            }),
            ..FaultPlan::none()
        });
        assert!(inj.crash_point("dfs.replace.rename").is_ok());
        // Other sites count independently and never fire.
        assert!(inj.crash_point("dfs.replace.stage").is_ok());
        let err = inj.crash_point("dfs.replace.rename").unwrap_err();
        match &err {
            ClusterError::CrashInjected { site, hit } => {
                assert_eq!(*site, "dfs.replace.rename");
                assert_eq!(*hit, 2);
            }
            other => panic!("unexpected error: {other}"),
        }
        use crate::error::MaybeTransient;
        assert!(!err.is_transient(), "crashes must not be retried");
        // Arrivals keep counting past the crash (a dry re-run through
        // the same injector would see later hits), but the armed pair
        // matches exactly once.
        assert!(inj.crash_point("dfs.replace.rename").is_ok());
    }

    #[test]
    fn crash_arrivals_enumerate_sites() {
        let inj = injector(FaultPlan::none());
        for _ in 0..3 {
            inj.crash_point("core.compact.swap").unwrap();
        }
        inj.crash_point("core.ingest.seal").unwrap();
        assert_eq!(
            inj.crash_site_arrivals(),
            vec![("core.compact.swap", 3), ("core.ingest.seal", 1)]
        );
    }

    #[test]
    fn crash_sites_catalogue_is_wellformed() {
        for site in CRASH_SITES {
            let spec = CrashSpec::parse(site).expect("catalogue entry parses");
            assert_eq!(&spec.site, site);
        }
    }

    #[test]
    fn slow_node_delay_applies_only_to_the_named_node() {
        let inj = injector(FaultPlan {
            slow_node: Some((2, Duration::from_millis(30))),
            ..FaultPlan::none()
        });
        assert_eq!(inj.node_delay(2), Some(Duration::from_millis(30)));
        assert_eq!(inj.node_delay(0), None);
        assert_eq!(inj.node_delay(1), None);
        assert_eq!(injector(FaultPlan::none()).node_delay(2), None);
        // A zero delay is the same as no injection.
        let zero = injector(FaultPlan {
            slow_node: Some((2, Duration::ZERO)),
            ..FaultPlan::none()
        });
        assert_eq!(zero.node_delay(2), None);
    }

    #[test]
    fn virtual_clock_accounts_backoff_without_sleeping() {
        let clock = Arc::new(VirtualClock::new());
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_base: Duration::from_secs(10),
            backoff_cap: Duration::from_secs(40),
            clock: BackoffClock::Virtual(Arc::clone(&clock)),
        };
        let t0 = std::time::Instant::now();
        p.sleep_backoff(1); // 10s
        p.sleep_backoff(2); // 20s
        p.sleep_backoff(3); // 40s (capped)
        assert!(t0.elapsed() < Duration::from_secs(1), "virtual sleep blocked");
        assert_eq!(clock.slept(), Duration::from_secs(70));
    }
}
