//! Deterministic fault injection and retry policy.
//!
//! TARDIS phrases index construction as Spark jobs, and Spark's execution
//! model assumes tasks and block reads fail and are retried; Odyssey
//! likewise treats node/task failure as a first-class concern of
//! distributed series indexing. This module gives the in-process
//! substrate the same failure semantics, *deterministically*: every fault
//! decision is a pure function of `(plan seed, injection site, stable
//! key, attempt number)` — never of thread scheduling — so a seeded chaos
//! run is exactly reproducible and a faulted build must produce
//! byte-identical results to a fault-free one once retries mask the
//! faults.
//!
//! Injection sites:
//!
//! * [`FaultSite::BlockRead`] / [`FaultSite::BlockWrite`] — the DFS fails
//!   (or stalls, for reads) a block operation before touching disk,
//!   modelling a lost datanode connection.
//! * [`FaultSite::Task`] — the worker pool fails a task at dispatch,
//!   modelling an executor crash. Only the fallible `try_par_*` entry
//!   points inject task faults; the infallible `par_*` family stays pure
//!   computation.
//!
//! Recovery is governed by [`RetryPolicy`]: capped exponential backoff up
//! to `max_attempts`, after which the typed
//! [`ClusterError::RetriesExhausted`](crate::ClusterError::RetriesExhausted)
//! surfaces — never a panic, never a hang.

use crate::error::ClusterError;
use crate::metrics::Metrics;
use crate::rng::{hash_bytes, SplitMix64};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A DFS block read.
    BlockRead,
    /// A DFS block write.
    BlockWrite,
    /// A worker-pool task (fallible `try_par_*` family).
    Task,
}

impl FaultSite {
    /// Stable per-site salt for decision hashing.
    fn salt(self) -> u64 {
        match self {
            FaultSite::BlockRead => 0x9E37_79B9_0000_0001,
            FaultSite::BlockWrite => 0x9E37_79B9_0000_0002,
            FaultSite::Task => 0x9E37_79B9_0000_0003,
        }
    }

    /// Human-readable site name (used in error messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::BlockRead => "block read",
            FaultSite::BlockWrite => "block write",
            FaultSite::Task => "task",
        }
    }
}

/// A seeded description of which faults to inject and how often.
///
/// Probabilities are per *attempt*: with `block_read_fail_p = 0.05` each
/// retry of the same block re-rolls an independent (but deterministic)
/// 5% decision, so the chance a read fails `max_attempts` times in a row
/// is `0.05^max_attempts`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Probability a block read fails.
    pub block_read_fail_p: f64,
    /// Probability a block write fails.
    pub block_write_fail_p: f64,
    /// Probability a task fails at dispatch.
    pub task_fail_p: f64,
    /// Probability a block read stalls for [`FaultPlan::stall`] first
    /// (independent of failing; models a slow datanode).
    pub block_read_stall_p: f64,
    /// Stall duration for slow reads.
    pub stall: Duration,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            block_read_fail_p: 0.0,
            block_write_fail_p: 0.0,
            task_fail_p: 0.0,
            block_read_stall_p: 0.0,
            stall: Duration::ZERO,
        }
    }
}

impl FaultPlan {
    /// A plan injecting nothing (identical to running without one).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Failure probability at one site.
    pub fn fail_p(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::BlockRead => self.block_read_fail_p,
            FaultSite::BlockWrite => self.block_write_fail_p,
            FaultSite::Task => self.task_fail_p,
        }
    }

    /// Validates probabilities.
    ///
    /// # Panics
    /// Panics when any probability is outside `[0, 1]`.
    pub fn assert_valid(&self) {
        for (name, p) in [
            ("block_read_fail_p", self.block_read_fail_p),
            ("block_write_fail_p", self.block_write_fail_p),
            ("task_fail_p", self.task_fail_p),
            ("block_read_stall_p", self.block_read_stall_p),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name}={p} outside [0, 1]");
        }
    }
}

/// How transient failures are retried.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retries). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Effective attempt budget (≥ 1).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Capped exponential backoff after failed attempt number `attempt`
    /// (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// The seeded fault oracle shared by the DFS and the worker pool.
///
/// Decisions are stateless: two injectors built from the same plan give
/// identical answers, and concurrent queries never perturb each other —
/// the property the chaos suite's byte-identical guarantee rests on. The
/// only mutable state is the task-epoch counter, which the driver
/// advances once per `try_par_*` stage (driver stages run sequentially,
/// so epochs are deterministic too).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    metrics: Arc<Metrics>,
    /// Per-stage namespace for task keys, so "task 3 of the shuffle" and
    /// "task 3 of the local build" roll independent faults.
    task_epoch: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector; injected faults are counted in `metrics`.
    ///
    /// # Panics
    /// Panics when the plan's probabilities are invalid.
    pub fn new(plan: FaultPlan, metrics: Arc<Metrics>) -> FaultInjector {
        plan.assert_valid();
        FaultInjector {
            plan,
            metrics,
            task_epoch: AtomicU64::new(0),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Reserves a fresh task-key namespace for one `try_par_*` stage.
    pub fn next_task_epoch(&self) -> u64 {
        self.task_epoch.fetch_add(1, Ordering::Relaxed)
    }

    /// Stable key for a DFS block.
    pub fn block_key(file: &str, index: u32) -> u64 {
        hash_bytes(file.as_bytes()) ^ SplitMix64::new(index as u64).next_u64()
    }

    /// Stable key for a pool task.
    pub fn task_key(epoch: u64, task_index: usize) -> u64 {
        SplitMix64::new(epoch.wrapping_mul(0x2545_F491_4F6C_DD1D)).next_u64()
            ^ (task_index as u64)
    }

    /// The deterministic unit-interval roll for one decision.
    fn roll(&self, site: FaultSite, key: u64, attempt: u32, salt2: u64) -> f64 {
        let mut mix = SplitMix64::new(self.plan.seed ^ site.salt() ^ salt2);
        let a = mix.next_u64() ^ key;
        let b = SplitMix64::new(a).next_u64() ^ (attempt as u64);
        SplitMix64::new(b).next_f64()
    }

    /// Decides whether attempt `attempt` of the operation identified by
    /// `(site, key)` fails; a returned error has already been counted in
    /// `faults_injected`.
    pub fn fault_for(&self, site: FaultSite, key: u64, attempt: u32) -> Option<ClusterError> {
        let p = self.plan.fail_p(site);
        if p <= 0.0 || self.roll(site, key, attempt, 0) >= p {
            return None;
        }
        self.metrics.record_fault_injected();
        Some(ClusterError::InjectedFault {
            site: site.name(),
            key,
            attempt,
        })
    }

    /// Sleeps for the plan's stall duration when this block-read attempt
    /// is chosen as "slow" (independent of failure injection).
    pub fn maybe_stall_read(&self, key: u64, attempt: u32) {
        let p = self.plan.block_read_stall_p;
        if p <= 0.0 || self.plan.stall.is_zero() {
            return;
        }
        if self.roll(FaultSite::BlockRead, key, attempt, 0xDEAD_BEEF) < p {
            std::thread::sleep(self.plan.stall);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: FaultPlan) -> FaultInjector {
        FaultInjector::new(plan, Arc::new(Metrics::new()))
    }

    #[test]
    fn zero_probability_never_faults() {
        let inj = injector(FaultPlan::none());
        for key in 0..1000 {
            assert!(inj.fault_for(FaultSite::BlockRead, key, 1).is_none());
            assert!(inj.fault_for(FaultSite::Task, key, 1).is_none());
        }
    }

    #[test]
    fn full_probability_always_faults() {
        let inj = injector(FaultPlan {
            block_read_fail_p: 1.0,
            ..FaultPlan::none()
        });
        for key in 0..100 {
            assert!(inj.fault_for(FaultSite::BlockRead, key, 1).is_some());
            // Other sites stay clean.
            assert!(inj.fault_for(FaultSite::Task, key, 1).is_none());
        }
    }

    #[test]
    fn decisions_are_deterministic_across_injectors() {
        let plan = FaultPlan {
            seed: 42,
            block_read_fail_p: 0.3,
            task_fail_p: 0.2,
            ..FaultPlan::none()
        };
        let a = injector(plan.clone());
        let b = injector(plan);
        for key in 0..500 {
            for attempt in 1..4 {
                assert_eq!(
                    a.fault_for(FaultSite::BlockRead, key, attempt).is_some(),
                    b.fault_for(FaultSite::BlockRead, key, attempt).is_some()
                );
                assert_eq!(
                    a.fault_for(FaultSite::Task, key, attempt).is_some(),
                    b.fault_for(FaultSite::Task, key, attempt).is_some()
                );
            }
        }
    }

    #[test]
    fn rate_tracks_probability() {
        let inj = injector(FaultPlan {
            seed: 7,
            block_read_fail_p: 0.25,
            ..FaultPlan::none()
        });
        let hits = (0..10_000u64)
            .filter(|&k| inj.fault_for(FaultSite::BlockRead, k, 1).is_some())
            .count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn attempts_roll_independently() {
        let inj = injector(FaultPlan {
            seed: 9,
            block_read_fail_p: 0.5,
            ..FaultPlan::none()
        });
        // Some key must fail attempt 1 but pass attempt 2 — the property
        // retries rely on.
        let recovered = (0..200u64).any(|k| {
            inj.fault_for(FaultSite::BlockRead, k, 1).is_some()
                && inj.fault_for(FaultSite::BlockRead, k, 2).is_none()
        });
        assert!(recovered);
    }

    #[test]
    fn faults_are_metered() {
        let metrics = Arc::new(Metrics::new());
        let inj = FaultInjector::new(
            FaultPlan {
                block_read_fail_p: 1.0,
                ..FaultPlan::none()
            },
            Arc::clone(&metrics),
        );
        for key in 0..5 {
            let _ = inj.fault_for(FaultSite::BlockRead, key, 1);
        }
        assert_eq!(metrics.snapshot().faults_injected, 5);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(9),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(4), Duration::from_millis(9));
        assert_eq!(p.backoff(30), Duration::from_millis(9));
    }

    #[test]
    fn task_epochs_advance() {
        let inj = injector(FaultPlan::none());
        assert_eq!(inj.next_task_epoch(), 0);
        assert_eq!(inj.next_task_epoch(), 1);
        assert_ne!(
            FaultInjector::task_key(0, 3),
            FaultInjector::task_key(1, 3),
            "same task index in different stages must roll independently"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_rejected() {
        injector(FaultPlan {
            task_fail_p: 1.5,
            ..FaultPlan::none()
        });
    }
}
