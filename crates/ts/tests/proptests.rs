//! Property-based tests for the time-series primitives.

use proptest::prelude::*;
use tardis_ts::{
    euclidean_early_abandon, squared_euclidean, z_normalize_in_place, znorm_params, SummaryStats,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn znorm_produces_zero_mean_unit_std(
        mut values in prop::collection::vec(-1000.0f32..1000.0, 2..300),
    ) {
        // Skip (near-)constant inputs: they normalize to all zeros.
        let (_, std) = znorm_params(&values);
        prop_assume!(std > 1e-3);
        z_normalize_in_place(&mut values);
        let (mean, std) = znorm_params(&values);
        prop_assert!(mean.abs() < 1e-3, "mean {}", mean);
        prop_assert!((std - 1.0).abs() < 1e-3, "std {}", std);
    }

    #[test]
    fn znorm_is_shift_and_scale_invariant(
        base in prop::collection::vec(-10.0f32..10.0, 4..100),
        shift in -100.0f32..100.0,
        scale in 0.1f32..50.0,
    ) {
        let (_, std) = znorm_params(&base);
        prop_assume!(std > 1e-2);
        let mut a = base.clone();
        let mut b: Vec<f32> = base.iter().map(|&v| v * scale + shift).collect();
        z_normalize_in_place(&mut a);
        z_normalize_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    #[test]
    fn distance_axioms(
        a in prop::collection::vec(-10.0f32..10.0, 16),
        b in prop::collection::vec(-10.0f32..10.0, 16),
        c in prop::collection::vec(-10.0f32..10.0, 16),
    ) {
        let dab = squared_euclidean(&a, &b).sqrt();
        let dba = squared_euclidean(&b, &a).sqrt();
        let dac = squared_euclidean(&a, &c).sqrt();
        let dcb = squared_euclidean(&c, &b).sqrt();
        // Symmetry, identity, triangle inequality.
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert_eq!(squared_euclidean(&a, &a), 0.0);
        prop_assert!(dab <= dac + dcb + 1e-6);
    }

    #[test]
    fn early_abandon_agrees_with_full(
        a in prop::collection::vec(-5.0f32..5.0, 1..64),
        b_seed in prop::collection::vec(-5.0f32..5.0, 64),
        threshold in 0.0f64..500.0,
    ) {
        let b = &b_seed[..a.len()];
        let full = squared_euclidean(&a, b);
        match euclidean_early_abandon(&a, b, threshold) {
            Some(d) => {
                prop_assert!((d - full).abs() < 1e-9);
                prop_assert!(full <= threshold + 1e-9);
            }
            None => prop_assert!(full > threshold),
        }
    }

    #[test]
    fn summary_merge_is_associative_enough(
        xs in prop::collection::vec(-100.0f32..100.0, 3..200),
        split in 1usize..100,
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = SummaryStats::new();
        whole.extend_from_slice(&xs);
        let mut left = SummaryStats::new();
        left.extend_from_slice(&xs[..split]);
        let mut right = SummaryStats::new();
        right.extend_from_slice(&xs[split..]);
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-4);
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }
}
