#![warn(missing_docs)]

//! Time-series primitives shared by every crate in the TARDIS workspace.
//!
//! This crate intentionally knows nothing about indexing: it defines the
//! [`TimeSeries`] and [`Record`] value types, z-normalization, Euclidean
//! distances (plain, squared, and early-abandoning), and the summary
//! statistics used to profile dataset skew (Figure 9 of the paper).
//!
//! All series values are stored as `f32` (matching the storage format of the
//! evaluation datasets) while every distance and statistic accumulates in
//! `f64` for accuracy.

pub mod distance;
pub mod error;
pub mod lanes;
pub mod norm;
pub mod series;
pub mod stats;

pub use distance::{euclidean, euclidean_early_abandon, squared_euclidean};
pub use lanes::{
    euclidean_early_abandon_block, euclidean_early_abandon_lanes, paa_lower_bound_sq,
    paa_prefilter_block, squared_euclidean_lanes, squared_euclidean_lanes_scalar,
};
pub use error::TsError;
pub use norm::{z_normalize, z_normalize_in_place, znorm_params};
pub use series::{Record, RecordId, TimeSeries};
pub use stats::{distribution_mse, histogram, skewness, Histogram, SummaryStats};
