//! Core value types: [`TimeSeries`] and [`Record`].

use crate::error::TsError;
use std::fmt;
use std::ops::Index;

/// Identifier of a record within a dataset.
///
/// The paper's `(ts, rid)` pairs use an opaque record id; we use a dense
/// `u64` assigned at generation/ingest time.
pub type RecordId = u64;

/// An ordered sequence of equally-spaced real-valued readings.
///
/// Per Definition 1 of the paper, timestamps are implicit: a series is just
/// its values. Values are stored as `f32` for storage parity with the
/// evaluation datasets; all arithmetic on series accumulates in `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    values: Vec<f32>,
}

impl TimeSeries {
    /// Creates a series from raw values.
    pub fn new(values: Vec<f32>) -> Self {
        TimeSeries { values }
    }

    /// Creates a series from raw values, validating that it is non-empty and
    /// contains only finite values.
    pub fn try_new(values: Vec<f32>) -> Result<Self, TsError> {
        if values.is_empty() {
            return Err(TsError::EmptySeries);
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(TsError::NonFiniteValue { index });
        }
        Ok(TimeSeries { values })
    }

    /// Number of readings in the series.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no readings.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values as a slice.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access to the raw values.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Consumes the series, returning its value buffer.
    pub fn into_values(self) -> Vec<f32> {
        self.values
    }

    /// Iterator over values as `f64` (the accumulation type).
    pub fn iter_f64(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().map(|&v| v as f64)
    }

    /// Returns true if every value in `self` equals the corresponding value
    /// of `other` bit-for-bit. This is the "exact match" notion used by the
    /// exact-match query (Euclidean distance zero on f32 storage).
    pub fn exact_eq(&self, other: &TimeSeries) -> bool {
        self.values.len() == other.values.len()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Like [`exact_eq`](Self::exact_eq) but against a raw value slice, so
    /// arena-backed storage (e.g. a partition `SeriesBlock`) can be compared
    /// without materializing a `TimeSeries`.
    pub fn exact_eq_values(&self, other: &[f32]) -> bool {
        self.values.len() == other.len()
            && self
                .values
                .iter()
                .zip(other)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Heap + inline memory footprint in bytes (used by index-size accounting).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.values.capacity() * std::mem::size_of::<f32>()
    }
}

impl From<Vec<f32>> for TimeSeries {
    fn from(values: Vec<f32>) -> Self {
        TimeSeries::new(values)
    }
}

impl From<&[f32]> for TimeSeries {
    fn from(values: &[f32]) -> Self {
        TimeSeries::new(values.to_vec())
    }
}

impl Index<usize> for TimeSeries {
    type Output = f32;

    fn index(&self, idx: usize) -> &f32 {
        &self.values[idx]
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        const PREVIEW: usize = 8;
        for (i, v) in self.values.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.3}")?;
        }
        if self.values.len() > PREVIEW {
            write!(f, ", … ({} values)", self.values.len())?;
        }
        write!(f, "]")
    }
}

/// A time series paired with its record id — the `(ts, rid)` unit that flows
/// through every construction pipeline in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Dataset-unique record id.
    pub rid: RecordId,
    /// The series payload.
    pub ts: TimeSeries,
}

impl Record {
    /// Creates a record.
    pub fn new(rid: RecordId, ts: TimeSeries) -> Self {
        Record { rid, ts }
    }

    /// Series length of the payload.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Heap + inline memory footprint in bytes.
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<RecordId>() + self.ts.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_rejects_empty() {
        assert_eq!(TimeSeries::try_new(vec![]), Err(TsError::EmptySeries));
    }

    #[test]
    fn try_new_rejects_nan() {
        assert_eq!(
            TimeSeries::try_new(vec![1.0, f32::NAN, 2.0]),
            Err(TsError::NonFiniteValue { index: 1 })
        );
    }

    #[test]
    fn try_new_rejects_infinity() {
        assert_eq!(
            TimeSeries::try_new(vec![f32::INFINITY]),
            Err(TsError::NonFiniteValue { index: 0 })
        );
    }

    #[test]
    fn try_new_accepts_finite() {
        let ts = TimeSeries::try_new(vec![1.0, -2.5, 3.25]).unwrap();
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
    }

    #[test]
    fn exact_eq_matches_identical() {
        let a = TimeSeries::new(vec![1.0, 2.0, 3.0]);
        let b = TimeSeries::new(vec![1.0, 2.0, 3.0]);
        assert!(a.exact_eq(&b));
    }

    #[test]
    fn exact_eq_rejects_different_value() {
        let a = TimeSeries::new(vec![1.0, 2.0, 3.0]);
        let b = TimeSeries::new(vec![1.0, 2.0, 3.0 + f32::EPSILON * 4.0]);
        assert!(!a.exact_eq(&b));
    }

    #[test]
    fn exact_eq_rejects_different_length() {
        let a = TimeSeries::new(vec![1.0, 2.0]);
        let b = TimeSeries::new(vec![1.0, 2.0, 3.0]);
        assert!(!a.exact_eq(&b));
    }

    #[test]
    fn exact_eq_distinguishes_zero_signs() {
        // ED would be 0 but bitwise equality distinguishes -0.0 from +0.0; the
        // dedup example relies on bitwise semantics being at least as strict.
        let a = TimeSeries::new(vec![0.0]);
        let b = TimeSeries::new(vec![-0.0]);
        assert!(!a.exact_eq(&b));
    }

    #[test]
    fn indexing_and_iter_f64() {
        let ts = TimeSeries::new(vec![1.5, 2.5]);
        assert_eq!(ts[1], 2.5);
        let collected: Vec<f64> = ts.iter_f64().collect();
        assert_eq!(collected, vec![1.5, 2.5]);
    }

    #[test]
    fn display_truncates_long_series() {
        let ts = TimeSeries::new((0..20).map(|i| i as f32).collect());
        let s = ts.to_string();
        assert!(s.contains("… (20 values)"), "got {s}");
    }

    #[test]
    fn record_roundtrip() {
        let r = Record::new(42, TimeSeries::new(vec![1.0, 2.0]));
        assert_eq!(r.rid, 42);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(r.mem_bytes() >= 8 + 2 * 4);
    }

    #[test]
    fn from_slice_and_vec() {
        let v = vec![1.0f32, 2.0];
        let a = TimeSeries::from(v.clone());
        let b = TimeSeries::from(v.as_slice());
        assert_eq!(a, b);
    }
}
