//! Lane-based refine kernels: portable 8-wide loops over `f32` data with
//! `f64` accumulation, written so LLVM can autovectorize them on stable
//! Rust (no nightly `std::simd`).
//!
//! # Accumulation order (the determinism contract)
//!
//! Floating-point addition is not associative, so a vectorized kernel and
//! a scalar one generally round differently. These kernels therefore fix
//! one *documented* accumulation order, and every kernel — lane loop,
//! batched block variant, and scalar oracle — implements exactly that
//! order, making their outputs **bit-identical** by construction:
//!
//! 1. Eight independent `f64` lane accumulators `l0..l7`.
//! 2. The inputs are walked in chunks of 8; element `8t + j` of a chunk
//!    accumulates into lane `j` (`l_j += d²` where `d = a[i] as f64 -
//!    b[i] as f64`).
//! 3. The `r = len % 8` remainder elements fold into lanes `0..r`, one
//!    element per lane, in index order.
//! 4. The final sum is the fixed tree reduction
//!    `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`.
//!
//! The independence of the eight lanes is what breaks the sequential
//! dependency chain of [`squared_euclidean`](crate::squared_euclidean)
//! and lets the compiler keep several FMAs in flight (or emit packed SIMD
//! adds); the fixed tree reduction makes the result reproducible across
//! lane widths the hardware actually uses.
//!
//! The PAA pre-filter kernel uses the same scheme at width 4 (PAA word
//! lengths are multiples of 4), with the tree reduction
//! `(l0+l1) + (l2+l3)`.
//!
//! Early-abandon kernels reduce the lanes after every 8-element chunk and
//! abandon when the running sum strictly exceeds the threshold — sums
//! exactly equal to the threshold are kept, matching
//! [`euclidean_early_abandon`](crate::euclidean_early_abandon).

const LANES: usize = 8;
const PAA_LANES: usize = 4;

#[inline(always)]
fn reduce8(l: &[f64; LANES]) -> f64 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

#[inline(always)]
fn reduce4(l: &[f64; PAA_LANES]) -> f64 {
    (l[0] + l[1]) + (l[2] + l[3])
}

/// Squared Euclidean distance with the documented 8-lane accumulation
/// order. Bit-identical to [`squared_euclidean_lanes_scalar`]; generally
/// *not* bit-identical to the sequential
/// [`squared_euclidean`](crate::squared_euclidean) (different rounding
/// order), though both are within normal f64 rounding of the true value.
#[inline]
pub fn squared_euclidean_lanes(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "lane kernel on mismatched lengths");
    let mut lanes = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            let d = xa[j] as f64 - xb[j] as f64;
            lanes[j] += d * d;
        }
    }
    for (j, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        let d = *x as f64 - *y as f64;
        lanes[j] += d * d;
    }
    reduce8(&lanes)
}

/// Scalar oracle for [`squared_euclidean_lanes`]: a naive indexed loop
/// implementing the identical documented order (used by the equivalence
/// proptests; kept `pub` so benches can compare against it).
pub fn squared_euclidean_lanes_scalar(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "lane kernel on mismatched lengths");
    let mut lanes = [0.0f64; LANES];
    let full = a.len() / LANES * LANES;
    let mut i = 0;
    while i < full {
        let d = a[i] as f64 - b[i] as f64;
        lanes[i % LANES] += d * d;
        i += 1;
    }
    let mut j = 0;
    while i < a.len() {
        let d = a[i] as f64 - b[i] as f64;
        lanes[j] += d * d;
        i += 1;
        j += 1;
    }
    reduce8(&lanes)
}

/// 8-element chunks between abandon checks: the horizontal lane
/// reduction costs several dependent adds, so checking after every chunk
/// would dominate the (vectorizable) accumulation. Because the
/// accumulation is monotone non-decreasing, a sparser check cadence
/// never changes the keep/abandon *decision* — a prefix that exceeds the
/// threshold keeps exceeding it — only how much extra work an abandoned
/// candidate does before the scan notices.
const ABANDON_CHECK_PERIOD: usize = 8;

/// Early-abandoning squared Euclidean distance in the 8-lane order: the
/// lanes are reduced for an abandon check every [`ABANDON_CHECK_PERIOD`]
/// 8-element chunks (and once at the end), and the scan abandons
/// (returns `None`) once the running sum strictly exceeds `threshold_sq`.
/// Keeps sums exactly equal to the threshold.
#[inline]
pub fn euclidean_early_abandon_lanes(a: &[f32], b: &[f32], threshold_sq: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "lane kernel on mismatched lengths");
    let mut lanes = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let mut chunk = 0usize;
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            let d = xa[j] as f64 - xb[j] as f64;
            lanes[j] += d * d;
        }
        chunk += 1;
        if chunk % ABANDON_CHECK_PERIOD == 0 && reduce8(&lanes) > threshold_sq {
            return None;
        }
    }
    for (j, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        let d = *x as f64 - *y as f64;
        lanes[j] += d * d;
    }
    let total = reduce8(&lanes);
    if total > threshold_sq {
        None
    } else {
        Some(total)
    }
}

/// Scalar oracle for [`euclidean_early_abandon_lanes`] (identical
/// accumulation order and abandon rule, naive loops).
pub fn euclidean_early_abandon_lanes_scalar(
    a: &[f32],
    b: &[f32],
    threshold_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "lane kernel on mismatched lengths");
    let mut lanes = [0.0f64; LANES];
    let full = a.len() / LANES * LANES;
    let check_every = LANES * ABANDON_CHECK_PERIOD;
    let mut i = 0;
    while i < full {
        let d = a[i] as f64 - b[i] as f64;
        lanes[i % LANES] += d * d;
        i += 1;
        if i % check_every == 0 && reduce8(&lanes) > threshold_sq {
            return None;
        }
    }
    let mut j = 0;
    while i < a.len() {
        let d = a[i] as f64 - b[i] as f64;
        lanes[j] += d * d;
        i += 1;
        j += 1;
    }
    let total = reduce8(&lanes);
    if total > threshold_sq {
        None
    } else {
        Some(total)
    }
}

/// Batched early-abandon kernel over a contiguous arena of equal-length
/// series: candidate `i` occupies `arena[i*stride .. (i+1)*stride]`.
/// Runs [`euclidean_early_abandon_lanes`] against each candidate row in
/// the order given, invoking `sink(idx, result)` per candidate — so per
/// candidate it agrees bit-for-bit with the per-candidate kernel, while
/// the loop walks the arena cache-linearly when the candidate indices are
/// (mostly) ascending, as leaf-clustered candidate sets are.
#[inline]
pub fn euclidean_early_abandon_block(
    query: &[f32],
    arena: &[f32],
    stride: usize,
    candidates: &[u32],
    threshold_sq: f64,
    mut sink: impl FnMut(u32, Option<f64>),
) {
    debug_assert!(stride > 0 || candidates.is_empty(), "zero stride");
    for &idx in candidates {
        let start = idx as usize * stride;
        let row = &arena[start..start + stride];
        sink(idx, euclidean_early_abandon_lanes(query, row, threshold_sq));
    }
}

/// Weighted squared PAA distance in the 4-lane order: `Σⱼ wⱼ·(qⱼ-cⱼ)²`
/// reduced as `(l0+l1) + (l2+l3)`. With `weights[j]` the length of PAA
/// segment `j`, this lower-bounds the squared Euclidean distance of the
/// underlying series (per-segment Cauchy–Schwarz), which is what the
/// pre-filter relies on.
#[inline]
pub fn paa_lower_bound_sq(weights: &[f64], q: &[f64], c: &[f64]) -> f64 {
    debug_assert_eq!(weights.len(), q.len(), "weights/query PAA mismatch");
    debug_assert_eq!(q.len(), c.len(), "PAA width mismatch");
    let mut lanes = [0.0f64; PAA_LANES];
    let mut cw = weights.chunks_exact(PAA_LANES);
    let mut cq = q.chunks_exact(PAA_LANES);
    let mut cc = c.chunks_exact(PAA_LANES);
    for ((w, xq), xc) in (&mut cw).zip(&mut cq).zip(&mut cc) {
        for j in 0..PAA_LANES {
            let d = xq[j] - xc[j];
            lanes[j] += w[j] * d * d;
        }
    }
    for (j, ((w, x), y)) in cw
        .remainder()
        .iter()
        .zip(cq.remainder())
        .zip(cc.remainder())
        .enumerate()
    {
        let d = x - y;
        lanes[j] += w * d * d;
    }
    reduce4(&lanes)
}

/// Scalar oracle for [`paa_lower_bound_sq`] (identical order, naive
/// loops).
pub fn paa_lower_bound_sq_scalar(weights: &[f64], q: &[f64], c: &[f64]) -> f64 {
    debug_assert_eq!(weights.len(), q.len(), "weights/query PAA mismatch");
    debug_assert_eq!(q.len(), c.len(), "PAA width mismatch");
    let mut lanes = [0.0f64; PAA_LANES];
    let full = q.len() / PAA_LANES * PAA_LANES;
    let mut i = 0;
    while i < full {
        let d = q[i] - c[i];
        lanes[i % PAA_LANES] += weights[i] * d * d;
        i += 1;
    }
    let mut j = 0;
    while i < q.len() {
        let d = q[i] - c[i];
        lanes[j] += weights[i] * d * d;
        i += 1;
        j += 1;
    }
    reduce4(&lanes)
}

/// Batched PAA lower-bound pre-filter over a contiguous PAA sidecar:
/// candidate `i`'s coefficients occupy `paa_arena[i*width ..
/// (i+1)*width]`. Keeps (pushes into `survivors`, preserving order) every
/// candidate whose weighted squared PAA distance does **not** exceed
/// `bound_sq`, and returns the number pruned. Since the PAA distance
/// lower-bounds the true squared distance, pruned candidates are provably
/// outside the bound — the filter never drops a true neighbor.
#[inline]
pub fn paa_prefilter_block(
    query_paa: &[f64],
    weights: &[f64],
    paa_arena: &[f64],
    width: usize,
    candidates: &[u32],
    bound_sq: f64,
    survivors: &mut Vec<u32>,
) -> usize {
    debug_assert_eq!(query_paa.len(), width, "query PAA width mismatch");
    let mut pruned = 0usize;
    for &idx in candidates {
        let start = idx as usize * width;
        let row = &paa_arena[start..start + width];
        if paa_lower_bound_sq(weights, query_paa, row) > bound_sq {
            pruned += 1;
        } else {
            survivors.push(idx);
        }
    }
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{euclidean_early_abandon, squared_euclidean};
    use proptest::prelude::*;

    fn series(seed: u64, len: usize) -> Vec<f32> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn lanes_matches_plain_squared_distance_numerically() {
        for len in [1usize, 7, 8, 9, 15, 16, 63, 64, 256] {
            let a = series(1, len);
            let b = series(2, len);
            let plain = squared_euclidean(&a, &b);
            let lanes = squared_euclidean_lanes(&a, &b);
            assert!(
                (plain - lanes).abs() <= 1e-9 * plain.max(1.0),
                "len {len}: {plain} vs {lanes}"
            );
        }
    }

    #[test]
    fn early_abandon_lanes_exact_threshold_is_kept() {
        let a = vec![0.0f32; 4];
        let b = vec![1.0f32; 4];
        assert_eq!(euclidean_early_abandon_lanes(&a, &b, 4.0), Some(4.0));
        assert_eq!(euclidean_early_abandon_lanes(&a, &b, 3.999), None);
    }

    #[test]
    fn early_abandon_lanes_agrees_with_full_when_kept() {
        for len in [1usize, 7, 8, 9, 17, 64, 100] {
            let a = series(3, len);
            let b = series(4, len);
            let full = squared_euclidean_lanes(&a, &b);
            assert_eq!(
                euclidean_early_abandon_lanes(&a, &b, full),
                Some(full),
                "len {len}"
            );
        }
    }

    #[test]
    fn block_kernel_walks_candidates_in_order() {
        let stride = 16;
        let arena: Vec<f32> = (0..5).flat_map(|i| series(i, stride)).collect();
        let q = series(99, stride);
        let mut seen = Vec::new();
        euclidean_early_abandon_block(&q, &arena, stride, &[3, 0, 4], f64::INFINITY, |i, r| {
            seen.push((i, r));
        });
        assert_eq!(seen.len(), 3);
        assert_eq!(
            seen.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![3, 0, 4]
        );
        for (i, r) in seen {
            let start = i as usize * stride;
            let expect = squared_euclidean_lanes(&q, &arena[start..start + stride]);
            assert_eq!(r, Some(expect));
        }
    }

    #[test]
    fn paa_prefilter_keeps_within_bound() {
        let width = 8;
        let weights = vec![8.0f64; width];
        let paa_arena: Vec<f64> = (0..4)
            .flat_map(|i| series(i, width).into_iter().map(|v| v as f64))
            .collect();
        let q: Vec<f64> = paa_arena[..width].to_vec(); // identical to candidate 0
        let mut survivors = Vec::new();
        let pruned =
            paa_prefilter_block(&q, &weights, &paa_arena, width, &[0, 1, 2, 3], 0.0, &mut survivors);
        assert!(survivors.contains(&0), "self must survive a zero bound");
        assert_eq!(pruned + survivors.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn lanes_bit_identical_to_scalar_oracle(
            seed in 0u64..1_000, len in 1usize..130,
        ) {
            let a = series(seed, len);
            let b = series(seed.wrapping_add(7), len);
            prop_assert_eq!(
                squared_euclidean_lanes(&a, &b).to_bits(),
                squared_euclidean_lanes_scalar(&a, &b).to_bits()
            );
        }

        #[test]
        fn early_abandon_lanes_bit_identical_to_scalar_oracle(
            seed in 0u64..1_000, len in 1usize..130, frac in 0.0f64..1.5,
        ) {
            let a = series(seed, len);
            let b = series(seed.wrapping_add(13), len);
            let full = squared_euclidean_lanes(&a, &b);
            let threshold = full * frac;
            let fast = euclidean_early_abandon_lanes(&a, &b, threshold);
            let slow = euclidean_early_abandon_lanes_scalar(&a, &b, threshold);
            prop_assert_eq!(fast.map(f64::to_bits), slow.map(f64::to_bits));
        }

        #[test]
        fn early_abandon_lanes_never_disagrees_with_exhaustive(
            seed in 0u64..1_000, len in 1usize..100, frac in 0.0f64..2.0,
        ) {
            // Abandon ⇒ the full distance really exceeds the threshold;
            // keep ⇒ the returned value is the full lane distance.
            let a = series(seed, len);
            let b = series(seed.wrapping_add(3), len);
            let full = squared_euclidean_lanes(&a, &b);
            let threshold = full * frac;
            match euclidean_early_abandon_lanes(&a, &b, threshold) {
                Some(d) => prop_assert_eq!(d.to_bits(), full.to_bits()),
                None => prop_assert!(full > threshold),
            }
        }

        #[test]
        fn block_kernel_agrees_with_per_candidate_kernels(
            seed in 0u64..500, stride in 1usize..70, n in 1usize..10, frac in 0.0f64..1.5,
        ) {
            // The block kernel must agree bit-for-bit with both the lane
            // per-candidate kernel (by construction) and — on the
            // keep/abandon decision and kept values within rounding — the
            // legacy sequential `euclidean_early_abandon`.
            let arena: Vec<f32> = (0..n as u64).flat_map(|i| series(seed + i, stride)).collect();
            let q = series(seed + 1_000, stride);
            let candidates: Vec<u32> = (0..n as u32).collect();
            let ref_full = squared_euclidean_lanes(&q, &arena[..stride]);
            let threshold = ref_full * frac;
            let mut got = Vec::new();
            euclidean_early_abandon_block(&q, &arena, stride, &candidates, threshold, |i, r| {
                got.push((i, r));
            });
            prop_assert_eq!(got.len(), n);
            for (i, r) in got {
                let row = &arena[i as usize * stride..(i as usize + 1) * stride];
                let per = euclidean_early_abandon_lanes(&q, row, threshold);
                prop_assert_eq!(r.map(f64::to_bits), per.map(f64::to_bits));
                // Keep/abandon can only differ from the sequential kernel
                // on rounding ties at the threshold, which the uniform
                // random inputs here do not produce.
                let legacy = euclidean_early_abandon(&q, row, threshold);
                prop_assert_eq!(r.is_some(), legacy.is_some());
            }
        }

        #[test]
        fn paa_kernel_bit_identical_to_scalar_oracle(
            seed in 0u64..1_000, w4 in 1usize..9,
        ) {
            let w = w4 * 4;
            let q: Vec<f64> = series(seed, w).into_iter().map(|v| v as f64).collect();
            let c: Vec<f64> = series(seed + 5, w).into_iter().map(|v| v as f64).collect();
            let weights: Vec<f64> = (0..w).map(|i| 1.0 + (i % 3) as f64).collect();
            prop_assert_eq!(
                paa_lower_bound_sq(&weights, &q, &c).to_bits(),
                paa_lower_bound_sq_scalar(&weights, &q, &c).to_bits()
            );
        }
    }
}
