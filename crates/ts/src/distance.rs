//! Euclidean distance kernels (Definition 2 of the paper).

use crate::error::TsError;
use crate::series::TimeSeries;

/// Squared Euclidean distance between two equal-length slices, accumulated
/// in `f64`.
///
/// This is the hot kernel behind every refine step; it is kept panic-free in
/// release builds by truncating to the shorter length, but a length mismatch
/// is always a caller bug, so debug builds assert on it. Callers that need a
/// recoverable error should use [`euclidean`].
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(
        a.len(),
        b.len(),
        "squared_euclidean on mismatched lengths"
    );
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

/// Euclidean distance between two series (Definition 2).
///
/// # Errors
/// Returns [`TsError::LengthMismatch`] if the series lengths differ.
pub fn euclidean(a: &TimeSeries, b: &TimeSeries) -> Result<f64, TsError> {
    if a.len() != b.len() {
        return Err(TsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(squared_euclidean(a.values(), b.values()).sqrt())
}

/// Early-abandoning squared Euclidean distance.
///
/// Accumulates the squared distance and returns `None` as soon as the
/// running sum exceeds `threshold_sq` — the classic optimization for kNN
/// refinement where `threshold_sq` is the squared distance of the current
/// k-th best candidate. Returns `Some(distance_squared)` when the full
/// distance is within the threshold.
#[inline]
pub fn euclidean_early_abandon(a: &[f32], b: &[f32], threshold_sq: f64) -> Option<f64> {
    let mut acc = 0.0f64;
    // Process in strides of 8 so the threshold check does not dominate.
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for (x, y) in ca.iter().zip(cb.iter()) {
            let d = *x as f64 - *y as f64;
            acc += d * d;
        }
        if acc > threshold_sq {
            return None;
        }
    }
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        let d = *x as f64 - *y as f64;
        acc += d * d;
    }
    if acc > threshold_sq {
        None
    } else {
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_distance_basic() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn euclidean_basic() {
        let a = TimeSeries::new(vec![0.0, 0.0]);
        let b = TimeSeries::new(vec![3.0, 4.0]);
        assert_eq!(euclidean(&a, &b).unwrap(), 5.0);
    }

    #[test]
    fn euclidean_zero_for_identical() {
        let a = TimeSeries::new(vec![1.5, -2.0, 0.25]);
        assert_eq!(euclidean(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn euclidean_length_mismatch() {
        let a = TimeSeries::new(vec![1.0]);
        let b = TimeSeries::new(vec![1.0, 2.0]);
        assert_eq!(
            euclidean(&a, &b),
            Err(TsError::LengthMismatch { left: 1, right: 2 })
        );
    }

    #[test]
    fn euclidean_is_symmetric() {
        let a = TimeSeries::new(vec![1.0, 2.0, 3.0, 4.0]);
        let b = TimeSeries::new(vec![-1.0, 0.5, 2.0, 8.0]);
        assert_eq!(euclidean(&a, &b).unwrap(), euclidean(&b, &a).unwrap());
    }

    #[test]
    fn early_abandon_within_threshold_matches_full() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.1).collect();
        let b: Vec<f32> = (0..37).map(|i| i as f32 * 0.1 + 0.5).collect();
        let full = squared_euclidean(&a, &b);
        let ea = euclidean_early_abandon(&a, &b, full + 1e-9).unwrap();
        assert!((ea - full).abs() < 1e-9);
    }

    #[test]
    fn early_abandon_bails_over_threshold() {
        let a = vec![0.0f32; 64];
        let b = vec![10.0f32; 64];
        assert_eq!(euclidean_early_abandon(&a, &b, 1.0), None);
    }

    #[test]
    fn early_abandon_exact_threshold_is_kept() {
        // Sum exactly equal to the threshold should be kept (not abandoned).
        let a = vec![0.0f32; 4];
        let b = vec![1.0f32; 4];
        assert_eq!(euclidean_early_abandon(&a, &b, 4.0), Some(4.0));
    }

    #[test]
    fn early_abandon_handles_remainder_lengths() {
        // Lengths not divisible by the stride of 8.
        for len in [1usize, 7, 8, 9, 15, 17] {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
            let full = squared_euclidean(&a, &b);
            assert_eq!(
                euclidean_early_abandon(&a, &b, full),
                Some(full),
                "len {len}"
            );
        }
    }
}
