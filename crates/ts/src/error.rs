//! Error type for time-series primitive operations.

use std::fmt;

/// Errors produced by time-series primitive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsError {
    /// Two series of different lengths were given to an operation that
    /// requires equal lengths (e.g. Euclidean distance).
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// An operation that requires a non-empty series was given an empty one.
    EmptySeries,
    /// A series contained a non-finite value (NaN or infinity).
    NonFiniteValue {
        /// Index of the first offending value.
        index: usize,
    },
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::LengthMismatch { left, right } => {
                write!(f, "series length mismatch: {left} vs {right}")
            }
            TsError::EmptySeries => write!(f, "operation requires a non-empty series"),
            TsError::NonFiniteValue { index } => {
                write!(f, "series contains a non-finite value at index {index}")
            }
        }
    }
}

impl std::error::Error for TsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TsError::LengthMismatch { left: 3, right: 5 };
        assert_eq!(e.to_string(), "series length mismatch: 3 vs 5");
    }

    #[test]
    fn display_empty() {
        assert_eq!(
            TsError::EmptySeries.to_string(),
            "operation requires a non-empty series"
        );
    }

    #[test]
    fn display_non_finite() {
        assert_eq!(
            TsError::NonFiniteValue { index: 7 }.to_string(),
            "series contains a non-finite value at index 7"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<TsError>();
    }
}
