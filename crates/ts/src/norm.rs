//! Z-normalization.
//!
//! Every dataset in the paper's evaluation is z-normalized before indexing
//! (§VI-A): each series is shifted/scaled to mean 0 and standard deviation 1.

use crate::series::TimeSeries;

/// Minimum standard deviation below which a series is treated as constant;
/// constant series normalize to all zeros (the convention used by the UCR
/// suite and the iSAX reference implementations).
pub const STD_EPSILON: f64 = 1e-8;

/// Mean and (population) standard deviation of a series, in `f64`.
///
/// Returns `(0.0, 0.0)` for an empty series.
pub fn znorm_params(values: &[f32]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = values
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    (mean, var.sqrt())
}

/// Z-normalizes a slice in place.
///
/// Constant (or near-constant, std < [`STD_EPSILON`]) series become all
/// zeros rather than dividing by ~0.
pub fn z_normalize_in_place(values: &mut [f32]) {
    let (mean, std) = znorm_params(values);
    if std < STD_EPSILON {
        values.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    for v in values.iter_mut() {
        *v = ((*v as f64 - mean) / std) as f32;
    }
}

/// Returns a z-normalized copy of the series.
pub fn z_normalize(ts: &TimeSeries) -> TimeSeries {
    let mut values = ts.values().to_vec();
    z_normalize_in_place(&mut values);
    TimeSeries::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn params_of_known_series() {
        let (mean, std) = znorm_params(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_close(mean, 5.0, 1e-12);
        assert_close(std, 2.0, 1e-12);
    }

    #[test]
    fn params_of_empty() {
        assert_eq!(znorm_params(&[]), (0.0, 0.0));
    }

    #[test]
    fn normalized_has_zero_mean_unit_std() {
        let mut v: Vec<f32> = (0..100).map(|i| (i as f32).sin() * 3.0 + 7.0).collect();
        z_normalize_in_place(&mut v);
        let (mean, std) = znorm_params(&v);
        assert_close(mean, 0.0, 1e-6);
        assert_close(std, 1.0, 1e-6);
    }

    #[test]
    fn constant_series_becomes_zeros() {
        let mut v = vec![5.0f32; 10];
        z_normalize_in_place(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn near_constant_series_becomes_zeros() {
        let mut v = vec![5.0f32; 10];
        v[0] = 5.0 + 1e-12;
        z_normalize_in_place(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn z_normalize_copies() {
        let ts = TimeSeries::new(vec![1.0, 2.0, 3.0]);
        let normed = z_normalize(&ts);
        // Original untouched.
        assert_eq!(ts.values(), &[1.0, 2.0, 3.0]);
        let (mean, _) = znorm_params(normed.values());
        assert_close(mean, 0.0, 1e-6);
    }

    #[test]
    fn normalization_is_idempotent_up_to_f32() {
        let mut v: Vec<f32> = (0..64).map(|i| ((i * 37) % 11) as f32).collect();
        z_normalize_in_place(&mut v);
        let first = v.clone();
        z_normalize_in_place(&mut v);
        for (a, b) in first.iter().zip(&v) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
