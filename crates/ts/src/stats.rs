//! Summary statistics and value-frequency histograms.
//!
//! These back the dataset-distribution profiling of Figure 9 (the datasets
//! are "chosen to cover a wide range of skewness with respect to the values'
//! occurrence frequencies") and the partition-size MSE metric of Figure 17c.

/// Streaming summary statistics over `f64` observations: count, mean,
/// variance (population), min, max, and third central moment for skewness.
#[derive(Debug, Clone, Default)]
pub struct SummaryStats {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    min: f64,
    max: f64,
}

impl SummaryStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SummaryStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a single observation (Welford/Terriberry update).
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every value of a slice.
    pub fn extend_from_slice(&mut self, xs: &[f32]) {
        for &x in xs {
            self.push(x as f64);
        }
    }

    /// Merges another accumulator into this one (order-insensitive).
    pub fn merge(&mut self, other: &SummaryStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta * delta * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta.powi(3) * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if empty.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population skewness (g1), or 0 for degenerate distributions.
    pub fn skewness(&self) -> f64 {
        if self.n == 0 || self.m2 <= 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (self.m3 / n) / (self.m2 / n).powf(1.5)
    }

    /// Minimum observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Convenience: population skewness of a slice.
pub fn skewness(xs: &[f32]) -> f64 {
    let mut s = SummaryStats::new();
    s.extend_from_slice(xs);
    s.skewness()
}

/// A fixed-width histogram over a value range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Merges a compatible histogram (same range and bin count).
    ///
    /// # Panics
    /// Panics if the histograms are not compatible.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo mismatch");
        assert_eq!(self.hi, other.hi, "histogram hi mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Center value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Normalized per-bin frequencies (each in `[0,1]`, ignoring
    /// under/overflow). Empty histogram yields zeros.
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.counts.iter().sum::<u64>();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// Builds a histogram of a slice over `[lo, hi)`.
pub fn histogram(xs: &[f32], lo: f64, hi: f64, bins: usize) -> Histogram {
    let mut h = Histogram::new(lo, hi, bins);
    for &x in xs {
        h.push(x as f64);
    }
    h
}

/// Mean squared error between two equal-length probability vectors — the
/// paper's Figure 17(c) metric over partition-size distributions.
///
/// # Panics
/// Panics if lengths differ.
pub fn distribution_mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distribution length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn summary_of_known_values() {
        let mut s = SummaryStats::new();
        s.extend_from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert_close(s.mean(), 5.0, 1e-12);
        assert_close(s.std_dev(), 2.0, 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_zeroish() {
        let s = SummaryStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.skewness(), 0.0);
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed data has positive skewness.
        let right: Vec<f32> = vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 10.0];
        assert!(skewness(&right) > 0.5);
        // Symmetric data has near-zero skewness.
        let sym: Vec<f32> = vec![-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&sym).abs() < 1e-9);
        // Left-skewed is negative.
        let left: Vec<f32> = right.iter().map(|v| -v).collect();
        assert!(skewness(&left) < -0.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f32> = (0..50).map(|i| ((i * 31) % 17) as f32).collect();
        let mut whole = SummaryStats::new();
        whole.extend_from_slice(&xs);
        let mut a = SummaryStats::new();
        a.extend_from_slice(&xs[..20]);
        let mut b = SummaryStats::new();
        b.extend_from_slice(&xs[20..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_close(a.mean(), whole.mean(), 1e-9);
        assert_close(a.variance(), whole.variance(), 1e-9);
        assert_close(a.skewness(), whole.skewness(), 1e-9);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = SummaryStats::new();
        let mut b = SummaryStats::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = SummaryStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn histogram_binning() {
        let h = histogram(&[0.0, 0.5, 0.99, 1.0, -0.1, 2.5], 0.0, 2.0, 4);
        assert_eq!(h.counts(), &[1, 2, 1, 0]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_bin_centers() {
        let h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.bin_center(0), 0.5);
        assert_eq!(h.bin_center(3), 3.5);
    }

    #[test]
    fn histogram_merge() {
        let mut a = histogram(&[0.1, 0.2], 0.0, 1.0, 2);
        let b = histogram(&[0.7], 0.0, 1.0, 2);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn histogram_merge_incompatible_panics() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 1.0, 3);
        a.merge(&b);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let h = histogram(&[0.1, 0.3, 0.6, 0.9], 0.0, 1.0, 4);
        let f = h.frequencies();
        assert_close(f.iter().sum::<f64>(), 1.0, 1e-12);
    }

    #[test]
    fn frequencies_of_empty_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.frequencies(), vec![0.0; 3]);
    }

    #[test]
    fn mse_basics() {
        assert_eq!(distribution_mse(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_close(distribution_mse(&[1.0, 0.0], &[0.0, 1.0]), 1.0, 1e-12);
    }
}
