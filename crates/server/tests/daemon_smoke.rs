//! End-to-end smoke: boot a daemon on port 0, run one query per path
//! over real TCP, check each response byte-for-byte against the shared
//! protocol encoders fed by direct in-process calls, scrape `/metrics`,
//! and shut down gracefully.

use std::sync::Arc;

use tardis_cluster::{Cluster, ClusterConfig};
use tardis_core::{
    exact_knn, exact_match, knn_approximate, knn_batch, range_query, KnnStrategy, TardisConfig,
    TardisIndex,
};
use tardis_data::{write_dataset, RandomWalk, SeriesGen};
use tardis_server::{
    protocol, scrape_metrics, Client, Op, QueryServer, Request, ServerConfig,
};

#[test]
fn daemon_answers_every_query_path_and_shuts_down() {
    let cluster = Arc::new(
        Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap(),
    );
    let gen = RandomWalk::with_len(11, 48);
    write_dataset(&cluster, "ds", &gen, 1_200, 150).unwrap();
    let config = TardisConfig {
        g_max_size: 300,
        l_max_size: 50,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "ds", &config).unwrap();
    let index = Arc::new(index);

    let handle = QueryServer::start(
        Arc::clone(&cluster),
        Arc::clone(&index),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let q = gen.series(37);
    let values: Vec<f32> = q.values().to_vec();

    // Exact match.
    let mut req = Request::new(1, Op::Exact);
    req.query = values.clone();
    let got = client.send(&req).unwrap();
    let want = protocol::encode_exact(1, &exact_match(&index, &cluster, &q, true).unwrap(), None);
    assert_eq!(got, want);

    // Approximate kNN.
    let mut req = Request::new(2, Op::Knn);
    req.query = values.clone();
    req.k = 5;
    req.strategy = KnnStrategy::OnePartition;
    let got = client.send(&req).unwrap();
    let want = protocol::encode_knn(
        2,
        &knn_approximate(&index, &cluster, &q, 5, KnnStrategy::OnePartition).unwrap(),
        None,
    );
    assert_eq!(got, want);

    // Exact kNN.
    let mut req = Request::new(3, Op::ExactKnn);
    req.query = values.clone();
    req.k = 3;
    let got = client.send(&req).unwrap();
    let want = protocol::encode_exact_knn(3, &exact_knn(&index, &cluster, &q, 3).unwrap(), None);
    assert_eq!(got, want);

    // Range.
    let mut req = Request::new(4, Op::Range);
    req.query = values.clone();
    req.epsilon = 2.5;
    let got = client.send(&req).unwrap();
    let want = protocol::encode_range(4, &range_query(&index, &cluster, &q, 2.5).unwrap(), None);
    assert_eq!(got, want);

    // Shared-scan batch.
    let batch: Vec<Vec<f32>> = [5u64, 90, 411]
        .iter()
        .map(|&rid| gen.series(rid).values().to_vec())
        .collect();
    let mut req = Request::new(5, Op::Batch);
    req.queries = batch.clone();
    req.k = 4;
    let got = client.send(&req).unwrap();
    let series: Vec<_> = [5u64, 90, 411].iter().map(|&rid| gen.series(rid)).collect();
    let want = protocol::encode_batch(
        5,
        &knn_batch(&index, &cluster, &series, 4, KnnStrategy::MultiPartition).unwrap(),
        None,
    );
    assert_eq!(got, want);

    // Bad request still gets a response, not a hang.
    let got = client.send_line(r#"{"id":9,"op":"exact"}"#).unwrap();
    assert!(got.contains("\"error\":\"BadRequest\""), "{got}");

    // The same port speaks Prometheus.
    let text = scrape_metrics(&addr).unwrap();
    assert!(text.contains("tardis_queries_served"), "{text}");
    assert!(text.contains("# TYPE tardis_queue_depth gauge"), "{text}");

    handle.shutdown();
    // Served count covers the five queries (BadRequest is rejected
    // before admission).
    assert_eq!(cluster.metrics().snapshot().queries_served, 5);
    assert!(Client::connect(&addr).is_err() || {
        // Accept raced the shutdown; either way no response can arrive.
        let mut c = Client::connect(&addr).unwrap();
        c.send_line(r#"{"id":1,"op":"exact","query":[1]}"#).is_err()
    });
}
