#![warn(missing_docs)]

//! The resident TARDIS query daemon.
//!
//! The CLI pays the full index-open cost — mmap-free block reads, Bloom
//! sidecar loads, Tardis-G deserialization — on **every** invocation. A
//! deployment serves thousands of queries against one build, so this
//! crate keeps everything resident instead: one process holds the
//! [`TardisIndex`](tardis_core::TardisIndex) (Tardis-G plus partition
//! metadata), the SeriesBlock arenas reachable through the shared
//! [`BlockCache`](tardis_cluster) pins, and the cluster's worker pool,
//! and serves concurrent clients over a line-delimited-JSON TCP
//! protocol.
//!
//! The moving parts, each its own module:
//!
//! * [`json`] — a dependency-free JSON value with a byte-deterministic
//!   emitter (the equivalence tests compare raw response lines).
//! * [`protocol`] — request/response codecs shared by the daemon, the
//!   client, and the test oracle.
//! * [`admission`] — the bounded in-flight gate: priority queue,
//!   per-query deadlines, explicit `Overloaded` shedding, live
//!   scheduler gauges.
//! * [`server`] — the accept loop, connection threads, the `/metrics`
//!   endpoint, and graceful SIGTERM shutdown.
//! * [`client`] — a blocking client used by the CLI and the tests.
//!
//! Partition work inside each query runs on the cluster's work-stealing
//! [`WorkerPool`](tardis_cluster::WorkerPool) scheduler, so one slow
//! partition delays only queries that touch it; the admission gate
//! bounds memory and tail latency under overload.

pub mod admission;
pub mod client;
pub mod hotset;
pub mod json;
pub mod protocol;
pub mod server;

pub use admission::{Admission, Admitted, Permit};
pub use client::{scrape_metrics, Client};
pub use hotset::{HotSetConfig, HotSetTracker};
pub use protocol::{Op, Request};
pub use server::{
    install_signal_handlers, sigterm_flag, CompactorConfig, QueryServer, ServerConfig,
    ServerHandle,
};
