//! Hot-partition detection and adaptive re-replication.
//!
//! Under a skewed (Zipfian) query mix the same few partitions absorb
//! most of the load. Replica-aware routing spreads their reads over the
//! copies that exist, but the store default (replication 2) caps the
//! spread — the throughput fix is to give the hot set *more copies*.
//! Odyssey makes the same observation for distributed data-series
//! search: replication is the load-balancing mechanism, not just the
//! durability one.
//!
//! The pieces:
//!
//! * [`HotSetTracker`] — pure detection state: feeds on the cluster's
//!   cumulative per-partition access counters (one access per physical
//!   partition load, metered in `TardisIndex::load_partition`), keeps an
//!   EWMA of per-interval deltas, and returns the top-k partitions whose
//!   rate clears a floor. Deterministic: ties rank by partition id.
//! * [`HotSetConfig`] — the knobs, carried on
//!   [`ServerConfig`](crate::ServerConfig).
//! * The background pass itself lives in the server: every interval it
//!   observes the tracker, publishes the `tardis_hot_partitions` gauge,
//!   and raises newly hot partitions' replication factor via
//!   `Dfs::replicate_file` — the scrub top-up machinery, so copies land
//!   tmp+rename and routing widens immediately.
//!
//! Detection is windowed on *deltas*, not totals, so a partition that
//! was hot an hour ago decays out of the set instead of holding its
//! slot forever; re-replication itself is monotone (factors are never
//! lowered), which keeps the data path simple and answers stable.

use std::collections::BTreeMap;
use std::time::Duration;

/// Knobs for hot-set detection and adaptive re-replication.
#[derive(Debug, Clone)]
pub struct HotSetConfig {
    /// How often the background pass samples access counters.
    pub interval: Duration,
    /// EWMA smoothing factor in `(0, 1]`: the weight of the newest
    /// interval's access delta (1.0 = no smoothing).
    pub ewma_alpha: f64,
    /// At most this many partitions are hot at once.
    pub top_k: usize,
    /// Minimum smoothed accesses-per-interval before a partition can be
    /// called hot (keeps idle stores from re-replicating noise).
    pub min_accesses: f64,
    /// Replication factor hot partitions are raised to (clamped to the
    /// datanode count by the store).
    pub target_replication: u32,
}

impl Default for HotSetConfig {
    fn default() -> HotSetConfig {
        HotSetConfig {
            interval: Duration::from_millis(200),
            ewma_alpha: 0.5,
            top_k: 4,
            min_accesses: 4.0,
            target_replication: 3,
        }
    }
}

/// EWMA-based hot-set detector over cumulative access counters.
///
/// Feed it the cluster's `partition_accesses()` snapshot once per
/// interval; it differences against the previous snapshot, folds the
/// deltas into per-partition EWMAs, and returns the current hot set.
#[derive(Debug)]
pub struct HotSetTracker {
    alpha: f64,
    top_k: usize,
    min_accesses: f64,
    ewma: BTreeMap<u32, f64>,
    last: BTreeMap<u32, u64>,
}

impl HotSetTracker {
    /// Creates a tracker with `config`'s detection knobs.
    pub fn new(config: &HotSetConfig) -> HotSetTracker {
        HotSetTracker {
            alpha: config.ewma_alpha.clamp(f64::MIN_POSITIVE, 1.0),
            top_k: config.top_k,
            min_accesses: config.min_accesses,
            ewma: BTreeMap::new(),
            last: BTreeMap::new(),
        }
    }

    /// Feeds one interval's *cumulative* per-partition access counters
    /// and returns the hot set: the top-k partitions by smoothed
    /// per-interval access rate, among those clearing the floor, ranked
    /// by rate descending with ties broken by ascending partition id.
    pub fn observe(&mut self, cumulative: &[(u32, u64)]) -> Vec<u32> {
        // Delta against the previous snapshot; partitions quiet this
        // interval still decay via a zero delta.
        let mut deltas: BTreeMap<u32, u64> = BTreeMap::new();
        for &(pid, total) in cumulative {
            let prev = self.last.insert(pid, total).unwrap_or(0);
            deltas.insert(pid, total.saturating_sub(prev));
        }
        let pids: std::collections::BTreeSet<u32> = self
            .ewma
            .keys()
            .copied()
            .chain(deltas.keys().copied())
            .collect();
        for pid in pids {
            let delta = deltas.get(&pid).copied().unwrap_or(0) as f64;
            let slot = self.ewma.entry(pid).or_insert(0.0);
            *slot = self.alpha * delta + (1.0 - self.alpha) * *slot;
        }
        let mut ranked: Vec<(u32, f64)> = self
            .ewma
            .iter()
            .filter(|&(_, &rate)| rate >= self.min_accesses)
            .map(|(&pid, &rate)| (pid, rate))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(self.top_k);
        ranked.into_iter().map(|(pid, _)| pid).collect()
    }

    /// Current smoothed access rate of `pid` (0 when never seen).
    pub fn rate(&self, pid: u32) -> f64 {
        self.ewma.get(&pid).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(top_k: usize, min: f64, alpha: f64) -> HotSetTracker {
        HotSetTracker::new(&HotSetConfig {
            top_k,
            min_accesses: min,
            ewma_alpha: alpha,
            ..HotSetConfig::default()
        })
    }

    #[test]
    fn top_k_by_rate_with_floor() {
        let mut t = tracker(2, 5.0, 1.0);
        let hot = t.observe(&[(0, 100), (1, 40), (2, 3), (3, 60)]);
        // Partition 2 misses the floor; 0 and 3 out-rate 1.
        assert_eq!(hot, vec![0, 3]);
    }

    #[test]
    fn deltas_not_totals_drive_the_ranking() {
        let mut t = tracker(1, 1.0, 1.0);
        assert_eq!(t.observe(&[(0, 1000), (1, 10)]), vec![0]);
        // Next interval: 0 goes quiet, 1 takes all the traffic. With
        // alpha=1 the hot set flips immediately.
        assert_eq!(t.observe(&[(0, 1000), (1, 500)]), vec![1]);
        assert_eq!(t.rate(0), 0.0);
    }

    #[test]
    fn ewma_smooths_and_decays() {
        let mut t = tracker(4, 0.0, 0.5);
        t.observe(&[(7, 100)]);
        assert_eq!(t.rate(7), 50.0);
        // Quiet intervals decay the rate geometrically, even when the
        // partition stops appearing in the snapshot at all.
        t.observe(&[(7, 100)]);
        assert_eq!(t.rate(7), 25.0);
        t.observe(&[]);
        assert_eq!(t.rate(7), 12.5);
    }

    #[test]
    fn ties_rank_by_partition_id() {
        let mut t = tracker(2, 1.0, 1.0);
        let hot = t.observe(&[(9, 50), (2, 50), (5, 50)]);
        assert_eq!(hot, vec![2, 5]);
    }

    #[test]
    fn empty_and_idle_observations_yield_no_hot_set() {
        let mut t = tracker(4, 1.0, 0.5);
        assert!(t.observe(&[]).is_empty());
        // A cumulative snapshot with no growth is an idle interval.
        t.observe(&[(1, 10)]);
        for _ in 0..10 {
            t.observe(&[(1, 10)]);
        }
        assert!(t.observe(&[(1, 10)]).is_empty(), "idle partition never decayed");
    }
}
