//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One TCP connection carries a sequence of newline-terminated JSON
//! request objects; the daemon answers each with exactly one
//! newline-terminated JSON response object, in request order per
//! connection. A line starting with `GET ` switches the connection to a
//! one-shot HTTP response carrying the Prometheus metrics text instead
//! (see [`crate::server`]).
//!
//! # Request fields
//!
//! | field         | type        | ops          | default           |
//! |---------------|-------------|--------------|-------------------|
//! | `id`          | number      | all          | required          |
//! | `op`          | string      | all          | required — `"exact"`, `"knn"`, `"exact-knn"`, `"range"`, `"batch"`, `"ingest"`, `"compact"` |
//! | `query`       | `[number]`  | single ops   | required          |
//! | `queries`     | `[[number]]`| `batch`      | required          |
//! | `records`     | `[[rid,[number]]]` | `ingest` | required       |
//! | `k`           | number      | kNN ops      | `1`               |
//! | `strategy`    | string      | `knn`/`batch`| `"multi"` (`"target"`, `"one"`) |
//! | `epsilon`     | number      | `range`      | `0`               |
//! | `no_bloom`    | bool        | `exact`      | `false`           |
//! | `priority`    | number      | all          | `0` (higher admits first) |
//! | `deadline_ms` | number      | all          | server default    |
//!
//! # Response shapes
//!
//! Every response carries `id` (echoed), `ok`, and `op`. Successful
//! answers add the op-specific payload; under a degraded-serving policy
//! they also carry `partial`, `skipped`, and `exact` from the
//! [`Completeness`] report. Failures carry `error` (a stable code:
//! `Overloaded`, `DeadlineExceeded`, `BadRequest`, `QueryError`) and
//! `detail`.
//!
//! The encoders here are the **single source of truth** for response
//! bytes: the daemon calls them, and the equivalence tests call the same
//! functions on sequentially computed answers, then compare raw lines.

use crate::json::{parse, JsonError, JsonValue};
use tardis_core::{
    Completeness, ExactKnnAnswer, ExactMatchOutcome, KnnAnswer, KnnStrategy, RangeAnswer,
};
use tardis_ts::TimeSeries;

/// A query operation, one per query path the daemon serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Exact-match lookup (§V-A).
    Exact,
    /// Approximate kNN (§V-B).
    Knn,
    /// Exact kNN (approximate seed + bound-ordered refine).
    ExactKnn,
    /// Exact ε-range query.
    Range,
    /// Shared-scan kNN batch through the partition-task scheduler.
    Batch,
    /// Continuous ingest: seal the carried records into a delta partition.
    Ingest,
    /// Fold every sealed delta into the base partitions.
    Compact,
}

impl Op {
    /// The wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Exact => "exact",
            Op::Knn => "knn",
            Op::ExactKnn => "exact-knn",
            Op::Range => "range",
            Op::Batch => "batch",
            Op::Ingest => "ingest",
            Op::Compact => "compact",
        }
    }

    fn from_name(s: &str) -> Option<Op> {
        match s {
            "exact" => Some(Op::Exact),
            "knn" => Some(Op::Knn),
            "exact-knn" => Some(Op::ExactKnn),
            "range" => Some(Op::Range),
            "batch" => Some(Op::Batch),
            "ingest" => Some(Op::Ingest),
            "compact" => Some(Op::Compact),
            _ => None,
        }
    }
}

/// A decoded request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen id, echoed verbatim in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// The query series (single-query ops).
    pub query: Vec<f32>,
    /// The query series (batch op).
    pub queries: Vec<Vec<f32>>,
    /// Records to seal into a delta (`ingest` op): `(rid, values)`.
    pub records: Vec<(u64, Vec<f32>)>,
    /// Neighbor count for kNN ops.
    pub k: usize,
    /// Partition-scope strategy for approximate kNN.
    pub strategy: KnnStrategy,
    /// Radius for range queries.
    pub epsilon: f64,
    /// Whether exact match may use the Bloom filter.
    pub use_bloom: bool,
    /// Admission priority; higher queues ahead of lower.
    pub priority: u8,
    /// Admission deadline; `None` uses the server default.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A request template: fill in `op` plus the fields it reads.
    pub fn new(id: u64, op: Op) -> Request {
        Request {
            id,
            op,
            query: Vec::new(),
            queries: Vec::new(),
            records: Vec::new(),
            k: 1,
            strategy: KnnStrategy::MultiPartition,
            epsilon: 0.0,
            use_bloom: true,
            priority: 0,
            deadline_ms: None,
        }
    }

    /// Decodes one request line.
    ///
    /// # Errors
    /// A human-readable description of the first problem found; the
    /// caller wraps it in a `BadRequest` response.
    pub fn from_line(line: &str) -> Result<Request, String> {
        let v = parse(line).map_err(|e: JsonError| e.to_string())?;
        let id = v
            .get("id")
            .and_then(JsonValue::as_u64)
            .ok_or("missing or invalid 'id'")?;
        let op = v
            .get("op")
            .and_then(JsonValue::as_str)
            .and_then(Op::from_name)
            .ok_or("missing or unknown 'op'")?;
        let mut req = Request::new(id, op);

        if let Some(q) = v.get("query") {
            req.query = series_values(q).ok_or("'query' must be an array of numbers")?;
        }
        if let Some(qs) = v.get("queries") {
            let arr = qs.as_arr().ok_or("'queries' must be an array")?;
            req.queries = arr
                .iter()
                .map(series_values)
                .collect::<Option<Vec<_>>>()
                .ok_or("'queries' must be arrays of numbers")?;
        }
        if let Some(rs) = v.get("records") {
            let arr = rs.as_arr().ok_or("'records' must be an array")?;
            req.records = arr
                .iter()
                .map(|r| {
                    let pair = r.as_arr()?;
                    if pair.len() != 2 {
                        return None;
                    }
                    let rid = pair[0].as_u64()?;
                    let values = series_values(&pair[1])?;
                    Some((rid, values))
                })
                .collect::<Option<Vec<_>>>()
                .ok_or("'records' must be [rid, [values...]] pairs")?;
        }
        if let Some(k) = v.get("k") {
            req.k = k.as_u64().ok_or("'k' must be a non-negative integer")? as usize;
        }
        if let Some(s) = v.get("strategy") {
            req.strategy = match s.as_str() {
                Some("target") => KnnStrategy::TargetNode,
                Some("one") => KnnStrategy::OnePartition,
                Some("multi") => KnnStrategy::MultiPartition,
                _ => return Err("'strategy' must be \"target\", \"one\", or \"multi\"".into()),
            };
        }
        if let Some(e) = v.get("epsilon") {
            req.epsilon = e.as_f64().ok_or("'epsilon' must be a number")?;
        }
        if let Some(b) = v.get("no_bloom") {
            req.use_bloom = !b.as_bool().ok_or("'no_bloom' must be a boolean")?;
        }
        if let Some(p) = v.get("priority") {
            let p = p.as_u64().ok_or("'priority' must be a non-negative integer")?;
            req.priority = p.min(u64::from(u8::MAX)) as u8;
        }
        if let Some(d) = v.get("deadline_ms") {
            req.deadline_ms = Some(d.as_u64().ok_or("'deadline_ms' must be a non-negative integer")?);
        }

        match op {
            Op::Batch => {
                if req.queries.is_empty() {
                    return Err("'batch' requires a non-empty 'queries'".into());
                }
            }
            Op::Ingest => {
                if req.records.is_empty() {
                    return Err("'ingest' requires a non-empty 'records'".into());
                }
            }
            Op::Compact => {}
            _ => {
                if req.query.is_empty() {
                    return Err(format!("'{}' requires a non-empty 'query'", op.name()));
                }
            }
        }
        Ok(req)
    }

    /// Encodes the request as a wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut pairs = vec![
            ("id".to_string(), JsonValue::Num(self.id as f64)),
            ("op".to_string(), JsonValue::Str(self.op.name().to_string())),
        ];
        if !self.query.is_empty() {
            pairs.push(("query".to_string(), values_json(&self.query)));
        }
        if !self.queries.is_empty() {
            pairs.push((
                "queries".to_string(),
                JsonValue::Arr(self.queries.iter().map(|q| values_json(q)).collect()),
            ));
        }
        if !self.records.is_empty() {
            pairs.push((
                "records".to_string(),
                JsonValue::Arr(
                    self.records
                        .iter()
                        .map(|(rid, values)| {
                            JsonValue::Arr(vec![
                                JsonValue::Num(*rid as f64),
                                values_json(values),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        match self.op {
            Op::Knn | Op::ExactKnn | Op::Batch => {
                pairs.push(("k".to_string(), JsonValue::Num(self.k as f64)));
            }
            Op::Range => {
                pairs.push(("epsilon".to_string(), JsonValue::Num(self.epsilon)));
            }
            Op::Exact | Op::Ingest | Op::Compact => {}
        }
        if matches!(self.op, Op::Knn | Op::Batch) {
            let name = match self.strategy {
                KnnStrategy::TargetNode => "target",
                KnnStrategy::OnePartition => "one",
                KnnStrategy::MultiPartition => "multi",
            };
            pairs.push(("strategy".to_string(), JsonValue::Str(name.to_string())));
        }
        if !self.use_bloom {
            pairs.push(("no_bloom".to_string(), JsonValue::Bool(true)));
        }
        if self.priority != 0 {
            pairs.push(("priority".to_string(), JsonValue::Num(f64::from(self.priority))));
        }
        if let Some(d) = self.deadline_ms {
            pairs.push(("deadline_ms".to_string(), JsonValue::Num(d as f64)));
        }
        JsonValue::Obj(pairs).to_string()
    }

    /// The single query as a [`TimeSeries`].
    pub fn series(&self) -> TimeSeries {
        TimeSeries::new(self.query.clone())
    }

    /// The batch queries as [`TimeSeries`] values.
    pub fn batch_series(&self) -> Vec<TimeSeries> {
        self.queries.iter().map(|q| TimeSeries::new(q.clone())).collect()
    }

    /// The carried ingest payload as [`Record`](tardis_ts::Record) values.
    pub fn record_values(&self) -> Vec<tardis_ts::Record> {
        self.records
            .iter()
            .map(|(rid, values)| tardis_ts::Record::new(*rid, TimeSeries::new(values.clone())))
            .collect()
    }
}

fn series_values(v: &JsonValue) -> Option<Vec<f32>> {
    v.as_arr()?
        .iter()
        .map(|x| x.as_f64().map(|f| f as f32))
        .collect()
}

fn values_json(values: &[f32]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::Num(f64::from(v))).collect())
}

fn response_head(id: u64, op: Op) -> Vec<(String, JsonValue)> {
    vec![
        ("id".to_string(), JsonValue::Num(id as f64)),
        ("ok".to_string(), JsonValue::Bool(true)),
        ("op".to_string(), JsonValue::Str(op.name().to_string())),
    ]
}

fn push_completeness(pairs: &mut Vec<(String, JsonValue)>, completeness: Option<&Completeness>) {
    if let Some(c) = completeness {
        pairs.push(("partial".to_string(), JsonValue::Bool(!c.is_complete())));
        pairs.push((
            "skipped".to_string(),
            JsonValue::Arr(
                c.partitions_skipped
                    .iter()
                    .map(|&p| JsonValue::Num(f64::from(p)))
                    .collect(),
            ),
        ));
        pairs.push(("exact".to_string(), JsonValue::Bool(c.exact)));
    }
}

fn neighbors_json(neighbors: &[(f64, u64)]) -> JsonValue {
    JsonValue::Arr(
        neighbors
            .iter()
            .map(|&(d, rid)| {
                JsonValue::Arr(vec![JsonValue::Num(d), JsonValue::Num(rid as f64)])
            })
            .collect(),
    )
}

/// Encodes an exact-match answer.
pub fn encode_exact(
    id: u64,
    outcome: &ExactMatchOutcome,
    completeness: Option<&Completeness>,
) -> String {
    let mut pairs = response_head(id, Op::Exact);
    pairs.push((
        "matches".to_string(),
        JsonValue::Arr(
            outcome
                .matches
                .iter()
                .map(|&r| JsonValue::Num(r as f64))
                .collect(),
        ),
    ));
    pairs.push((
        "bloom_rejected".to_string(),
        JsonValue::Bool(outcome.bloom_rejected),
    ));
    push_completeness(&mut pairs, completeness);
    JsonValue::Obj(pairs).to_string()
}

/// Encodes an approximate-kNN answer.
pub fn encode_knn(id: u64, answer: &KnnAnswer, completeness: Option<&Completeness>) -> String {
    let mut pairs = response_head(id, Op::Knn);
    pairs.push(("neighbors".to_string(), neighbors_json(&answer.neighbors)));
    push_completeness(&mut pairs, completeness);
    JsonValue::Obj(pairs).to_string()
}

/// Encodes an exact-kNN answer.
pub fn encode_exact_knn(
    id: u64,
    answer: &ExactKnnAnswer,
    completeness: Option<&Completeness>,
) -> String {
    let mut pairs = response_head(id, Op::ExactKnn);
    let flat: Vec<(f64, u64)> = answer.neighbors.iter().map(|n| (n.distance, n.rid)).collect();
    pairs.push(("neighbors".to_string(), neighbors_json(&flat)));
    push_completeness(&mut pairs, completeness);
    JsonValue::Obj(pairs).to_string()
}

/// Encodes a range-query answer.
pub fn encode_range(id: u64, answer: &RangeAnswer, completeness: Option<&Completeness>) -> String {
    let mut pairs = response_head(id, Op::Range);
    let flat: Vec<(f64, u64)> = answer.matches.iter().map(|n| (n.distance, n.rid)).collect();
    pairs.push(("matches".to_string(), neighbors_json(&flat)));
    push_completeness(&mut pairs, completeness);
    JsonValue::Obj(pairs).to_string()
}

/// Encodes a shared-scan batch-kNN answer.
pub fn encode_batch(id: u64, answers: &[KnnAnswer], completeness: Option<&Completeness>) -> String {
    let mut pairs = response_head(id, Op::Batch);
    pairs.push((
        "answers".to_string(),
        JsonValue::Arr(
            answers
                .iter()
                .map(|a| neighbors_json(&a.neighbors))
                .collect(),
        ),
    ));
    push_completeness(&mut pairs, completeness);
    JsonValue::Obj(pairs).to_string()
}

/// Encodes an ingest acknowledgement: how many records were sealed, the
/// new delta's id, the active delta count, and the manifest version.
pub fn encode_ingest(id: u64, accepted: usize, delta_id: u64, deltas: usize, version: u64) -> String {
    let mut pairs = response_head(id, Op::Ingest);
    pairs.push(("accepted".to_string(), JsonValue::Num(accepted as f64)));
    pairs.push(("delta_id".to_string(), JsonValue::Num(delta_id as f64)));
    pairs.push(("deltas".to_string(), JsonValue::Num(deltas as f64)));
    pairs.push(("version".to_string(), JsonValue::Num(version as f64)));
    JsonValue::Obj(pairs).to_string()
}

/// Encodes a compaction acknowledgement: records folded, deltas folded,
/// base partitions rewritten, and the post-swap manifest version.
pub fn encode_compact(
    id: u64,
    folded: u64,
    deltas_folded: usize,
    partitions_rewritten: usize,
    version: u64,
) -> String {
    let mut pairs = response_head(id, Op::Compact);
    pairs.push(("folded".to_string(), JsonValue::Num(folded as f64)));
    pairs.push((
        "deltas_folded".to_string(),
        JsonValue::Num(deltas_folded as f64),
    ));
    pairs.push((
        "partitions_rewritten".to_string(),
        JsonValue::Num(partitions_rewritten as f64),
    ));
    pairs.push(("version".to_string(), JsonValue::Num(version as f64)));
    JsonValue::Obj(pairs).to_string()
}

/// Encodes a failure. `code` is stable and machine-checkable
/// (`Overloaded`, `DeadlineExceeded`, `BadRequest`, `QueryError`);
/// `detail` is free-form.
pub fn encode_error(id: u64, code: &str, detail: &str) -> String {
    JsonValue::Obj(vec![
        ("id".to_string(), JsonValue::Num(id as f64)),
        ("ok".to_string(), JsonValue::Bool(false)),
        ("error".to_string(), JsonValue::Str(code.to_string())),
        ("detail".to_string(), JsonValue::Str(detail.to_string())),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_the_wire_format() {
        let mut req = Request::new(3, Op::Knn);
        req.query = vec![1.5, -2.0, 0.25];
        req.k = 7;
        req.strategy = KnnStrategy::OnePartition;
        req.priority = 2;
        req.deadline_ms = Some(500);
        let line = req.to_line();
        let back = Request::from_line(&line).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!(back.op, Op::Knn);
        assert_eq!(back.query, req.query);
        assert_eq!(back.k, 7);
        assert_eq!(back.strategy, KnnStrategy::OnePartition);
        assert_eq!(back.priority, 2);
        assert_eq!(back.deadline_ms, Some(500));
        // Re-encoding is the identity: the protocol is canonical.
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn batch_request_requires_queries() {
        let mut req = Request::new(1, Op::Batch);
        req.queries = vec![vec![0.5, 1.0], vec![2.0, 3.0]];
        req.k = 2;
        let back = Request::from_line(&req.to_line()).unwrap();
        assert_eq!(back.queries, req.queries);
        assert!(Request::from_line(r#"{"id":1,"op":"batch"}"#).is_err());
        assert!(Request::from_line(r#"{"id":1,"op":"exact"}"#).is_err());
        assert!(Request::from_line(r#"{"op":"exact","query":[1]}"#).is_err());
        assert!(Request::from_line(r#"{"id":1,"op":"sort","query":[1]}"#).is_err());
    }

    #[test]
    fn ingest_and_compact_wire_shapes() {
        let mut req = Request::new(4, Op::Ingest);
        req.records = vec![(7, vec![1.0, 2.0]), (9, vec![3.0, 4.0])];
        let line = req.to_line();
        let back = Request::from_line(&line).unwrap();
        assert_eq!(back.records, req.records);
        assert_eq!(back.to_line(), line);
        assert!(Request::from_line(r#"{"id":1,"op":"ingest"}"#).is_err());
        // compact carries no payload at all.
        let c = Request::from_line(r#"{"id":2,"op":"compact"}"#).unwrap();
        assert_eq!(c.op, Op::Compact);
        assert_eq!(
            encode_ingest(4, 2, 5, 3, 1),
            r#"{"id":4,"ok":true,"op":"ingest","accepted":2,"delta_id":5,"deltas":3,"version":1}"#
        );
        assert_eq!(
            encode_compact(8, 240, 3, 6, 2),
            r#"{"id":8,"ok":true,"op":"compact","folded":240,"deltas_folded":3,"partitions_rewritten":6,"version":2}"#
        );
    }

    #[test]
    fn responses_have_stable_shapes() {
        let outcome = ExactMatchOutcome {
            matches: vec![4, 9],
            bloom_rejected: false,
            partitions_loaded: 1,
        };
        assert_eq!(
            encode_exact(5, &outcome, None),
            r#"{"id":5,"ok":true,"op":"exact","matches":[4,9],"bloom_rejected":false}"#
        );
        let knn = KnnAnswer {
            neighbors: vec![(0.5, 11), (1.25, 2)],
            partitions_loaded: 1,
            candidates_refined: 2,
            candidates_abandoned: 0,
        };
        assert_eq!(
            encode_knn(6, &knn, None),
            r#"{"id":6,"ok":true,"op":"knn","neighbors":[[0.5,11],[1.25,2]]}"#
        );
        let partial = Completeness {
            partitions_visited: 3,
            partitions_skipped: vec![2],
            exact: false,
        };
        assert_eq!(
            encode_knn(6, &knn, Some(&partial)),
            r#"{"id":6,"ok":true,"op":"knn","neighbors":[[0.5,11],[1.25,2]],"partial":true,"skipped":[2],"exact":false}"#
        );
        assert_eq!(
            encode_error(9, "Overloaded", "queue full"),
            r#"{"id":9,"ok":false,"error":"Overloaded","detail":"queue full"}"#
        );
    }
}
