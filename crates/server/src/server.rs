//! The resident daemon: TCP accept loop, connection threads, graceful
//! shutdown.
//!
//! [`QueryServer::start`] binds a listener (port `0` picks a free port —
//! the bound address is on the returned [`ServerHandle`]) and spawns one
//! accept thread plus one thread per connection. Each connection reads
//! newline-terminated JSON requests ([`crate::protocol`]), pushes them
//! through the shared [`Admission`] gate, executes admitted queries
//! against the resident [`TardisIndex`], and writes one response line
//! per request, in order.
//!
//! A request line beginning with `GET ` is served as a one-shot HTTP
//! response instead: the Prometheus text of the cluster's metrics —
//! including the live scheduler gauges — so the same port answers
//! `curl http://addr/metrics`.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] (or a SIGTERM routed through
//! [`sigterm_flag`]) stops the accept loop, closes the admission gate —
//! every *queued* query is answered `Overloaded` — and joins the
//! connection threads, which finish writing responses for queries
//! already executing. Nothing in flight is dropped silently: every
//! accepted request is answered or explicitly shed before the process
//! exits.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use tardis_cluster::{BackoffClock, Cluster};
use tardis_core::{
    exact_knn, exact_knn_degraded, exact_match, exact_match_degraded, knn_approximate,
    knn_approximate_degraded, knn_batch, knn_batch_degraded, range_query, range_query_degraded,
    CompactionOutcome, CoreError, DegradedPolicy, TardisIndex,
};

use crate::admission::{Admission, Admitted};
use crate::hotset::{HotSetConfig, HotSetTracker};
use crate::protocol::{
    encode_batch, encode_compact, encode_error, encode_exact, encode_exact_knn, encode_ingest,
    encode_knn, encode_range, Op, Request,
};

/// Poll interval for the accept loop and connection read timeouts.
const POLL: Duration = Duration::from_millis(25);

/// Configuration for [`QueryServer::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` binds a free port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Queries executing concurrently before new arrivals queue.
    pub max_in_flight: usize,
    /// Queued queries before new arrivals are shed with `Overloaded`.
    pub queue_capacity: usize,
    /// Default admission deadline for requests that set none;
    /// `None` = wait indefinitely.
    pub default_deadline_ms: Option<u64>,
    /// Degraded-serving policy: `None` fails queries on unavailable
    /// partitions, `Some(BestEffort)` serves partial answers with a
    /// coverage report.
    pub policy: Option<DegradedPolicy>,
    /// Clock for admission deadlines (virtual in deterministic tests).
    pub clock: BackoffClock,
    /// Hot-set detection + adaptive re-replication; `None` disables the
    /// background pass entirely.
    pub hot_set: Option<HotSetConfig>,
    /// Manifest file name on the DFS: ingest and compaction persist
    /// every index mutation through an atomic single-block overwrite of
    /// this file. `None` keeps mutations memory-only.
    pub manifest: Option<String>,
    /// Background compaction; `None` folds deltas only on explicit
    /// `compact` requests.
    pub compaction: Option<CompactorConfig>,
}

/// Settings for the background compaction pass.
#[derive(Debug, Clone)]
pub struct CompactorConfig {
    /// How often the pass checks for fold work.
    pub interval: Duration,
    /// Fold only once at least this many sealed deltas are active
    /// (clamped to ≥ 1).
    pub min_deltas: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_in_flight: 8,
            queue_capacity: 64,
            default_deadline_ms: None,
            policy: None,
            clock: BackoffClock::Real,
            hot_set: None,
            manifest: None,
            compaction: None,
        }
    }
}

/// How long a compaction waits for old-snapshot readers to drain before
/// giving up on deleting the retired files (they are then left on disk
/// for a later pass — safe, just unreclaimed).
const DRAIN_CAP: Duration = Duration::from_secs(10);

struct Shared {
    cluster: Arc<Cluster>,
    /// The current index snapshot. Queries lock only long enough to
    /// clone the `Arc`, so they never block on ingest or compaction;
    /// writers build a new snapshot off to the side and swap it in.
    index: Mutex<Arc<TardisIndex>>,
    /// Serializes ingest and compaction (the clone → mutate → persist →
    /// swap sequence must not interleave).
    writer: Mutex<()>,
    manifest: Option<String>,
    admission: Arc<Admission>,
    policy: Option<DegradedPolicy>,
    default_deadline_ms: Option<u64>,
    shutdown: Arc<AtomicBool>,
    /// Retired file generations whose deletion was deferred because an
    /// old-snapshot reader outlived the post-compaction drain window.
    /// Each entry pairs the displaced snapshot (held weakly, so parking
    /// never extends its life) with the files only it can still read;
    /// [`Shared::reclaim_retired`] deletes them once it is gone.
    retired: Mutex<Vec<(std::sync::Weak<TardisIndex>, Vec<String>)>>,
}

impl Shared {
    /// The current snapshot; the lock is held only for the `Arc` clone.
    fn index(&self) -> Arc<TardisIndex> {
        Arc::clone(&self.index.lock().unwrap())
    }

    /// Persists `next` (when a manifest is configured) and swaps it in,
    /// returning the displaced snapshot. Persistence happens *before*
    /// the swap, so a crashed save never leaves served state ahead of
    /// durable state.
    fn persist_and_swap(&self, next: TardisIndex) -> Result<Arc<TardisIndex>, CoreError> {
        if let Some(name) = &self.manifest {
            next.save_atomic(&self.cluster, name)?;
        }
        let next = Arc::new(next);
        Ok(std::mem::replace(&mut *self.index.lock().unwrap(), next))
    }

    /// Seals one ingest batch into a delta and swaps the new snapshot
    /// in. Metrics are recorded only after the swap: a failed persist
    /// must not report a mutation that is not being served.
    fn ingest(&self, req: &Request) -> Result<String, CoreError> {
        let _writer = self.writer.lock().unwrap();
        let mut next = TardisIndex::clone(&self.index());
        let meta = next.ingest_batch_unmetered(&self.cluster, req.record_values())?;
        let deltas = next.n_deltas();
        let version = next.manifest_version();
        self.persist_and_swap(next)?;
        self.cluster.metrics().record_ingest(meta.n_records);
        self.cluster.metrics().record_delta_sealed();
        self.cluster.metrics().set_deltas_active(deltas as u64);
        Ok(encode_ingest(
            req.id,
            meta.n_records as usize,
            meta.delta_id,
            deltas,
            version,
        ))
    }

    /// Folds every sealed delta into the base and swaps the compacted
    /// snapshot in. Retired files are deleted only after old-snapshot
    /// readers drain (their partition loads may still be reading them);
    /// a generation that fails to drain within [`DRAIN_CAP`] is parked
    /// and reclaimed by a later [`Self::reclaim_retired`] pass instead
    /// of leaking. The drain runs *outside* the writer lock, so ingest
    /// and follow-up compactions never stall behind a slow reader.
    fn compact(&self) -> Result<(CompactionOutcome, u64), CoreError> {
        let (outcome, version, old) = {
            let _writer = self.writer.lock().unwrap();
            let mut next = TardisIndex::clone(&self.index());
            if next.n_deltas() == 0 {
                let version = next.manifest_version();
                return Ok((CompactionOutcome::default(), version));
            }
            let outcome = next.compact_deferred_unmetered(&self.cluster)?;
            let version = next.manifest_version();
            let old = self.persist_and_swap(next)?;
            // Post-swap (still under the writer lock, so the gauge
            // cannot race a concurrent ingest): the fold is now served.
            self.cluster.metrics().record_compaction(outcome.folded_records);
            self.cluster.metrics().set_deltas_active(0);
            (outcome, version, old)
        };
        let mut waited = Duration::ZERO;
        while Arc::strong_count(&old) > 1
            && waited < DRAIN_CAP
            && !self.shutdown.load(Ordering::SeqCst)
        {
            thread::sleep(POLL);
            waited += POLL;
        }
        if Arc::strong_count(&old) == 1 {
            // Eviction also releases any cache pins on these blocks; a
            // failure (or an injected `core.compact.retire` crash)
            // leaves the remaining files for startup recovery to GC —
            // the manifest was already persisted, so they are orphans.
            let _ = TardisIndex::retire_files(&self.cluster, &outcome.retired_files);
        } else {
            // A straggling reader still holds the displaced snapshot:
            // park the files and delete them once it drops.
            self.retired
                .lock()
                .unwrap()
                .push((Arc::downgrade(&old), outcome.retired_files.clone()));
        }
        self.reclaim_retired();
        Ok((outcome, version))
    }

    /// Deletes parked retired files whose displaced snapshot has fully
    /// dropped (no reader can still load from them); generations with a
    /// live straggler stay parked for the next pass.
    fn reclaim_retired(&self) {
        let mut parked = self.retired.lock().unwrap();
        parked.retain(|(snapshot, files)| {
            if snapshot.strong_count() > 0 {
                return true;
            }
            for file in files {
                let _ = self.cluster.dfs().delete_file(file);
            }
            false
        });
    }
    /// Admits and executes one request line, returning the response line.
    fn execute_line(&self, line: &str) -> String {
        let req = match Request::from_line(line) {
            Ok(req) => req,
            Err(why) => return encode_error(0, "BadRequest", &why),
        };
        let deadline = req
            .deadline_ms
            .or(self.default_deadline_ms)
            .map(Duration::from_millis);
        match self.admission.admit(req.priority, deadline) {
            Admitted::Overloaded => encode_error(req.id, "Overloaded", "admission queue full"),
            Admitted::DeadlineExceeded => {
                encode_error(req.id, "DeadlineExceeded", "deadline passed while queued")
            }
            Admitted::Permit(permit) => {
                let response = self.run(&req);
                drop(permit);
                response
            }
        }
    }

    fn run(&self, req: &Request) -> String {
        let id = req.id;
        // Mutating ops dispatch *before* a snapshot is taken: holding
        // the current snapshot across compact() would keep the displaced
        // generation's strong count above 1 for the whole drain window,
        // so its retired files could never be deleted.
        match req.op {
            Op::Ingest | Op::Compact => {
                let result = if req.op == Op::Ingest {
                    self.ingest(req)
                } else {
                    self.compact().map(|(o, version)| {
                        encode_compact(
                            id,
                            o.folded_records,
                            o.deltas_folded,
                            o.partitions_rewritten,
                            version,
                        )
                    })
                };
                return result.unwrap_or_else(|e| encode_error(id, "QueryError", &e.to_string()));
            }
            _ => {}
        }
        let snapshot = self.index();
        let index = &*snapshot;
        let cluster = &*self.cluster;
        let result = match (self.policy, req.op) {
            (_, Op::Ingest) | (_, Op::Compact) => unreachable!("dispatched above"),
            (None, Op::Exact) => exact_match(index, cluster, &req.series(), req.use_bloom)
                .map(|o| encode_exact(id, &o, None)),
            (None, Op::Knn) => {
                knn_approximate(index, cluster, &req.series(), req.k, req.strategy)
                    .map(|a| encode_knn(id, &a, None))
            }
            (None, Op::ExactKnn) => exact_knn(index, cluster, &req.series(), req.k)
                .map(|a| encode_exact_knn(id, &a, None)),
            (None, Op::Range) => range_query(index, cluster, &req.series(), req.epsilon)
                .map(|a| encode_range(id, &a, None)),
            (None, Op::Batch) => {
                knn_batch(index, cluster, &req.batch_series(), req.k, req.strategy)
                    .map(|a| encode_batch(id, &a, None))
            }
            (Some(policy), Op::Exact) => {
                exact_match_degraded(index, cluster, &req.series(), req.use_bloom, policy)
                    .map(|d| encode_exact(id, &d.answer, Some(&d.completeness)))
            }
            (Some(policy), Op::Knn) => knn_approximate_degraded(
                index,
                cluster,
                &req.series(),
                req.k,
                req.strategy,
                policy,
            )
            .map(|d| encode_knn(id, &d.answer, Some(&d.completeness))),
            (Some(policy), Op::ExactKnn) => {
                exact_knn_degraded(index, cluster, &req.series(), req.k, policy)
                    .map(|d| encode_exact_knn(id, &d.answer, Some(&d.completeness)))
            }
            (Some(policy), Op::Range) => {
                range_query_degraded(index, cluster, &req.series(), req.epsilon, policy)
                    .map(|d| encode_range(id, &d.answer, Some(&d.completeness)))
            }
            (Some(policy), Op::Batch) => knn_batch_degraded(
                index,
                cluster,
                &req.batch_series(),
                req.k,
                req.strategy,
                policy,
            )
            .map(|d| encode_batch(id, &d.answer, Some(&d.completeness))),
        };
        result.unwrap_or_else(|e| encode_error(id, "QueryError", &e.to_string()))
    }

    fn metrics_http(&self) -> String {
        let body = self.cluster.metrics().snapshot().prometheus_text(None);
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Drain complete lines from the buffer first.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with("GET ") {
                let _ = stream.write_all(shared.metrics_http().as_bytes());
                return;
            }
            let response = shared.execute_line(line);
            if stream
                .write_all(format!("{response}\n").as_bytes())
                .is_err()
            {
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// The resident query daemon.
pub struct QueryServer;

impl QueryServer {
    /// Binds `config.addr` and starts serving. The cluster and index
    /// stay resident for the life of the handle.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(
        cluster: Arc<Cluster>,
        index: Arc<TardisIndex>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let admission = Admission::new(
            config.max_in_flight,
            config.queue_capacity,
            config.clock.clone(),
            Some(cluster.metrics_arc()),
        );
        let shared = Arc::new(Shared {
            cluster,
            index: Mutex::new(index),
            writer: Mutex::new(()),
            manifest: config.manifest,
            admission: Arc::clone(&admission),
            policy: config.policy,
            default_deadline_ms: config.default_deadline_ms,
            shutdown: Arc::clone(&shutdown),
            retired: Mutex::new(Vec::new()),
        });

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            let conns: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
            while !accept_shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = Arc::clone(&accept_shared);
                        conns
                            .lock()
                            .unwrap()
                            .push(thread::spawn(move || handle_connection(stream, shared)));
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        thread::sleep(POLL);
                    }
                    Err(_) => break,
                }
            }
            // Stop admitting queued work, then drain connections: each
            // finishes (or sheds) what it already accepted.
            accept_shared.admission.close();
            for conn in conns.into_inner().unwrap() {
                let _ = conn.join();
            }
        });

        let hotset = config
            .hot_set
            .map(|cfg| spawn_hot_set_pass(cfg, Arc::clone(&shared)));
        let compactor = config
            .compaction
            .map(|cfg| spawn_compactor(cfg, Arc::clone(&shared)));

        Ok(ServerHandle {
            addr,
            shutdown,
            accept: Some(accept),
            hotset,
            compactor,
        })
    }
}

/// The background hot-set pass: every `cfg.interval`, diff the cluster's
/// cumulative per-partition access counters, publish the
/// `tardis_hot_partitions` gauge, and raise newly hot partitions to
/// `cfg.target_replication` via the scrub top-up machinery. Failed
/// raises (e.g. a transiently broken replica) are retried on the next
/// pass; successful ones are remembered so each partition is
/// re-replicated at most once per server lifetime (the factor is
/// monotone anyway).
fn spawn_hot_set_pass(cfg: HotSetConfig, shared: Arc<Shared>) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let mut tracker = HotSetTracker::new(&cfg);
        let mut raised: HashSet<u32> = HashSet::new();
        'pass: loop {
            // Sleep the interval in POLL steps so shutdown stays prompt.
            let mut slept = Duration::ZERO;
            while slept < cfg.interval {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break 'pass;
                }
                let step = POLL.min(cfg.interval - slept);
                thread::sleep(step);
                slept += step;
            }
            let accesses = shared.cluster.metrics().partition_accesses();
            let hot = tracker.observe(&accesses);
            shared
                .cluster
                .metrics()
                .set_hot_partitions(hot.len() as u64);
            let index = shared.index();
            let partitions = index.partitions();
            for pid in hot {
                if raised.contains(&pid) {
                    continue;
                }
                let Some(meta) = partitions.get(pid as usize) else {
                    continue;
                };
                match shared
                    .cluster
                    .dfs()
                    .replicate_file(&meta.file, cfg.target_replication)
                {
                    Ok(_) => {
                        shared.cluster.metrics().record_rereplication();
                        raised.insert(pid);
                    }
                    Err(_) => {
                        // Leave it un-raised: the next pass retries.
                    }
                }
            }
        }
    })
}

/// The background compaction pass: every `cfg.interval`, fold the sealed
/// deltas into the base once at least `cfg.min_deltas` are active. A
/// failed fold (e.g. injected write faults past the retry budget) leaves
/// the old snapshot serving and is retried on the next pass — the
/// manifest only ever swaps on success.
fn spawn_compactor(cfg: CompactorConfig, shared: Arc<Shared>) -> thread::JoinHandle<()> {
    thread::spawn(move || loop {
        // Sleep the interval in POLL steps so shutdown stays prompt.
        let mut slept = Duration::ZERO;
        while slept < cfg.interval {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let step = POLL.min(cfg.interval - slept);
            thread::sleep(step);
            slept += step;
        }
        // Reclaim generations parked behind a straggling reader even on
        // ticks with no fold work.
        shared.reclaim_retired();
        if shared.index().n_deltas() >= cfg.min_deltas.max(1) {
            let _ = shared.compact();
        }
    })
}

/// A running daemon. Dropping the handle shuts it down gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    hotset: Option<thread::JoinHandle<()>>,
    compactor: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The flag that requests shutdown; share it with a signal handler.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Graceful shutdown: stop accepting, shed the queue, answer what
    /// is in flight, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the shutdown flag is raised (by [`Self::shutdown`],
    /// a signal handler, or another thread), then drains.
    pub fn wait(mut self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            thread::sleep(POLL);
        }
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(hotset) = self.hotset.take() {
            let _ = hotset.join();
        }
        if let Some(compactor) = self.compactor.take() {
            let _ = compactor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

static SIGTERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

/// Installs a SIGTERM + SIGINT handler that raises [`sigterm_flag`].
/// Uses the C `signal` entry point directly (no libc crate in this
/// workspace); async-signal-safe because the handler only stores an
/// atomic.
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(15, on_signal); // SIGTERM
        signal(2, on_signal); // SIGINT
    }
}

/// True once SIGTERM/SIGINT was received after
/// [`install_signal_handlers`].
pub fn sigterm_flag() -> bool {
    SIGTERM.load(Ordering::SeqCst)
}
