//! The resident daemon: TCP accept loop, connection threads, graceful
//! shutdown.
//!
//! [`QueryServer::start`] binds a listener (port `0` picks a free port —
//! the bound address is on the returned [`ServerHandle`]) and spawns one
//! accept thread plus one thread per connection. Each connection reads
//! newline-terminated JSON requests ([`crate::protocol`]), pushes them
//! through the shared [`Admission`] gate, executes admitted queries
//! against the resident [`TardisIndex`], and writes one response line
//! per request, in order.
//!
//! A request line beginning with `GET ` is served as a one-shot HTTP
//! response instead: the Prometheus text of the cluster's metrics —
//! including the live scheduler gauges — so the same port answers
//! `curl http://addr/metrics`.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] (or a SIGTERM routed through
//! [`sigterm_flag`]) stops the accept loop, closes the admission gate —
//! every *queued* query is answered `Overloaded` — and joins the
//! connection threads, which finish writing responses for queries
//! already executing. Nothing in flight is dropped silently: every
//! accepted request is answered or explicitly shed before the process
//! exits.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use tardis_cluster::{BackoffClock, Cluster};
use tardis_core::{
    exact_knn, exact_knn_degraded, exact_match, exact_match_degraded, knn_approximate,
    knn_approximate_degraded, knn_batch, knn_batch_degraded, range_query, range_query_degraded,
    DegradedPolicy, TardisIndex,
};

use crate::admission::{Admission, Admitted};
use crate::hotset::{HotSetConfig, HotSetTracker};
use crate::protocol::{
    encode_batch, encode_error, encode_exact, encode_exact_knn, encode_knn, encode_range, Op,
    Request,
};

/// Poll interval for the accept loop and connection read timeouts.
const POLL: Duration = Duration::from_millis(25);

/// Configuration for [`QueryServer::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` binds a free port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Queries executing concurrently before new arrivals queue.
    pub max_in_flight: usize,
    /// Queued queries before new arrivals are shed with `Overloaded`.
    pub queue_capacity: usize,
    /// Default admission deadline for requests that set none;
    /// `None` = wait indefinitely.
    pub default_deadline_ms: Option<u64>,
    /// Degraded-serving policy: `None` fails queries on unavailable
    /// partitions, `Some(BestEffort)` serves partial answers with a
    /// coverage report.
    pub policy: Option<DegradedPolicy>,
    /// Clock for admission deadlines (virtual in deterministic tests).
    pub clock: BackoffClock,
    /// Hot-set detection + adaptive re-replication; `None` disables the
    /// background pass entirely.
    pub hot_set: Option<HotSetConfig>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_in_flight: 8,
            queue_capacity: 64,
            default_deadline_ms: None,
            policy: None,
            clock: BackoffClock::Real,
            hot_set: None,
        }
    }
}

struct Shared {
    cluster: Arc<Cluster>,
    index: Arc<TardisIndex>,
    admission: Arc<Admission>,
    policy: Option<DegradedPolicy>,
    default_deadline_ms: Option<u64>,
    shutdown: Arc<AtomicBool>,
}

impl Shared {
    /// Admits and executes one request line, returning the response line.
    fn execute_line(&self, line: &str) -> String {
        let req = match Request::from_line(line) {
            Ok(req) => req,
            Err(why) => return encode_error(0, "BadRequest", &why),
        };
        let deadline = req
            .deadline_ms
            .or(self.default_deadline_ms)
            .map(Duration::from_millis);
        match self.admission.admit(req.priority, deadline) {
            Admitted::Overloaded => encode_error(req.id, "Overloaded", "admission queue full"),
            Admitted::DeadlineExceeded => {
                encode_error(req.id, "DeadlineExceeded", "deadline passed while queued")
            }
            Admitted::Permit(permit) => {
                let response = self.run(&req);
                drop(permit);
                response
            }
        }
    }

    fn run(&self, req: &Request) -> String {
        let index = &*self.index;
        let cluster = &*self.cluster;
        let id = req.id;
        let result = match (self.policy, req.op) {
            (None, Op::Exact) => exact_match(index, cluster, &req.series(), req.use_bloom)
                .map(|o| encode_exact(id, &o, None)),
            (None, Op::Knn) => {
                knn_approximate(index, cluster, &req.series(), req.k, req.strategy)
                    .map(|a| encode_knn(id, &a, None))
            }
            (None, Op::ExactKnn) => exact_knn(index, cluster, &req.series(), req.k)
                .map(|a| encode_exact_knn(id, &a, None)),
            (None, Op::Range) => range_query(index, cluster, &req.series(), req.epsilon)
                .map(|a| encode_range(id, &a, None)),
            (None, Op::Batch) => {
                knn_batch(index, cluster, &req.batch_series(), req.k, req.strategy)
                    .map(|a| encode_batch(id, &a, None))
            }
            (Some(policy), Op::Exact) => {
                exact_match_degraded(index, cluster, &req.series(), req.use_bloom, policy)
                    .map(|d| encode_exact(id, &d.answer, Some(&d.completeness)))
            }
            (Some(policy), Op::Knn) => knn_approximate_degraded(
                index,
                cluster,
                &req.series(),
                req.k,
                req.strategy,
                policy,
            )
            .map(|d| encode_knn(id, &d.answer, Some(&d.completeness))),
            (Some(policy), Op::ExactKnn) => {
                exact_knn_degraded(index, cluster, &req.series(), req.k, policy)
                    .map(|d| encode_exact_knn(id, &d.answer, Some(&d.completeness)))
            }
            (Some(policy), Op::Range) => {
                range_query_degraded(index, cluster, &req.series(), req.epsilon, policy)
                    .map(|d| encode_range(id, &d.answer, Some(&d.completeness)))
            }
            (Some(policy), Op::Batch) => knn_batch_degraded(
                index,
                cluster,
                &req.batch_series(),
                req.k,
                req.strategy,
                policy,
            )
            .map(|d| encode_batch(id, &d.answer, Some(&d.completeness))),
        };
        result.unwrap_or_else(|e| encode_error(id, "QueryError", &e.to_string()))
    }

    fn metrics_http(&self) -> String {
        let body = self.cluster.metrics().snapshot().prometheus_text(None);
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Drain complete lines from the buffer first.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with("GET ") {
                let _ = stream.write_all(shared.metrics_http().as_bytes());
                return;
            }
            let response = shared.execute_line(line);
            if stream
                .write_all(format!("{response}\n").as_bytes())
                .is_err()
            {
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// The resident query daemon.
pub struct QueryServer;

impl QueryServer {
    /// Binds `config.addr` and starts serving. The cluster and index
    /// stay resident for the life of the handle.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(
        cluster: Arc<Cluster>,
        index: Arc<TardisIndex>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let admission = Admission::new(
            config.max_in_flight,
            config.queue_capacity,
            config.clock.clone(),
            Some(cluster.metrics_arc()),
        );
        let shared = Arc::new(Shared {
            cluster,
            index,
            admission: Arc::clone(&admission),
            policy: config.policy,
            default_deadline_ms: config.default_deadline_ms,
            shutdown: Arc::clone(&shutdown),
        });

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            let conns: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
            while !accept_shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = Arc::clone(&accept_shared);
                        conns
                            .lock()
                            .unwrap()
                            .push(thread::spawn(move || handle_connection(stream, shared)));
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        thread::sleep(POLL);
                    }
                    Err(_) => break,
                }
            }
            // Stop admitting queued work, then drain connections: each
            // finishes (or sheds) what it already accepted.
            accept_shared.admission.close();
            for conn in conns.into_inner().unwrap() {
                let _ = conn.join();
            }
        });

        let hotset = config
            .hot_set
            .map(|cfg| spawn_hot_set_pass(cfg, Arc::clone(&shared)));

        Ok(ServerHandle {
            addr,
            shutdown,
            accept: Some(accept),
            hotset,
        })
    }
}

/// The background hot-set pass: every `cfg.interval`, diff the cluster's
/// cumulative per-partition access counters, publish the
/// `tardis_hot_partitions` gauge, and raise newly hot partitions to
/// `cfg.target_replication` via the scrub top-up machinery. Failed
/// raises (e.g. a transiently broken replica) are retried on the next
/// pass; successful ones are remembered so each partition is
/// re-replicated at most once per server lifetime (the factor is
/// monotone anyway).
fn spawn_hot_set_pass(cfg: HotSetConfig, shared: Arc<Shared>) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let mut tracker = HotSetTracker::new(&cfg);
        let mut raised: HashSet<u32> = HashSet::new();
        'pass: loop {
            // Sleep the interval in POLL steps so shutdown stays prompt.
            let mut slept = Duration::ZERO;
            while slept < cfg.interval {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break 'pass;
                }
                let step = POLL.min(cfg.interval - slept);
                thread::sleep(step);
                slept += step;
            }
            let accesses = shared.cluster.metrics().partition_accesses();
            let hot = tracker.observe(&accesses);
            shared
                .cluster
                .metrics()
                .set_hot_partitions(hot.len() as u64);
            let partitions = shared.index.partitions();
            for pid in hot {
                if raised.contains(&pid) {
                    continue;
                }
                let Some(meta) = partitions.get(pid as usize) else {
                    continue;
                };
                match shared
                    .cluster
                    .dfs()
                    .replicate_file(&meta.file, cfg.target_replication)
                {
                    Ok(_) => {
                        shared.cluster.metrics().record_rereplication();
                        raised.insert(pid);
                    }
                    Err(_) => {
                        // Leave it un-raised: the next pass retries.
                    }
                }
            }
        }
    })
}

/// A running daemon. Dropping the handle shuts it down gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    hotset: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The flag that requests shutdown; share it with a signal handler.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Graceful shutdown: stop accepting, shed the queue, answer what
    /// is in flight, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the shutdown flag is raised (by [`Self::shutdown`],
    /// a signal handler, or another thread), then drains.
    pub fn wait(mut self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            thread::sleep(POLL);
        }
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(hotset) = self.hotset.take() {
            let _ = hotset.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

static SIGTERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

/// Installs a SIGTERM + SIGINT handler that raises [`sigterm_flag`].
/// Uses the C `signal` entry point directly (no libc crate in this
/// workspace); async-signal-safe because the handler only stores an
/// atomic.
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(15, on_signal); // SIGTERM
        signal(2, on_signal); // SIGINT
    }
}

/// True once SIGTERM/SIGINT was received after
/// [`install_signal_handlers`].
pub fn sigterm_flag() -> bool {
    SIGTERM.load(Ordering::SeqCst)
}
