//! A minimal JSON value: parser and canonical emitter.
//!
//! The wire protocol needs exactly one thing from its serialization
//! layer: **byte determinism**. The same logical response must encode to
//! the same bytes on the daemon and in the sequential oracle of the
//! equivalence tests, so answers can be compared as raw lines. Hence a
//! hand-rolled value type rather than a serialization framework (the
//! build has no crates.io access anyway):
//!
//! * Objects preserve insertion order (a `Vec` of pairs, not a map), so
//!   key order is exactly the order the encoder wrote.
//! * Numbers emit through one function: integral values in `±2^53` print
//!   as integers, everything else through `f64`'s shortest-roundtrip
//!   `Display`. Parsing back and re-emitting is the identity for every
//!   number we produce.
//! * The emitter inserts no whitespace.
//!
//! Parsing is a permissive recursive descent over the JSON grammar —
//! good enough to accept any output of the emitter plus hand-written
//! requests with arbitrary whitespace.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers survive to `±2^53`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks a key up in an object; `None` for absent keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Writes a number the canonical way: integral values in `±2^53` as
/// integers, the rest via `f64` `Display` (shortest roundtrip).
/// Non-finite values (which valid queries never produce) emit `null`.
pub fn fmt_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn fmt_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => fmt_num(f, *n),
            JsonValue::Str(s) => fmt_str(f, s),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    fmt_str(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure: byte offset and a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            what: "trailing characters",
        });
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8, what: &'static str) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { at: *pos, what })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(JsonError {
            at: *pos,
            what: "unexpected end of input",
        }),
        Some(b'n') => parse_lit(b, pos, b"null", JsonValue::Null),
        Some(b't') => parse_lit(b, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, b"false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            what: "expected ',' or ']'",
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':', "expected ':'")?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(pairs));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            what: "expected ',' or '}'",
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(
    b: &[u8],
    pos: &mut usize,
    lit: &'static [u8],
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError {
            at: *pos,
            what: "invalid literal",
        })
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => {
                return Err(JsonError {
                    at: *pos,
                    what: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if *pos + 4 >= b.len() {
                            return Err(JsonError {
                                at: *pos,
                                what: "truncated \\u escape",
                            });
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError {
                                at: *pos,
                                what: "invalid \\u escape",
                            })?;
                        // Surrogate pairs are not needed by this protocol;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            what: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so byte
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|_| JsonError {
                    at: start,
                    what: "invalid UTF-8",
                })?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or(JsonError {
            at: start,
            what: "invalid number",
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let src = r#"{"id":7,"ok":true,"neighbors":[[1.5,3],[2.25,9]],"note":"a\"b\\c","none":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("note").unwrap().as_str(), Some("a\"b\\c"));
        let arr = v.get("neighbors").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_arr().unwrap()[0].as_f64(), Some(2.25));
    }

    #[test]
    fn parses_whitespace_and_rejects_trailing_garbage() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.to_string(), r#"{"a":[1,2]}"#);
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,").is_err());
    }

    #[test]
    fn numbers_roundtrip_bit_exactly() {
        // Shortest-roundtrip f64 display: parse(emit(x)) == x bitwise.
        for &x in &[
            0.0f64,
            -1.0,
            3.5,
            0.1,
            1.0e-12,
            123_456_789.123_456_79,
            f64::from(7.25f32),
            9007199254740992.0,
        ] {
            let emitted = JsonValue::Num(x).to_string();
            let back = parse(&emitted).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {emitted}");
        }
        // Integral values print without a fraction.
        assert_eq!(JsonValue::Num(42.0).to_string(), "42");
        assert_eq!(JsonValue::Num(-3.0).to_string(), "-3");
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
    }
}
