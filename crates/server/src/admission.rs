//! Admission control: a bounded in-flight gate with a bounded,
//! priority-ordered waiting queue, per-query deadlines, and explicit
//! load shedding.
//!
//! Every request passes through [`Admission::admit`] before touching the
//! index:
//!
//! * If fewer than `max_in_flight` queries are executing **and** nothing
//!   is queued ahead, the request is admitted immediately and holds a
//!   [`Permit`] for the duration of its execution.
//! * Otherwise it joins the waiting queue — unless the queue is at
//!   `queue_capacity`, in which case it is shed with
//!   [`Admitted::Overloaded`] *immediately*. An overloaded daemon
//!   answers fast instead of hanging; the client retries with backoff.
//! * Waiters are admitted highest-priority-first, FIFO within a
//!   priority. A waiter whose deadline passes before admission is shed
//!   with [`Admitted::DeadlineExceeded`] instead of executing late.
//!
//! # Deadline clock
//!
//! Deadlines are measured against the cluster's [`BackoffClock`] so the
//! soak tests can drive them deterministically: under
//! [`BackoffClock::Virtual`] "now" is the virtual clock's accumulated
//! sleep, which only the test advances. A deadline of `0` therefore
//! always sheds when the request has to wait (now ≥ enqueue time
//! instantly), and a generous deadline always admits — deterministic in
//! both directions, independent of scheduling noise. Under
//! [`BackoffClock::Real`] "now" is wall time since the gate was built.
//!
//! # Metrics
//!
//! The gate keeps the scheduler gauges live on the shared [`Metrics`]:
//! `tardis_queue_depth` and `tardis_queries_in_flight` track every
//! transition, `tardis_queries_shed` counts both shed flavors, and
//! `tardis_queries_served` counts permits released after execution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tardis_cluster::{BackoffClock, Metrics};

/// Outcome of an admission attempt.
#[derive(Debug)]
pub enum Admitted {
    /// Admitted; execute while holding the permit.
    Permit(Permit),
    /// Shed: the waiting queue was full (or the gate is closed).
    Overloaded,
    /// Shed: the deadline passed while queued.
    DeadlineExceeded,
}

struct Waiter {
    priority: u8,
    seq: u64,
}

struct State {
    in_flight: usize,
    waiting: Vec<Waiter>,
    closed: bool,
}

/// The admission gate. Shared by every connection thread.
pub struct Admission {
    max_in_flight: usize,
    queue_capacity: usize,
    state: Mutex<State>,
    cv: Condvar,
    clock: BackoffClock,
    start: Instant,
    seq: AtomicU64,
    metrics: Option<Arc<Metrics>>,
}

impl Admission {
    /// Builds a gate. `max_in_flight` and `queue_capacity` are clamped
    /// to at least 1 and 0 respectively (a zero-capacity queue sheds
    /// everything that cannot run immediately).
    pub fn new(
        max_in_flight: usize,
        queue_capacity: usize,
        clock: BackoffClock,
        metrics: Option<Arc<Metrics>>,
    ) -> Arc<Admission> {
        Arc::new(Admission {
            max_in_flight: max_in_flight.max(1),
            queue_capacity,
            state: Mutex::new(State {
                in_flight: 0,
                waiting: Vec::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            clock,
            start: Instant::now(),
            seq: AtomicU64::new(0),
            metrics,
        })
    }

    /// Milliseconds on the admission clock: virtual-sleep total under a
    /// virtual clock, wall time since construction otherwise.
    pub fn now_ms(&self) -> u64 {
        match &self.clock {
            BackoffClock::Virtual(clock) => clock.slept().as_millis() as u64,
            _ => self.start.elapsed().as_millis() as u64,
        }
    }

    /// Queries currently executing.
    pub fn in_flight(&self) -> usize {
        self.state.lock().unwrap().in_flight
    }

    /// Queries currently waiting for admission.
    pub fn queue_depth(&self) -> usize {
        self.state.lock().unwrap().waiting.len()
    }

    /// Requests admission, blocking while queued.
    ///
    /// `deadline` bounds the *wait*: a request that cannot be admitted
    /// by `now + deadline` is shed. `None` waits indefinitely (until
    /// admission or [`close`](Self::close)).
    pub fn admit(self: &Arc<Self>, priority: u8, deadline: Option<Duration>) -> Admitted {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            self.shed();
            return Admitted::Overloaded;
        }
        // Fast path: capacity free and nobody queued ahead.
        if st.in_flight < self.max_in_flight && st.waiting.is_empty() {
            st.in_flight += 1;
            self.publish(&st);
            return Admitted::Permit(Permit {
                gate: Arc::clone(self),
            });
        }
        if st.waiting.len() >= self.queue_capacity {
            self.shed();
            return Admitted::Overloaded;
        }

        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let deadline_at = deadline.map(|d| self.now_ms().saturating_add(d.as_millis() as u64));
        st.waiting.push(Waiter { priority, seq });
        self.publish(&st);
        loop {
            if st.closed {
                Self::remove(&mut st, seq);
                self.publish(&st);
                self.shed();
                self.cv.notify_all();
                return Admitted::Overloaded;
            }
            if let Some(dl) = deadline_at {
                // `>=` so a zero deadline expires without any clock
                // motion: waiting at all already missed it.
                if self.now_ms() >= dl {
                    Self::remove(&mut st, seq);
                    self.publish(&st);
                    self.shed();
                    self.cv.notify_all();
                    return Admitted::DeadlineExceeded;
                }
            }
            if st.in_flight < self.max_in_flight && Self::is_head(&st, priority, seq) {
                Self::remove(&mut st, seq);
                st.in_flight += 1;
                self.publish(&st);
                // Another slot may be free for the next-best waiter.
                self.cv.notify_all();
                return Admitted::Permit(Permit {
                    gate: Arc::clone(self),
                });
            }
            // Bounded wait so virtual-clock deadline expiry is noticed
            // even when no permit is released.
            let (guard, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(10))
                .unwrap();
            st = guard;
        }
    }

    /// Closes the gate: everything queued and everything that arrives
    /// later is shed with `Overloaded`. In-flight permits drain
    /// normally. Used for graceful shutdown.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.cv.notify_all();
    }

    /// True iff `(priority, seq)` is the best waiting entry: highest
    /// priority, then lowest sequence number.
    fn is_head(st: &State, priority: u8, seq: u64) -> bool {
        st.waiting
            .iter()
            .min_by_key(|w| (std::cmp::Reverse(w.priority), w.seq))
            .map(|w| w.priority == priority && w.seq == seq)
            .unwrap_or(false)
    }

    fn remove(st: &mut State, seq: u64) {
        st.waiting.retain(|w| w.seq != seq);
    }

    fn publish(&self, st: &State) {
        if let Some(m) = &self.metrics {
            m.set_queue_depth(st.waiting.len() as u64);
            m.set_queries_in_flight(st.in_flight as u64);
        }
    }

    fn shed(&self) {
        if let Some(m) = &self.metrics {
            m.record_query_shed();
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.in_flight -= 1;
        self.publish(&st);
        if let Some(m) = &self.metrics {
            m.record_query_served();
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// An execution slot. Dropping it releases the slot, counts the query
/// as served, and wakes the best waiter.
pub struct Permit {
    gate: Arc<Admission>,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Permit")
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;
    use tardis_cluster::VirtualClock;

    fn virtual_gate(max: usize, cap: usize) -> (Arc<Admission>, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        let gate = Admission::new(max, cap, BackoffClock::Virtual(Arc::clone(&clock)), None);
        (gate, clock)
    }

    #[test]
    fn sheds_immediately_when_queue_is_full() {
        let (gate, _clock) = virtual_gate(1, 0);
        let p = match gate.admit(0, None) {
            Admitted::Permit(p) => p,
            other => panic!("expected permit, got {other:?}"),
        };
        // Slot taken, zero-capacity queue: instant Overloaded, no block.
        assert!(matches!(gate.admit(0, None), Admitted::Overloaded));
        drop(p);
        assert!(matches!(gate.admit(0, None), Admitted::Permit(_)));
    }

    #[test]
    fn zero_deadline_sheds_deterministically_when_queued() {
        let (gate, _clock) = virtual_gate(1, 4);
        let _p = match gate.admit(0, None) {
            Admitted::Permit(p) => p,
            other => panic!("expected permit, got {other:?}"),
        };
        // Must queue; virtual now never advances, so deadline 0 has
        // already passed the instant it waits.
        assert!(matches!(
            gate.admit(0, Some(Duration::from_millis(0))),
            Admitted::DeadlineExceeded
        ));
        // A generous deadline with a free slot admits.
        drop(_p);
        assert!(matches!(
            gate.admit(0, Some(Duration::from_secs(3600))),
            Admitted::Permit(_)
        ));
    }

    #[test]
    fn waiters_admit_by_priority_then_fifo() {
        let (gate, _clock) = virtual_gate(1, 8);
        let blocker = match gate.admit(0, None) {
            Admitted::Permit(p) => p,
            other => panic!("expected permit, got {other:?}"),
        };
        let (tx, rx) = mpsc::channel::<u8>();
        let mut handles = Vec::new();
        // Enqueue low priority first, then high; high must win the slot.
        for (delay_ms, prio) in [(0u64, 1u8), (60, 5), (120, 5)] {
            let gate = Arc::clone(&gate);
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                thread::sleep(Duration::from_millis(delay_ms));
                match gate.admit(prio, None) {
                    Admitted::Permit(p) => {
                        tx.send(prio).unwrap();
                        drop(p);
                    }
                    other => panic!("expected permit, got {other:?}"),
                }
            }));
        }
        // Let all three queue up behind the blocker.
        thread::sleep(Duration::from_millis(300));
        assert_eq!(gate.queue_depth(), 3);
        drop(blocker);
        let order: Vec<u8> = (0..3).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(order, vec![5, 5, 1], "high priority first, FIFO within");
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn close_sheds_all_waiters_and_new_arrivals() {
        let (gate, _clock) = virtual_gate(1, 8);
        let blocker = match gate.admit(0, None) {
            Admitted::Permit(p) => p,
            other => panic!("expected permit, got {other:?}"),
        };
        let waiter = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || matches!(gate.admit(0, None), Admitted::Overloaded))
        };
        thread::sleep(Duration::from_millis(100));
        gate.close();
        assert!(waiter.join().unwrap(), "queued waiter shed on close");
        assert!(matches!(gate.admit(0, None), Admitted::Overloaded));
        drop(blocker);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn gauges_track_admission_transitions() {
        let metrics = Arc::new(Metrics::new());
        let gate = Admission::new(1, 2, BackoffClock::Real, Some(Arc::clone(&metrics)));
        let p = match gate.admit(0, None) {
            Admitted::Permit(p) => p,
            other => panic!("expected permit, got {other:?}"),
        };
        assert_eq!(metrics.snapshot().queries_in_flight, 1);
        drop(p);
        let snap = metrics.snapshot();
        assert_eq!(snap.queries_in_flight, 0);
        assert_eq!(snap.queries_served, 1);
        // Fill the slot and the queue, then overflow → shed.
        let _p = gate.admit(0, None);
        let g2 = Arc::clone(&gate);
        let t = thread::spawn(move || g2.admit(0, None));
        thread::sleep(Duration::from_millis(100));
        assert_eq!(metrics.snapshot().queue_depth, 1);
        let g3 = Arc::clone(&gate);
        let t2 = thread::spawn(move || g3.admit(0, None));
        thread::sleep(Duration::from_millis(100));
        assert!(matches!(gate.admit(0, None), Admitted::Overloaded));
        assert_eq!(metrics.snapshot().queries_shed, 1);
        drop(_p);
        t.join().unwrap();
        t2.join().unwrap();
    }
}
