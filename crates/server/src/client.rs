//! A small blocking client for the daemon's wire protocol.
//!
//! One [`Client`] wraps one TCP connection. Requests are written as
//! single lines and answered in order, so `send` is a simple
//! write-then-read-line exchange. The CLI's `client` subcommand and the
//! integration tests both go through this type; [`scrape_metrics`]
//! fetches the Prometheus text the same way `curl` would.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::protocol::Request;

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    /// Propagates connect/clone failures.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one raw request line and reads one response line (without
    /// the trailing newline).
    ///
    /// # Errors
    /// I/O failures, or an unexpected EOF before a response arrived.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Sends a [`Request`] and returns the raw response line.
    ///
    /// # Errors
    /// Same as [`Self::send_line`].
    pub fn send(&mut self, request: &Request) -> std::io::Result<String> {
        self.send_line(&request.to_line())
    }
}

/// Fetches the daemon's Prometheus metrics text over the query port
/// (the body of `GET /metrics`).
///
/// # Errors
/// I/O failures, or a malformed HTTP response.
pub fn scrape_metrics(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.0 200") => Ok(body.to_string()),
        _ => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed /metrics response",
        )),
    }
}
