#![warn(missing_docs)]

//! **TARDIS** — a distributed indexing framework for big time series data.
//!
//! This is the facade crate of the workspace: it re-exports the public
//! API of every component so that applications can depend on a single
//! crate.
//!
//! ```
//! use tardis::prelude::*;
//!
//! // Simulated cluster with a block DFS on local disk.
//! let cluster = Cluster::new(ClusterConfig::default()).unwrap();
//!
//! // Generate and store a small RandomWalk dataset.
//! let gen = RandomWalk::with_len(42, 64);
//! write_dataset(&cluster, "demo", &gen, 2_000, 200).unwrap();
//!
//! // Build the index.
//! let config = TardisConfig {
//!     g_max_size: 500,
//!     l_max_size: 100,
//!     ..TardisConfig::default()
//! };
//! let (index, report) = TardisIndex::build(&cluster, "demo", &config).unwrap();
//! assert!(report.n_partitions >= 1);
//!
//! // Exact-match query for a stored series.
//! let q = gen.series(7);
//! let hit = exact_match(&index, &cluster, &q, true).unwrap();
//! assert_eq!(hit.matches, vec![7]);
//!
//! // Approximate 5-NN.
//! let ans = knn_approximate(&index, &cluster, &q, 5, KnnStrategy::MultiPartition).unwrap();
//! assert_eq!(ans.neighbors[0].1, 7);
//! ```

pub use tardis_baseline as baseline;
pub use tardis_bloom as bloom;
pub use tardis_cluster as cluster;
pub use tardis_core as core;
pub use tardis_data as data;
pub use tardis_isax as isax;
pub use tardis_server as server;
pub use tardis_sigtree as sigtree;
pub use tardis_ts as ts;

/// Everything an application typically needs.
pub mod prelude {
    pub use tardis_baseline::{
        baseline_exact_match, baseline_exact_match_profiled, baseline_knn, baseline_knn_profiled,
        BaselineConfig, DpisaxIndex, SplitPolicy,
    };
    pub use tardis_bloom::BloomFilter;
    pub use tardis_cluster::{
        chrome_trace_json, BackoffClock, Cluster, ClusterConfig, ClusterError, CrashSpec, Dataset,
        DfsConfig, FaultPlan, FaultSite, MaybeTransient, MetricsSnapshot, PeakAlloc, PromText,
        QueryProfile, RetryPolicy, ScrubReport, Tracer, VirtualClock, WorkerPool, CRASH_SITES,
    };
    pub use tardis_core::{
        error_ratio, exact_knn, exact_knn_batch, exact_knn_batch_degraded, exact_knn_batch_naive,
        exact_knn_batch_profiled, exact_knn_degraded, exact_knn_profiled, exact_match,
        exact_match_batch, exact_match_batch_degraded, exact_match_batch_naive,
        exact_match_batch_profiled, exact_match_degraded, exact_match_degraded_profiled,
        exact_match_profiled, ground_truth_knn, knn_approximate, knn_approximate_degraded,
        knn_approximate_degraded_profiled, knn_approximate_profiled, knn_batch, knn_batch_degraded,
        knn_batch_naive, knn_batch_profiled, range_query, range_query_degraded, recall,
        recover_store, BatchProfile, CompactionOutcome, Completeness, CoreError, Degraded,
        DegradedPolicy, DeltaMeta, KnnStrategy, RecoveryReport, SortedBuildOptions, TardisConfig,
        TardisIndex, DELTA_PID_BASE,
    };
    pub use tardis_data::{
        profile_dataset, read_series_file, write_dataset, write_series_file, DnaLike,
        InMemoryDataset, NoaaLike, QueryKind, QueryWorkload, RandomWalk, SeriesGen, TexmexLike,
    };
    pub use tardis_isax::{SaxWord, SigT};
    pub use tardis_server::{
        scrape_metrics, Client, CompactorConfig, HotSetConfig, Op, QueryServer, Request,
        ServerConfig, ServerHandle,
    };
    pub use tardis_ts::{euclidean, z_normalize, Record, TimeSeries};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _c = TardisConfig::default();
        let _b = BaselineConfig::default();
        let _ = KnnStrategy::ALL;
    }
}
